"""DTM-COMB: combined core gating and DVFS (§5.2.2).

The Chapter 5 extension: walk both ladders at once — stop a subset of
cores *and* scale the survivors' frequency/voltage.  It inherits ACG's
L2-contention relief and CDVFS's processor-heat reduction, and improved
performance by up to 5.4% over the better of the two in the measured
study.
"""

from __future__ import annotations

from repro.dtm.base import (
    ControlDecision,
    DTMPolicy,
    ThermalReading,
    _decision_memo,
)
from repro.dtm.levels import LevelTracker
from repro.params.emergency import EmergencyLevels, PE1950_LEVELS


class DTMCOMB(DTMPolicy):
    """Combined gating + DVFS by emergency level.

    Args:
        levels: emergency table; the active-core and DVFS ladders are
            applied simultaneously (Table 5.1 bottom rows).
        cores: total core count.
        min_active: lower bound on active cores (one per socket on the
            servers).
    """

    name = "DTM-COMB"
    vectorized = True

    def __init__(
        self,
        levels: EmergencyLevels | None = None,
        cores: int = 4,
        min_active: int = 2,
    ) -> None:
        self._levels = levels if levels is not None else PE1950_LEVELS
        self._tracker = LevelTracker(self._levels)
        self._cores = cores
        self._min_active = min_active

    def decide(self, reading: ThermalReading, dt_s: float) -> ControlDecision:
        """Apply both the core ladder and the DVFS ladder."""
        level = self._tracker.level(reading)
        active = self._levels.acg_active_cores[level]
        if active > 0:
            active = max(active, self._min_active)
        dvfs = self._levels.cdvfs_levels[level]
        return ControlDecision(
            memory_on=active > 0,
            active_cores=min(active, self._cores),
            dvfs_level=dvfs,
            emergency_level=level,
        )

    @classmethod
    def decide_all(cls, policies, amb_c, dram_c, dt_s, pending=None):
        """Batched level tracking + both ladders, per-rung decisions."""
        if cls is not DTMCOMB:
            return super().decide_all(policies, amb_c, dram_c, dt_s, pending)
        decisions = []
        for policy, amb, dram in zip(policies, amb_c, dram_c):
            level = policy._tracker.level_values(amb, dram)
            memo = _decision_memo(policy)
            decision = memo.get(level)
            if decision is None:
                levels = policy._levels
                active = levels.acg_active_cores[level]
                if active > 0:
                    active = max(active, policy._min_active)
                decision = memo[level] = ControlDecision(
                    memory_on=active > 0,
                    active_cores=min(active, policy._cores),
                    dvfs_level=levels.cdvfs_levels[level],
                    emergency_level=level,
                )
            decisions.append(decision)
        return decisions, None

    def reset(self) -> None:
        """Clear the shutdown latch."""
        self._tracker.reset()

    def state_dict(self) -> dict:
        """Serializable latch state."""
        return {"tracker": self._tracker.state_dict()}

    def load_state_dict(self, state) -> None:
        """Restore latch state."""
        self._tracker.load_state_dict(state.get("tracker", {}))
