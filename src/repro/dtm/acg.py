"""DTM-ACG: adaptive core gating (§4.2.2, §5.2.2).

Instead of throttling at the memory side, ACG clock-gates 1..N processor
cores according to the thermal emergency level, cutting memory demand at
its source.  Gated cores rotate round-robin for fairness.  The shared-L2
side effect — fewer co-runners, fewer conflict misses, ~17% less memory
traffic — is where most of its performance advantage comes from (§4.4.2).
"""

from __future__ import annotations

from repro.dtm.base import (
    ControlDecision,
    DTMPolicy,
    ThermalReading,
    _decision_memo,
)
from repro.dtm.levels import LevelTracker
from repro.params.emergency import EmergencyLevels, SIMULATION_LEVELS


class DTMACG(DTMPolicy):
    """Adaptive core gating by emergency level.

    Args:
        levels: emergency table with the active-core ladder.
        cores: total core count.
        rotation_interval_s: how often the gated-core rotation advances
            (fairness); defaults to 100 ms, the Linux time-slice scale the
            measured systems use (§5.3.1).
        min_active: lower bound on active cores (Chapter 5 servers keep
            one core per socket alive to use its L2, §5.2.2).
    """

    name = "DTM-ACG"
    vectorized = True

    def __init__(
        self,
        levels: EmergencyLevels | None = None,
        cores: int = 4,
        rotation_interval_s: float = 0.100,
        min_active: int = 0,
    ) -> None:
        self._levels = levels if levels is not None else SIMULATION_LEVELS
        self._tracker = LevelTracker(self._levels)
        self._cores = cores
        self._rotation_interval_s = rotation_interval_s
        self._min_active = min_active
        self._since_rotation_s = 0.0
        self.rotation = 0

    def decide(self, reading: ThermalReading, dt_s: float) -> ControlDecision:
        """Gate cores down to the ladder's count for the current level."""
        level = self._tracker.level(reading)
        active = self._levels.acg_active_cores[level]
        active = min(self._cores, max(active, self._min_active if active > 0 else 0))
        self._since_rotation_s += dt_s
        if self._since_rotation_s >= self._rotation_interval_s:
            self._since_rotation_s = 0.0
            self.rotation += 1
        # At the highest emergency level the memory shuts down too (§4.2.2:
        # "in the highest thermal emergency level ... the memory will be
        # fully shut down").
        memory_on = active > 0 or level < self._levels.level_count - 1
        return ControlDecision(
            memory_on=memory_on and active >= 0 and not self._full_shutdown(level),
            active_cores=active,
            emergency_level=level,
        )

    @classmethod
    def decide_all(cls, policies, amb_c, dram_c, dt_s, pending=None):
        """Batched gating: level tracking, rotation and ladder per cell.

        The rotation counter advances exactly as in :meth:`decide`
        (float accumulation order preserved); decisions depend only on
        the level, so they come from the per-rung cache.
        """
        if cls is not DTMACG:
            return super().decide_all(policies, amb_c, dram_c, dt_s, pending)
        decisions = []
        for policy, amb, dram in zip(policies, amb_c, dram_c):
            level = policy._tracker.level_values(amb, dram)
            policy._since_rotation_s += dt_s
            if policy._since_rotation_s >= policy._rotation_interval_s:
                policy._since_rotation_s = 0.0
                policy.rotation += 1
            memo = _decision_memo(policy)
            decision = memo.get(level)
            if decision is None:
                levels = policy._levels
                active = levels.acg_active_cores[level]
                active = min(
                    policy._cores,
                    max(active, policy._min_active if active > 0 else 0),
                )
                memory_on = active > 0 or level < levels.level_count - 1
                decision = memo[level] = ControlDecision(
                    memory_on=memory_on
                    and active >= 0
                    and not policy._full_shutdown(level),
                    active_cores=active,
                    emergency_level=level,
                )
            decisions.append(decision)
        return decisions, None

    def _full_shutdown(self, level: int) -> bool:
        """Whether this level calls for a complete memory shutdown."""
        return (
            level == self._levels.level_count - 1
            and self._levels.acg_active_cores[level] == 0
        )

    def reset(self) -> None:
        """Clear latch and rotation."""
        self._tracker.reset()
        self._since_rotation_s = 0.0
        self.rotation = 0

    def state_dict(self) -> dict:
        """Serializable latch + rotation state."""
        return {
            "tracker": self._tracker.state_dict(),
            "since_rotation_s": self._since_rotation_s,
            "rotation": self.rotation,
        }

    def load_state_dict(self, state) -> None:
        """Restore latch + rotation state."""
        self._tracker.load_state_dict(state.get("tracker", {}))
        self._since_rotation_s = float(state.get("since_rotation_s", 0.0))
        self.rotation = int(state.get("rotation", 0))
