"""PID formal controller (Eq. 4.1, §4.2.3, §4.3.4).

``m(t) = Kc * (e(t) + KI * int(e dt) + KD * de/dt)``

with ``e(t)`` the target-minus-measured temperature error.  Two
anti-windup measures from the paper:

- the integral factor only turns on once the temperature exceeds an
  enable threshold (109.0 degC AMB / 84.0 degC DRAM by default), and
- the integral freezes while the control output saturates the actuator,
  so the controller responds quickly when the temperature turns around.

The paper's tuned constants: Kc = 10.4, KI = 180.24, KD = 0.001 for the
AMB controller and Kc = 12.4, KI = 155.12, KD = 0.001 for the DRAM
controller, with targets 109.8 and 84.8 degC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PIDGains:
    """Proportional / integral / differential constants of Eq. 4.1."""

    kc: float
    ki: float
    kd: float

    def __post_init__(self) -> None:
        if self.kc <= 0:
            raise ConfigurationError("Kc must be positive")
        if self.ki < 0 or self.kd < 0:
            raise ConfigurationError("KI and KD must be non-negative")


#: §4.3.4 tuned constants.
AMB_GAINS = PIDGains(kc=10.4, ki=180.24, kd=0.001)
DRAM_GAINS = PIDGains(kc=12.4, ki=155.12, kd=0.001)

#: §4.3.4 target temperatures, degC.
AMB_TARGET_C = 109.8
DRAM_TARGET_C = 84.8

#: §4.3.4 integral-enable thresholds, degC.
AMB_INTEGRAL_ENABLE_C = 109.0
DRAM_INTEGRAL_ENABLE_C = 84.0


class PIDController:
    """Discrete-time PID with integral-enable threshold and freeze-on-saturation.

    Args:
        gains: the Eq. 4.1 constants.
        target_c: temperature the controller regulates toward.
        integral_enable_c: integral accumulates only while the measured
            temperature is at or above this value (avoids the saturation
            effect of winding up during the long cold approach, §4.3.4).
        output_min / output_max: actuator saturation bounds on m(t).
    """

    def __init__(
        self,
        gains: PIDGains,
        target_c: float,
        integral_enable_c: float,
        output_min: float = -5.0,
        output_max: float = 5.0,
    ) -> None:
        if output_min >= output_max:
            raise ConfigurationError("output_min must be below output_max")
        self._gains = gains
        self._target_c = target_c
        self._integral_enable_c = integral_enable_c
        self._output_min = output_min
        self._output_max = output_max
        self._integral = 0.0
        self._previous_error: float | None = None
        self._saturated_low = False
        self._saturated_high = False

    @property
    def target_c(self) -> float:
        """The regulation target, degC."""
        return self._target_c

    @property
    def integral(self) -> float:
        """Accumulated integral term (for tests)."""
        return self._integral

    def update(self, measured_c: float, dt_s: float) -> float:
        """One controller step; returns the saturated output m(t)."""
        if dt_s <= 0:
            raise ConfigurationError("dt must be positive")
        error = self._target_c - measured_c
        integral_on = measured_c >= self._integral_enable_c
        if integral_on:
            # Freeze the integral while the output saturates in the
            # direction the error keeps pushing (anti-windup).
            pushing_low = error < 0 and self._saturated_low
            pushing_high = error > 0 and self._saturated_high
            if not (pushing_low or pushing_high):
                self._integral += error * dt_s
        else:
            self._integral = 0.0
        if self._previous_error is None:
            derivative = 0.0
        else:
            derivative = (error - self._previous_error) / dt_s
        self._previous_error = error
        g = self._gains
        raw = g.kc * (error + g.ki * self._integral + g.kd * derivative)
        output = min(self._output_max, max(self._output_min, raw))
        self._saturated_low = output <= self._output_min
        self._saturated_high = output >= self._output_max
        return output

    def normalized(self, output: float) -> float:
        """Map a saturated output to a performance fraction in [0, 1]."""
        span = self._output_max - self._output_min
        return (output - self._output_min) / span

    def reset(self) -> None:
        """Clear integral, derivative history and saturation flags."""
        self._integral = 0.0
        self._previous_error = None
        self._saturated_low = False
        self._saturated_high = False

    def state_dict(self) -> dict:
        """Serializable controller state (for engine checkpoints)."""
        return {
            "integral": self._integral,
            "previous_error": self._previous_error,
            "saturated_low": self._saturated_low,
            "saturated_high": self._saturated_high,
        }

    def load_state_dict(self, state) -> None:
        """Restore controller state captured by :meth:`state_dict`."""
        self._integral = float(state.get("integral", 0.0))
        previous = state.get("previous_error")
        self._previous_error = None if previous is None else float(previous)
        self._saturated_low = bool(state.get("saturated_low", False))
        self._saturated_high = bool(state.get("saturated_high", False))
