"""DTM policy interface and control vocabulary.

Every policy consumes a :class:`ThermalReading` once per DTM interval and
produces a :class:`ControlDecision` — the full actuator state: memory
on/off, bandwidth cap, active core count and DVFS level.  Schemes that
only use one actuator leave the others at their permissive defaults, so
the second-level simulator can apply any decision uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ThermalReading:
    """Sensor temperatures delivered to the policy, degC."""

    amb_c: float
    dram_c: float

    def hotter(self, other: "ThermalReading") -> bool:
        """Whether either component exceeds the other reading's."""
        return self.amb_c > other.amb_c or self.dram_c > other.dram_c


@dataclass(frozen=True)
class ControlDecision:
    """One DTM interval's actuator state.

    Attributes:
        memory_on: all memory transactions enabled.
        bandwidth_cap_bytes_per_s: memory throughput ceiling
            (``None`` = unlimited; ignored when memory is off).
        active_cores: cores left running by gating.
        dvfs_level: DVFS ladder position (0 = fastest,
            ``n_points`` = stopped).
        emergency_level: the quantized thermal emergency level that
            produced this decision (for logging / analysis).
    """

    memory_on: bool = True
    bandwidth_cap_bytes_per_s: float | None = None
    active_cores: int = 4
    dvfs_level: int = 0
    emergency_level: int = 0

    def __post_init__(self) -> None:
        if self.bandwidth_cap_bytes_per_s is not None and self.bandwidth_cap_bytes_per_s < 0:
            raise ConfigurationError("bandwidth cap must be non-negative or None")
        if self.active_cores < 0:
            raise ConfigurationError("active core count must be non-negative")
        if self.dvfs_level < 0:
            raise ConfigurationError("DVFS level must be non-negative")


class DTMPolicy(abc.ABC):
    """A dynamic thermal management policy.

    Policies are stateful (hysteresis, fairness rotation, PID integrals);
    :meth:`reset` restores the initial state between experiment runs.
    """

    #: Human-readable scheme name ("DTM-ACG", ...).
    name: str = "DTM"

    #: True when :meth:`decide` provably ignores its ThermalReading —
    #: the opt-in that lets a gang (:mod:`repro.engine.gang`) step one
    #: leader cell's policy and broadcast the decision to cells that
    #: differ only thermally.  Leave False for anything that reads a
    #: temperature, even conditionally.
    thermally_insensitive: bool = False

    #: True when the class overrides :meth:`decide_all` with a batched
    #: implementation (the lockstep-gang fast path).  Purely
    #: informational — the default ``decide_all`` is always correct.
    vectorized: bool = False

    @abc.abstractmethod
    def decide(self, reading: ThermalReading, dt_s: float) -> ControlDecision:
        """Produce the actuator state for the next interval."""

    @classmethod
    def decide_all(
        cls,
        policies: Sequence["DTMPolicy"],
        amb_c: Sequence[float],
        dram_c: Sequence[float],
        dt_s: float,
        pending: Any = None,
    ) -> tuple[list[ControlDecision], Any]:
        """Batched :meth:`decide` over many same-class policy instances.

        The vector protocol the lockstep gang drives
        (:mod:`repro.engine.gang`): one call produces every cell's
        decision for the window from flat temperature sequences,
        bit-identical — decisions *and* policy state — to calling
        :meth:`decide` per cell in order.

        Returns ``(decisions, pending)``.  ``pending`` is an opaque,
        implementation-owned bundle of staged state: a vectorized
        implementation may keep its hysteresis latches / integrals in
        flat arrays across windows instead of scattering them into the
        policy objects every call.  The caller must thread the returned
        ``pending`` into the next ``decide_all`` over the *same*
        policies in the same order, and must call :meth:`apply_all`
        before any policy's state becomes externally visible
        (``state_dict``, a per-cell ``decide``, retirement of a member).
        The default implementation is the plain per-cell loop — state
        commits immediately and ``pending`` is ``None`` — so policies
        without a batched override degrade transparently.
        """
        return (
            [
                policy.decide(ThermalReading(amb_c=amb, dram_c=dram), dt_s)
                for policy, amb, dram in zip(policies, amb_c, dram_c)
            ],
            None,
        )

    @classmethod
    def apply_all(
        cls, policies: Sequence["DTMPolicy"], pending: Any
    ) -> None:
        """Commit state staged by :meth:`decide_all` into the policies.

        No-op for implementations that commit immediately (the default
        and every table-driven policy); the array-backed PID path
        scatters its controller state here.  Safe to call with
        ``pending=None``.
        """

    def reset(self) -> None:
        """Restore initial policy state (default: stateless)."""

    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable runtime state (hysteresis latches, PID
        integrals, rotation counters) for engine checkpoints.

        Stateless policies return ``{}``.  The dict must round-trip
        through :meth:`load_state_dict` bit-exactly: a restored policy
        produces the same decision stream as one that never paused.
        """
        return {}

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore runtime state captured by :meth:`state_dict`."""


def _decision_memo(policy: DTMPolicy) -> dict:
    """The per-instance decision cache used by batched deciders.

    A policy emits very few *distinct* decisions (one per ladder rung /
    latch state); ``decide_all`` implementations reuse the frozen
    :class:`ControlDecision` objects instead of re-validating a new one
    per cell per window.  Lazy so the concrete policies' constructors
    stay untouched.
    """
    memo = getattr(policy, "_decision_cache", None)
    if memo is None:
        memo = policy._decision_cache = {}
    return memo


class NoLimitPolicy(DTMPolicy):
    """The ideal system without any thermal limit (the paper's baseline)."""

    name = "No-limit"
    #: The decision is a constant — temperatures are never read.
    thermally_insensitive = True
    vectorized = True

    def __init__(self, cores: int = 4) -> None:
        self._cores = cores

    def decide(self, reading: ThermalReading, dt_s: float) -> ControlDecision:
        """Always full speed, regardless of temperature."""
        return ControlDecision(active_cores=self._cores)

    @classmethod
    def decide_all(cls, policies, amb_c, dram_c, dt_s, pending=None):
        """Batched decide: one shared constant decision per policy."""
        if cls is not NoLimitPolicy:
            return super().decide_all(policies, amb_c, dram_c, dt_s, pending)
        decisions = []
        for policy in policies:
            memo = _decision_memo(policy)
            decision = memo.get(None)
            if decision is None:
                decision = memo[None] = ControlDecision(
                    active_cores=policy._cores
                )
            decisions.append(decision)
        return decisions, None
