"""DTM-CDVFS: coordinated dynamic voltage and frequency scaling (§4.2.2).

CDVFS links the DRAM/AMB thermal emergency level directly to the
processor's DVFS ladder: hotter memory, slower (and lower-voltage)
cores.  Two effects follow: slightly less speculative memory traffic
(§4.4.2, ~4.5%), and a large processor energy saving (§4.4.3, ~36–42%)
because power scales with V^2·f.  Under the integrated thermal model the
reduced processor heat also lowers the memory inlet temperature, which
is why CDVFS overtakes ACG on real systems (§4.5, §5.4.3).
"""

from __future__ import annotations

from repro.dtm.base import (
    ControlDecision,
    DTMPolicy,
    ThermalReading,
    _decision_memo,
)
from repro.dtm.levels import LevelTracker
from repro.params.emergency import EmergencyLevels, SIMULATION_LEVELS


class DTMCDVFS(DTMPolicy):
    """Coordinated DVFS by emergency level.

    Args:
        levels: emergency table with the DVFS ladder.
        cores: core count reported in decisions (all cores scale together).
        stopped_level: ladder position meaning "all cores stopped"; equals
            the number of operating points (4 on both platforms).
    """

    name = "DTM-CDVFS"
    vectorized = True

    def __init__(
        self,
        levels: EmergencyLevels | None = None,
        cores: int = 4,
        stopped_level: int = 4,
    ) -> None:
        self._levels = levels if levels is not None else SIMULATION_LEVELS
        self._tracker = LevelTracker(self._levels)
        self._cores = cores
        self._stopped_level = stopped_level

    def decide(self, reading: ThermalReading, dt_s: float) -> ControlDecision:
        """Map the emergency level to a DVFS ladder position."""
        level = self._tracker.level(reading)
        dvfs = min(self._levels.cdvfs_levels[level], self._stopped_level)
        stopped = dvfs >= self._stopped_level
        return ControlDecision(
            memory_on=not stopped,
            active_cores=0 if stopped else self._cores,
            dvfs_level=dvfs,
            emergency_level=level,
        )

    @classmethod
    def decide_all(cls, policies, amb_c, dram_c, dt_s, pending=None):
        """Batched level tracking + DVFS ladder, per-rung decisions."""
        if cls is not DTMCDVFS:
            return super().decide_all(policies, amb_c, dram_c, dt_s, pending)
        decisions = []
        for policy, amb, dram in zip(policies, amb_c, dram_c):
            level = policy._tracker.level_values(amb, dram)
            memo = _decision_memo(policy)
            decision = memo.get(level)
            if decision is None:
                dvfs = min(
                    policy._levels.cdvfs_levels[level], policy._stopped_level
                )
                stopped = dvfs >= policy._stopped_level
                decision = memo[level] = ControlDecision(
                    memory_on=not stopped,
                    active_cores=0 if stopped else policy._cores,
                    dvfs_level=dvfs,
                    emergency_level=level,
                )
            decisions.append(decision)
        return decisions, None

    def reset(self) -> None:
        """Clear the shutdown latch."""
        self._tracker.reset()

    def state_dict(self) -> dict:
        """Serializable latch state."""
        return {"tracker": self._tracker.state_dict()}

    def load_state_dict(self, state) -> None:
        """Restore latch state."""
        self._tracker.load_state_dict(state.get("tracker", {}))
