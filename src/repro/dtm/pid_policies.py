"""PID-driven variants of the DTM schemes (§4.2.3).

Two controllers run side by side — one regulating the AMB temperature,
one the DRAM temperature — and the more conservative output acts (for
any given cooling configuration one of the two is always the binding
limit, §4.2.3).  The normalized output selects a rung of the same
decision ladder the table-driven scheme uses, so "DTM-ACG + PID" picks an
active-core count, "DTM-CDVFS + PID" a DVFS level, and "DTM-BW + PID" a
bandwidth cap.  A reading at or above a TDP forces the most aggressive
rung regardless of controller state (the worst-case safety net).
"""

from __future__ import annotations

from repro.dtm.base import ControlDecision, DTMPolicy, ThermalReading
from repro.dtm.pid import (
    AMB_GAINS,
    AMB_INTEGRAL_ENABLE_C,
    AMB_TARGET_C,
    DRAM_GAINS,
    DRAM_INTEGRAL_ENABLE_C,
    DRAM_TARGET_C,
    PIDController,
)
from repro.errors import ConfigurationError
from repro.params.emergency import EmergencyLevels, SIMULATION_LEVELS


class PIDPolicy(DTMPolicy):
    """A DTM scheme actuated by the dual PID controllers.

    Args:
        scheme: one of "bw", "acg", "cdvfs", "comb" — which actuator the
            normalized controller output drives.
        levels: emergency table providing the decision ladders and TDPs.
        cores: total core count.
        amb_target_c / dram_target_c: controller targets (defaults §4.3.4).
        min_active: lower bound on gated cores for acg/comb (Chapter 5).
    """

    def __init__(
        self,
        scheme: str,
        levels: EmergencyLevels | None = None,
        cores: int = 4,
        amb_target_c: float = AMB_TARGET_C,
        dram_target_c: float = DRAM_TARGET_C,
        min_active: int = 0,
        integral_enabled: bool = True,
    ) -> None:
        if scheme not in ("bw", "acg", "cdvfs", "comb"):
            raise ConfigurationError(f"unknown PID scheme {scheme!r}")
        self._scheme = scheme
        self._levels = levels if levels is not None else SIMULATION_LEVELS
        self._cores = cores
        self._min_active = min_active
        self.name = f"DTM-{scheme.upper()}+PID"
        amb_enable = AMB_INTEGRAL_ENABLE_C if integral_enabled else float("inf")
        dram_enable = DRAM_INTEGRAL_ENABLE_C if integral_enabled else float("inf")
        self._amb_pid = PIDController(
            AMB_GAINS, amb_target_c, integral_enable_c=amb_enable
        )
        self._dram_pid = PIDController(
            DRAM_GAINS, dram_target_c, integral_enable_c=dram_enable
        )

    @property
    def scheme(self) -> str:
        """Which actuator this policy drives."""
        return self._scheme

    def decide(self, reading: ThermalReading, dt_s: float) -> ControlDecision:
        """Run both controllers; the binding (lower) output acts."""
        amb_out = self._amb_pid.update(reading.amb_c, dt_s)
        dram_out = self._dram_pid.update(reading.dram_c, dt_s)
        amb_u = self._amb_pid.normalized(amb_out)
        dram_u = self._dram_pid.normalized(dram_out)
        u = min(amb_u, dram_u)
        rung_count = self._levels.level_count
        # u = 1 -> rung 0 (full performance); u = 0 -> most aggressive rung.
        rung = round((1.0 - u) * (rung_count - 1))
        # Safety net: at/above a TDP, force the most aggressive rung.
        if (
            reading.amb_c >= self._levels.amb_tdp_c
            or reading.dram_c >= self._levels.dram_tdp_c
        ):
            rung = rung_count - 1
        return self._decision_for_rung(rung)

    def _decision_for_rung(self, rung: int) -> ControlDecision:
        """Translate a ladder rung into the scheme's actuator state."""
        if self._scheme == "bw":
            cap = self._levels.bw_caps_bytes_per_s[rung]
            memory_on = cap is None or cap > 0.0
            return ControlDecision(
                memory_on=memory_on,
                bandwidth_cap_bytes_per_s=cap if memory_on else 0.0,
                active_cores=self._cores,
                emergency_level=rung,
            )
        if self._scheme == "acg":
            active = self._levels.acg_active_cores[rung]
            if active > 0:
                active = max(active, self._min_active)
            return ControlDecision(
                memory_on=active > 0,
                active_cores=min(active, self._cores),
                emergency_level=rung,
            )
        if self._scheme == "cdvfs":
            dvfs = self._levels.cdvfs_levels[rung]
            stopped = dvfs >= 4
            return ControlDecision(
                memory_on=not stopped,
                active_cores=0 if stopped else self._cores,
                dvfs_level=dvfs,
                emergency_level=rung,
            )
        # comb: both ladders at once.
        active = self._levels.acg_active_cores[rung]
        if active > 0:
            active = max(active, self._min_active)
        dvfs = min(self._levels.cdvfs_levels[rung], 3)
        return ControlDecision(
            memory_on=active > 0,
            active_cores=min(active, self._cores),
            dvfs_level=dvfs if active > 0 else 4,
            emergency_level=rung,
        )

    def reset(self) -> None:
        """Reset both controllers."""
        self._amb_pid.reset()
        self._dram_pid.reset()

    def state_dict(self) -> dict:
        """Serializable state of both controllers."""
        return {
            "amb": self._amb_pid.state_dict(),
            "dram": self._dram_pid.state_dict(),
        }

    def load_state_dict(self, state) -> None:
        """Restore both controllers."""
        self._amb_pid.load_state_dict(state.get("amb", {}))
        self._dram_pid.load_state_dict(state.get("dram", {}))


def make_pid_policy(
    scheme: str,
    levels: EmergencyLevels | None = None,
    cores: int = 4,
    **kwargs,
) -> PIDPolicy:
    """Convenience constructor for PID-driven policies."""
    return PIDPolicy(scheme, levels=levels, cores=cores, **kwargs)
