"""PID-driven variants of the DTM schemes (§4.2.3).

Two controllers run side by side — one regulating the AMB temperature,
one the DRAM temperature — and the more conservative output acts (for
any given cooling configuration one of the two is always the binding
limit, §4.2.3).  The normalized output selects a rung of the same
decision ladder the table-driven scheme uses, so "DTM-ACG + PID" picks an
active-core count, "DTM-CDVFS + PID" a DVFS level, and "DTM-BW + PID" a
bandwidth cap.  A reading at or above a TDP forces the most aggressive
rung regardless of controller state (the worst-case safety net).
"""

from __future__ import annotations

from repro.dtm.base import (
    ControlDecision,
    DTMPolicy,
    ThermalReading,
    _decision_memo,
)
from repro.dtm.pid import (
    AMB_GAINS,
    AMB_INTEGRAL_ENABLE_C,
    AMB_TARGET_C,
    DRAM_GAINS,
    DRAM_INTEGRAL_ENABLE_C,
    DRAM_TARGET_C,
    PIDController,
)
from repro.errors import ConfigurationError
from repro.params.emergency import EmergencyLevels, SIMULATION_LEVELS


class _ControllerLanes:
    """One batch of same-side PID controllers as flat NumPy arrays.

    The lockstep gang steps N PID policies per window; re-reading and
    re-writing eight scalar attributes per controller per window would
    cost more than the arithmetic.  Lanes gather the mutable controller
    state (integral, previous error, saturation flags) once, advance it
    elementwise window after window, and scatter it back only at
    :meth:`PIDPolicy.apply_all` time.  Every elementwise float64
    operation is the IEEE operation the scalar
    :meth:`~repro.dtm.pid.PIDController.update` performs, in the same
    order, so the staged state and outputs are bit-identical per cell.
    """

    __slots__ = (
        "np", "target", "enable", "kc", "ki", "kd",
        "out_min", "out_max", "span",
        "integral", "prev", "has_prev", "sat_low", "sat_high",
    )

    def __init__(self, np, controllers) -> None:
        self.np = np
        asarray = np.asarray
        self.target = asarray([c._target_c for c in controllers])
        self.enable = asarray([c._integral_enable_c for c in controllers])
        self.kc = asarray([c._gains.kc for c in controllers])
        self.ki = asarray([c._gains.ki for c in controllers])
        self.kd = asarray([c._gains.kd for c in controllers])
        self.out_min = asarray([c._output_min for c in controllers])
        self.out_max = asarray([c._output_max for c in controllers])
        self.span = self.out_max - self.out_min
        self.integral = asarray([c._integral for c in controllers])
        self.prev = asarray(
            [
                0.0 if c._previous_error is None else c._previous_error
                for c in controllers
            ]
        )
        self.has_prev = asarray(
            [c._previous_error is not None for c in controllers], dtype=bool
        )
        self.sat_low = asarray([c._saturated_low for c in controllers], dtype=bool)
        self.sat_high = asarray([c._saturated_high for c in controllers], dtype=bool)

    def update(self, measured, dt_s: float):
        """Vectorized :meth:`PIDController.update`; returns normalized u."""
        np = self.np
        error = self.target - measured
        integral_on = measured >= self.enable
        pushing = ((error < 0) & self.sat_low) | ((error > 0) & self.sat_high)
        self.integral = np.where(
            integral_on,
            np.where(pushing, self.integral, self.integral + error * dt_s),
            0.0,
        )
        derivative = np.where(
            self.has_prev, (error - self.prev) / dt_s, 0.0
        )
        self.prev = error
        self.has_prev = np.ones(len(error), dtype=bool)
        raw = self.kc * (error + self.ki * self.integral + self.kd * derivative)
        output = np.minimum(self.out_max, np.maximum(self.out_min, raw))
        self.sat_low = output <= self.out_min
        self.sat_high = output >= self.out_max
        return (output - self.out_min) / self.span

    def scatter(self, controllers) -> None:
        """Write the staged state back into the controller objects."""
        integral = self.integral.tolist()
        prev = self.prev.tolist()
        has_prev = self.has_prev.tolist()
        sat_low = self.sat_low.tolist()
        sat_high = self.sat_high.tolist()
        for i, controller in enumerate(controllers):
            controller._integral = integral[i]
            controller._previous_error = prev[i] if has_prev[i] else None
            controller._saturated_low = sat_low[i]
            controller._saturated_high = sat_high[i]


class _PIDPending:
    """Chained ``decide_all`` state: paired AMB/DRAM controller lanes."""

    __slots__ = ("key", "amb", "dram")

    def __init__(self, np, policies) -> None:
        self.key = tuple(id(policy) for policy in policies)
        self.amb = _ControllerLanes(np, [p._amb_pid for p in policies])
        self.dram = _ControllerLanes(np, [p._dram_pid for p in policies])


class PIDPolicy(DTMPolicy):
    """A DTM scheme actuated by the dual PID controllers.

    Args:
        scheme: one of "bw", "acg", "cdvfs", "comb" — which actuator the
            normalized controller output drives.
        levels: emergency table providing the decision ladders and TDPs.
        cores: total core count.
        amb_target_c / dram_target_c: controller targets (defaults §4.3.4).
        min_active: lower bound on gated cores for acg/comb (Chapter 5).
    """

    def __init__(
        self,
        scheme: str,
        levels: EmergencyLevels | None = None,
        cores: int = 4,
        amb_target_c: float = AMB_TARGET_C,
        dram_target_c: float = DRAM_TARGET_C,
        min_active: int = 0,
        integral_enabled: bool = True,
    ) -> None:
        if scheme not in ("bw", "acg", "cdvfs", "comb"):
            raise ConfigurationError(f"unknown PID scheme {scheme!r}")
        self._scheme = scheme
        self._levels = levels if levels is not None else SIMULATION_LEVELS
        self._cores = cores
        self._min_active = min_active
        self.name = f"DTM-{scheme.upper()}+PID"
        amb_enable = AMB_INTEGRAL_ENABLE_C if integral_enabled else float("inf")
        dram_enable = DRAM_INTEGRAL_ENABLE_C if integral_enabled else float("inf")
        self._amb_pid = PIDController(
            AMB_GAINS, amb_target_c, integral_enable_c=amb_enable
        )
        self._dram_pid = PIDController(
            DRAM_GAINS, dram_target_c, integral_enable_c=dram_enable
        )

    vectorized = True

    @property
    def scheme(self) -> str:
        """Which actuator this policy drives."""
        return self._scheme

    @classmethod
    def decide_all(cls, policies, amb_c, dram_c, dt_s, pending=None):
        """Batched dual-PID step over controller lanes.

        With NumPy the mutable controller state lives in flat arrays
        chained through ``pending`` — per window the cost is one
        elementwise update per controller side plus a per-cell rung
        lookup, instead of 2N scalar controller steps.  Without NumPy
        the per-cell loop runs the scalar controllers directly (still
        skipping the reading/decision object churn).  Both paths are
        bit-identical to :meth:`decide` per cell.
        """
        if cls is not PIDPolicy:
            return super().decide_all(policies, amb_c, dram_c, dt_s, pending)
        if dt_s <= 0:
            raise ConfigurationError("dt must be positive")
        from repro.core import kernel as _kernel

        np = _kernel._import_numpy()
        if np is None:
            decisions = []
            for policy, amb, dram in zip(policies, amb_c, dram_c):
                amb_u = policy._amb_pid.normalized(
                    policy._amb_pid.update(amb, dt_s)
                )
                dram_u = policy._dram_pid.normalized(
                    policy._dram_pid.update(dram, dt_s)
                )
                decisions.append(
                    policy._rung_decision(min(amb_u, dram_u), amb, dram)
                )
            return decisions, None
        if (
            not isinstance(pending, _PIDPending)
            or pending.key != tuple(id(policy) for policy in policies)
        ):
            pending = _PIDPending(np, policies)
        amb_vals = np.asarray(amb_c, dtype=np.float64)
        dram_vals = np.asarray(dram_c, dtype=np.float64)
        amb_u = pending.amb.update(amb_vals, dt_s)
        dram_u = pending.dram.update(dram_vals, dt_s)
        u_all = np.minimum(amb_u, dram_u).tolist()
        decisions = [
            policy._rung_decision(u, amb, dram)
            for policy, u, amb, dram in zip(
                policies, u_all, amb_vals.tolist(), dram_vals.tolist()
            )
        ]
        return decisions, pending

    @classmethod
    def apply_all(cls, policies, pending) -> None:
        """Scatter lane state back into the per-policy controllers."""
        if not isinstance(pending, _PIDPending):
            return
        if pending.key != tuple(id(policy) for policy in policies):
            raise ConfigurationError(
                "PID apply_all received pending state for a different "
                "policy batch"
            )
        pending.amb.scatter([p._amb_pid for p in policies])
        pending.dram.scatter([p._dram_pid for p in policies])

    def _rung_decision(
        self, u: float, amb_c: float, dram_c: float
    ) -> ControlDecision:
        """The post-controller half of :meth:`decide`, decision cached
        per rung (the frozen decisions are pure functions of the rung)."""
        rung_count = self._levels.level_count
        rung = round((1.0 - u) * (rung_count - 1))
        if (
            amb_c >= self._levels.amb_tdp_c
            or dram_c >= self._levels.dram_tdp_c
        ):
            rung = rung_count - 1
        memo = _decision_memo(self)
        decision = memo.get(rung)
        if decision is None:
            decision = memo[rung] = self._decision_for_rung(rung)
        return decision

    def decide(self, reading: ThermalReading, dt_s: float) -> ControlDecision:
        """Run both controllers; the binding (lower) output acts."""
        amb_out = self._amb_pid.update(reading.amb_c, dt_s)
        dram_out = self._dram_pid.update(reading.dram_c, dt_s)
        amb_u = self._amb_pid.normalized(amb_out)
        dram_u = self._dram_pid.normalized(dram_out)
        u = min(amb_u, dram_u)
        rung_count = self._levels.level_count
        # u = 1 -> rung 0 (full performance); u = 0 -> most aggressive rung.
        rung = round((1.0 - u) * (rung_count - 1))
        # Safety net: at/above a TDP, force the most aggressive rung.
        if (
            reading.amb_c >= self._levels.amb_tdp_c
            or reading.dram_c >= self._levels.dram_tdp_c
        ):
            rung = rung_count - 1
        return self._decision_for_rung(rung)

    def _decision_for_rung(self, rung: int) -> ControlDecision:
        """Translate a ladder rung into the scheme's actuator state."""
        if self._scheme == "bw":
            cap = self._levels.bw_caps_bytes_per_s[rung]
            memory_on = cap is None or cap > 0.0
            return ControlDecision(
                memory_on=memory_on,
                bandwidth_cap_bytes_per_s=cap if memory_on else 0.0,
                active_cores=self._cores,
                emergency_level=rung,
            )
        if self._scheme == "acg":
            active = self._levels.acg_active_cores[rung]
            if active > 0:
                active = max(active, self._min_active)
            return ControlDecision(
                memory_on=active > 0,
                active_cores=min(active, self._cores),
                emergency_level=rung,
            )
        if self._scheme == "cdvfs":
            dvfs = self._levels.cdvfs_levels[rung]
            stopped = dvfs >= 4
            return ControlDecision(
                memory_on=not stopped,
                active_cores=0 if stopped else self._cores,
                dvfs_level=dvfs,
                emergency_level=rung,
            )
        # comb: both ladders at once.
        active = self._levels.acg_active_cores[rung]
        if active > 0:
            active = max(active, self._min_active)
        dvfs = min(self._levels.cdvfs_levels[rung], 3)
        return ControlDecision(
            memory_on=active > 0,
            active_cores=min(active, self._cores),
            dvfs_level=dvfs if active > 0 else 4,
            emergency_level=rung,
        )

    def reset(self) -> None:
        """Reset both controllers."""
        self._amb_pid.reset()
        self._dram_pid.reset()

    def state_dict(self) -> dict:
        """Serializable state of both controllers."""
        return {
            "amb": self._amb_pid.state_dict(),
            "dram": self._dram_pid.state_dict(),
        }

    def load_state_dict(self, state) -> None:
        """Restore both controllers."""
        self._amb_pid.load_state_dict(state.get("amb", {}))
        self._dram_pid.load_state_dict(state.get("dram", {}))


def make_pid_policy(
    scheme: str,
    levels: EmergencyLevels | None = None,
    cores: int = 4,
    **kwargs,
) -> PIDPolicy:
    """Convenience constructor for PID-driven policies."""
    return PIDPolicy(scheme, levels=levels, cores=cores, **kwargs)
