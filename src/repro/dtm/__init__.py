"""Dynamic thermal management policies (§4.2, §5.2).

Existing schemes:

- :class:`repro.dtm.ts.DTMTS` — thermal shutdown with TDP/TRP hysteresis.
- :class:`repro.dtm.bw.DTMBW` — bandwidth throttling by emergency level.

Proposed schemes (the paper's contribution):

- :class:`repro.dtm.acg.DTMACG` — adaptive core gating.
- :class:`repro.dtm.cdvfs.DTMCDVFS` — coordinated DVFS.
- :class:`repro.dtm.comb.DTMCOMB` — gating + DVFS combined (Chapter 5).

Formal control:

- :class:`repro.dtm.pid.PIDController` — Eq. 4.1 with integral-enable
  threshold and saturation anti-windup.
- :mod:`repro.dtm.pid_policies` — PID-driven variants of BW/ACG/CDVFS.
"""

from repro.dtm.base import ControlDecision, DTMPolicy, ThermalReading
from repro.dtm.levels import LevelTracker
from repro.dtm.ts import DTMTS
from repro.dtm.bw import DTMBW
from repro.dtm.acg import DTMACG
from repro.dtm.cdvfs import DTMCDVFS
from repro.dtm.comb import DTMCOMB
from repro.dtm.pid import PIDController, PIDGains
from repro.dtm.pid_policies import PIDPolicy, make_pid_policy

__all__ = [
    "ControlDecision",
    "DTMPolicy",
    "ThermalReading",
    "LevelTracker",
    "DTMTS",
    "DTMBW",
    "DTMACG",
    "DTMCDVFS",
    "DTMCOMB",
    "PIDController",
    "PIDGains",
    "PIDPolicy",
    "make_pid_policy",
]
