"""DTM-BW: memory bandwidth throttling (§2.3, §4.2.1, §5.2.2).

The controller evaluates the thermal emergency level each interval and
enforces the corresponding memory traffic limit from the emergency table
(Table 4.3 / Table 5.1).  At the highest level the memory shuts down
entirely, with DTM-TS-style release hysteresis.
"""

from __future__ import annotations

from repro.dtm.base import (
    ControlDecision,
    DTMPolicy,
    ThermalReading,
    _decision_memo,
)
from repro.dtm.levels import LevelTracker
from repro.params.emergency import EmergencyLevels, SIMULATION_LEVELS


class DTMBW(DTMPolicy):
    """Bandwidth throttling by emergency level.

    Args:
        levels: emergency table with the bandwidth ladder.
        cores: core count reported in decisions (BW never gates cores —
            that is exactly why it wastes processor energy, §4.4.3).
    """

    name = "DTM-BW"
    vectorized = True

    def __init__(self, levels: EmergencyLevels | None = None, cores: int = 4) -> None:
        self._levels = levels if levels is not None else SIMULATION_LEVELS
        self._tracker = LevelTracker(self._levels)
        self._cores = cores

    def decide(self, reading: ThermalReading, dt_s: float) -> ControlDecision:
        """Look up the traffic cap for the current emergency level."""
        level = self._tracker.level(reading)
        cap = self._levels.bw_caps_bytes_per_s[level]
        memory_on = cap is None or cap > 0.0
        return ControlDecision(
            memory_on=memory_on,
            bandwidth_cap_bytes_per_s=cap if memory_on else 0.0,
            active_cores=self._cores,
            emergency_level=level,
        )

    @classmethod
    def decide_all(cls, policies, amb_c, dram_c, dt_s, pending=None):
        """Batched level tracking + ladder lookup, per-rung decisions."""
        if cls is not DTMBW:
            return super().decide_all(policies, amb_c, dram_c, dt_s, pending)
        decisions = []
        for policy, amb, dram in zip(policies, amb_c, dram_c):
            level = policy._tracker.level_values(amb, dram)
            memo = _decision_memo(policy)
            decision = memo.get(level)
            if decision is None:
                cap = policy._levels.bw_caps_bytes_per_s[level]
                memory_on = cap is None or cap > 0.0
                decision = memo[level] = ControlDecision(
                    memory_on=memory_on,
                    bandwidth_cap_bytes_per_s=cap if memory_on else 0.0,
                    active_cores=policy._cores,
                    emergency_level=level,
                )
            decisions.append(decision)
        return decisions, None

    def reset(self) -> None:
        """Clear the shutdown latch."""
        self._tracker.reset()

    def state_dict(self) -> dict:
        """Serializable latch state."""
        return {"tracker": self._tracker.state_dict()}

    def load_state_dict(self, state) -> None:
        """Restore latch state."""
        self._tracker.load_state_dict(state.get("tracker", {}))
