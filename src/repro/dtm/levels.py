"""Emergency-level tracking shared by the table-driven policies.

:class:`LevelTracker` quantizes readings through an
:class:`repro.params.emergency.EmergencyLevels` table and optionally adds
release hysteresis: once the highest level triggers a full shutdown, the
policy stays shut down until the temperature falls to the release point
(the DTM-TS behaviour the other schemes inherit at their top level).
"""

from __future__ import annotations

from repro.dtm.base import ThermalReading
from repro.params.emergency import EmergencyLevels


class LevelTracker:
    """Quantizes thermal readings into emergency levels with hysteresis."""

    def __init__(self, levels: EmergencyLevels) -> None:
        self._levels = levels
        self._latched_shutdown = False

    @property
    def levels(self) -> EmergencyLevels:
        """The emergency-level table."""
        return self._levels

    @property
    def latched(self) -> bool:
        """Whether the tracker is latched in the shutdown state."""
        return self._latched_shutdown

    def level(self, reading: ThermalReading) -> int:
        """Current emergency level with top-level release hysteresis.

        Reaching the highest level latches it; the latch clears only when
        both temperatures fall to their thermal release points, at which
        point the level is re-evaluated normally.
        """
        return self.level_values(reading.amb_c, reading.dram_c)

    def level_values(self, amb_c: float, dram_c: float) -> int:
        """:meth:`level` on bare temperatures — the batched deciders'
        entry point (``decide_all`` feeds floats straight from the
        gang's flat arrays without building a ThermalReading)."""
        levels = self._levels
        raw = levels.level(amb_c, dram_c)
        top = levels.level_count - 1
        if raw >= top:
            self._latched_shutdown = True
        if self._latched_shutdown:
            released = (
                amb_c <= levels.amb_trp_c and dram_c <= levels.dram_trp_c
            )
            if not released:
                return top
            self._latched_shutdown = False
            raw = levels.level(amb_c, dram_c)
        return raw

    def reset(self) -> None:
        """Clear the shutdown latch."""
        self._latched_shutdown = False

    def state_dict(self) -> dict:
        """Serializable latch state (for engine checkpoints)."""
        return {"latched": self._latched_shutdown}

    def load_state_dict(self, state) -> None:
        """Restore latch state captured by :meth:`state_dict`."""
        self._latched_shutdown = bool(state.get("latched", False))
