"""DTM-TS: thermal shutdown (§2.3, §4.2.1).

The memory controller polls the temperature; when either the AMB or the
DRAM reaches its thermal design point, all memory accesses stop.  They
resume only when both temperatures have fallen to their thermal release
points.  The TRP is a tunable parameter — Fig. 4.2 sweeps it — and must
stay safely below the TDP to tolerate imperfect sensors (§4.4.1).
"""

from __future__ import annotations

from repro.dtm.base import (
    ControlDecision,
    DTMPolicy,
    ThermalReading,
    _decision_memo,
)
from repro.errors import ConfigurationError
from repro.params.emergency import EmergencyLevels, SIMULATION_LEVELS


class DTMTS(DTMPolicy):
    """Thermal shutdown with TDP/TRP hysteresis.

    Args:
        levels: emergency table supplying the TDPs (and level count for
            the reported ``emergency_level``).
        cores: core count reported in decisions.
        amb_trp_c: AMB thermal release point override (Fig. 4.2 sweep);
            defaults to the table's value.
        dram_trp_c: DRAM release point override.
    """

    name = "DTM-TS"
    vectorized = True

    def __init__(
        self,
        levels: EmergencyLevels | None = None,
        cores: int = 4,
        amb_trp_c: float | None = None,
        dram_trp_c: float | None = None,
    ) -> None:
        self._levels = levels if levels is not None else SIMULATION_LEVELS
        self._cores = cores
        self._amb_trp_c = amb_trp_c if amb_trp_c is not None else self._levels.amb_trp_c
        self._dram_trp_c = (
            dram_trp_c if dram_trp_c is not None else self._levels.dram_trp_c
        )
        if self._amb_trp_c >= self._levels.amb_tdp_c:
            raise ConfigurationError("AMB TRP must be below the AMB TDP")
        if self._dram_trp_c >= self._levels.dram_tdp_c:
            raise ConfigurationError("DRAM TRP must be below the DRAM TDP")
        self._shut_down = False

    @property
    def shut_down(self) -> bool:
        """Whether memory is currently shut down."""
        return self._shut_down

    def decide(self, reading: ThermalReading, dt_s: float) -> ControlDecision:
        """On/off decision with hysteresis between TDP and TRP."""
        overheated = (
            reading.amb_c >= self._levels.amb_tdp_c
            or reading.dram_c >= self._levels.dram_tdp_c
        )
        released = (
            reading.amb_c <= self._amb_trp_c and reading.dram_c <= self._dram_trp_c
        )
        if overheated:
            self._shut_down = True
        elif self._shut_down and released:
            self._shut_down = False
        level = self._levels.level(reading.amb_c, reading.dram_c)
        return ControlDecision(
            memory_on=not self._shut_down,
            active_cores=self._cores,
            emergency_level=level,
        )

    @classmethod
    def decide_all(cls, policies, amb_c, dram_c, dt_s, pending=None):
        """Batched hysteresis: one tight loop, shared decision objects.

        Identical comparisons in identical order to :meth:`decide`; the
        per-cell saving is the ThermalReading/ControlDecision object
        churn and the dispatch, not the arithmetic.  Latch state commits
        immediately (``pending`` stays ``None``).
        """
        if cls is not DTMTS:
            # A subclass may have changed decide(); never vectorize it.
            return super().decide_all(policies, amb_c, dram_c, dt_s, pending)
        decisions = []
        for policy, amb, dram in zip(policies, amb_c, dram_c):
            levels = policy._levels
            shut = policy._shut_down
            if amb >= levels.amb_tdp_c or dram >= levels.dram_tdp_c:
                shut = policy._shut_down = True
            elif shut and (
                amb <= policy._amb_trp_c and dram <= policy._dram_trp_c
            ):
                shut = policy._shut_down = False
            level = levels.level(amb, dram)
            memo = _decision_memo(policy)
            decision = memo.get((shut, level))
            if decision is None:
                decision = memo[(shut, level)] = ControlDecision(
                    memory_on=not shut,
                    active_cores=policy._cores,
                    emergency_level=level,
                )
            decisions.append(decision)
        return decisions, None

    def reset(self) -> None:
        """Memory back on."""
        self._shut_down = False

    def state_dict(self) -> dict:
        """Serializable hysteresis state."""
        return {"shut_down": self._shut_down}

    def load_state_dict(self, state) -> None:
        """Restore hysteresis state."""
        self._shut_down = bool(state.get("shut_down", False))
