"""Shared-cache contention model.

When several programs share an LRU cache, each one's steady-state
occupancy is roughly proportional to its *insertion* rate — the rate at
which it misses and fills new lines (the classic LRU fluid model used by
Chandra et al. and successors).  The fixed point below captures exactly
the behaviour DTM-ACG exploits: gating a core removes its insertions,
the survivors' shares grow, their miss ratios fall, and total memory
traffic drops (§4.4.2 reports ~17% on average).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.mrc import MissRatioCurve
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheClient:
    """One program competing for the shared cache."""

    name: str
    #: L2 accesses per second this client generates at its current speed.
    access_rate_per_s: float
    #: The client's miss-ratio curve.
    mrc: MissRatioCurve

    def __post_init__(self) -> None:
        if self.access_rate_per_s < 0:
            raise ConfigurationError("access rate must be non-negative")


@dataclass(frozen=True)
class CacheShare:
    """Resolved share and miss ratio of one client."""

    name: str
    capacity_bytes: float
    miss_ratio: float


class SharedCacheModel:
    """Insertion-rate-proportional occupancy fixed point.

    Args:
        capacity_bytes: total shared-cache capacity.
        iterations: fixed-point iterations (converges geometrically;
            a dozen suffices for four clients).
        damping: under-relaxation factor in (0, 1] for stability.
    """

    def __init__(
        self,
        capacity_bytes: float,
        iterations: int = 16,
        damping: float = 0.7,
    ) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("cache capacity must be positive")
        if iterations < 1:
            raise ConfigurationError("need at least one iteration")
        if not 0.0 < damping <= 1.0:
            raise ConfigurationError("damping must be in (0, 1]")
        self._capacity = capacity_bytes
        self._iterations = iterations
        self._damping = damping

    @property
    def capacity_bytes(self) -> float:
        """Total shared capacity."""
        return self._capacity

    def solve(self, clients: list[CacheClient]) -> list[CacheShare]:
        """Resolve shares and miss ratios for a set of co-runners.

        A single client receives the whole cache.  Clients with zero
        access rate hold no cache.  The fixed point iterates:

        ``share_i ∝ access_rate_i * miss_ratio_i(share_i)``

        with under-relaxation, then evaluates each client's MRC at its
        converged share.
        """
        if not clients:
            return []
        active = [c for c in clients if c.access_rate_per_s > 0]
        if not active:
            return [CacheShare(c.name, 0.0, c.mrc.miss_ratio(0.0)) for c in clients]
        if len(active) == 1:
            only = active[0]
            shares = {only.name: self._capacity}
        else:
            shares = {c.name: self._capacity / len(active) for c in active}
            for _ in range(self._iterations):
                weights = {}
                for client in active:
                    miss = client.mrc.miss_ratio(shares[client.name])
                    # Insertion rate; epsilon keeps fully-fitting clients
                    # from collapsing to zero share (they still own their
                    # resident working set).
                    weights[client.name] = client.access_rate_per_s * max(miss, 1e-4)
                total_weight = sum(weights.values())
                for client in active:
                    target = self._capacity * weights[client.name] / total_weight
                    current = shares[client.name]
                    shares[client.name] = (
                        current + (target - current) * self._damping
                    )
        results = []
        for client in clients:
            share = shares.get(client.name, 0.0)
            results.append(
                CacheShare(
                    name=client.name,
                    capacity_bytes=share,
                    miss_ratio=client.mrc.miss_ratio(share),
                )
            )
        return results

    def total_miss_rate_per_s(self, clients: list[CacheClient]) -> float:
        """Aggregate miss rate (misses/second) of a co-running set."""
        shares = self.solve(clients)
        by_name = {share.name: share for share in shares}
        return sum(
            client.access_rate_per_s * by_name[client.name].miss_ratio
            for client in clients
        )
