"""An LRU set-associative cache simulator.

Models the shared L2 of the simulated platform (4 MB, 8-way, 64 B lines,
Table 4.1) and the Xeon 5160 L2 (4 MB, 16-way) of Chapter 5.  Used
directly in tests and to *measure* miss-ratio curves that validate the
parametric curves the analytic model uses.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class SetAssociativeCache:
    """A classic LRU set-associative cache with per-set recency order.

    Args:
        capacity_bytes: total capacity.
        ways: associativity.
        line_bytes: line size.
    """

    def __init__(self, capacity_bytes: int, ways: int, line_bytes: int = 64) -> None:
        if capacity_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ConfigurationError("cache geometry must be positive")
        if capacity_bytes % (ways * line_bytes) != 0:
            raise ConfigurationError(
                "capacity must be a multiple of ways * line size"
            )
        self._ways = ways
        self._line_bytes = line_bytes
        self._sets = capacity_bytes // (ways * line_bytes)
        if not _is_power_of_two(self._sets):
            raise ConfigurationError("number of sets must be a power of two")
        # Each set is an OrderedDict tag -> dirty flag; order = recency
        # (last entry is most recently used).
        self._lines: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self._sets)
        ]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def capacity_bytes(self) -> int:
        """Total capacity."""
        return self._sets * self._ways * self._line_bytes

    @property
    def sets(self) -> int:
        """Number of sets."""
        return self._sets

    @property
    def ways(self) -> int:
        """Associativity."""
        return self._ways

    def access(self, address: int, is_write: bool = False) -> bool:
        """Access one address; returns True on hit.

        A miss fills the line, evicting the LRU entry of the set; evicting
        a dirty line counts a writeback (memory write traffic).
        """
        line = address // self._line_bytes
        set_index = line % self._sets
        tag = line // self._sets
        entries = self._lines[set_index]
        if tag in entries:
            self.hits += 1
            entries[tag] = entries[tag] or is_write
            entries.move_to_end(tag)
            return True
        self.misses += 1
        if len(entries) >= self._ways:
            _, dirty = entries.popitem(last=False)
            if dirty:
                self.writebacks += 1
        entries[tag] = is_write
        return False

    @property
    def accesses(self) -> int:
        """Total accesses."""
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """Misses / accesses (0 when no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(entries) for entries in self._lines)

    def reset_stats(self) -> None:
        """Zero counters without flushing contents."""
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def flush(self) -> None:
        """Invalidate every line and zero counters."""
        for entries in self._lines:
            entries.clear()
        self.reset_stats()
