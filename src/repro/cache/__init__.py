"""Shared-cache substrate.

DTM-ACG's headline effect — gating cores cuts L2 contention, which cuts
memory traffic ~17% (§4.4.2) — flows entirely through the shared cache.
This package provides:

- :mod:`repro.cache.setassoc` — a real LRU set-associative cache
  simulator, used by tests and by the model-validation benches.
- :mod:`repro.cache.mrc` — miss-ratio curves: parametric curves and
  curves measured from the simulator.
- :mod:`repro.cache.sharing` — the multi-program contention model: an
  insertion-rate-proportional occupancy fixed point that predicts each
  co-runner's effective cache share.
"""

from repro.cache.setassoc import SetAssociativeCache
from repro.cache.mrc import MissRatioCurve, measured_mrc
from repro.cache.sharing import SharedCacheModel, CacheClient

__all__ = [
    "SetAssociativeCache",
    "MissRatioCurve",
    "measured_mrc",
    "SharedCacheModel",
    "CacheClient",
]
