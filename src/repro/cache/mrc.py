"""Miss-ratio curves (MRCs).

An application's L2 behaviour is summarized by its miss ratio as a
function of the cache capacity it effectively owns.  The analytic window
model evaluates these curves at the shares predicted by the contention
model; the synthetic SPEC-like profiles use the parametric form below,
and :func:`measured_mrc` extracts real curves from the LRU simulator for
validation.

The parametric form is a shifted power law with a compulsory-miss floor:

``m(c) = m_floor + (m_peak - m_floor) / (1 + (c / c_half)^alpha)``

- ``m_peak``: miss ratio with a tiny cache (capacity -> 0).
- ``m_floor``: compulsory/streaming miss ratio that no capacity removes.
- ``c_half``: capacity at which the capacity-miss component halves.
- ``alpha``: sharpness of the working-set knee.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.setassoc import SetAssociativeCache
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MissRatioCurve:
    """Parametric miss-ratio curve of one application."""

    m_peak: float
    m_floor: float
    c_half_bytes: float
    alpha: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.m_floor <= self.m_peak <= 1.0:
            raise ConfigurationError(
                "need 0 <= m_floor <= m_peak <= 1 "
                f"(got floor={self.m_floor}, peak={self.m_peak})"
            )
        if self.c_half_bytes <= 0:
            raise ConfigurationError("c_half must be positive")
        if self.alpha <= 0:
            raise ConfigurationError("alpha must be positive")

    def miss_ratio(self, capacity_bytes: float) -> float:
        """Miss ratio with ``capacity_bytes`` of effective cache."""
        if capacity_bytes <= 0:
            return self.m_peak
        scaled = (capacity_bytes / self.c_half_bytes) ** self.alpha
        return self.m_floor + (self.m_peak - self.m_floor) / (1.0 + scaled)

    def is_streaming(self, tolerance: float = 0.05) -> bool:
        """Whether extra capacity barely helps (m_floor close to m_peak)."""
        if self.m_peak == 0.0:
            return True
        return (self.m_peak - self.m_floor) / self.m_peak < tolerance


def measured_mrc(
    trace: list[int],
    capacities_bytes: list[int],
    ways: int = 8,
    line_bytes: int = 64,
) -> dict[int, float]:
    """Measure the miss ratio of an address trace at several capacities.

    Runs the LRU simulator once per capacity.  Used in tests to validate
    that the parametric curves behave like real caches (monotone
    non-increasing in capacity).
    """
    if not trace:
        raise ConfigurationError("trace must be non-empty")
    results: dict[int, float] = {}
    for capacity in capacities_bytes:
        cache = SetAssociativeCache(capacity, ways=ways, line_bytes=line_bytes)
        for address in trace:
            cache.access(address)
        results[capacity] = cache.miss_ratio
    return results
