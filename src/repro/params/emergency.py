"""Thermal emergency levels and control ladders (Tables 4.3 and 5.1).

A DTM policy quantizes the measured AMB / DRAM temperatures into discrete
*thermal emergency levels* and maps each level to a control decision:
a bandwidth cap (DTM-BW), an active-core count (DTM-ACG), a DVFS ladder
position (DTM-CDVFS) or a combination (DTM-COMB).  This module stores the
level boundaries and decision ladders exactly as tabulated in the paper.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import gbps


@dataclass(frozen=True)
class EmergencyLevels:
    """Quantization of temperatures into emergency levels plus ladders.

    ``amb_thresholds_c`` is the ascending list of AMB temperature
    boundaries; a reading below the first threshold is level 0 (L1 in the
    paper's one-based naming), a reading at or above the last threshold is
    the highest level.  ``dram_thresholds_c`` plays the same role for the
    DRAM chips and may be empty when the platform's hot spot is always the
    AMB (Chapter 5 servers).

    The ladder tuples have one entry per level:

    - ``bw_caps_bytes_per_s``: memory throughput cap (``None`` = no limit,
      ``0.0`` = memory off).
    - ``acg_active_cores``: number of cores left running.
    - ``cdvfs_levels``: index into the processor's DVFS operating points,
      where ``len(points)`` means "all cores stopped".
    """

    amb_thresholds_c: tuple[float, ...]
    dram_thresholds_c: tuple[float, ...]
    bw_caps_bytes_per_s: tuple[float | None, ...]
    acg_active_cores: tuple[int, ...]
    cdvfs_levels: tuple[int, ...]
    #: AMB / DRAM thermal design points, degC.
    amb_tdp_c: float = 110.0
    dram_tdp_c: float = 85.0
    #: Thermal release points for hysteresis-style policies (DTM-TS), degC.
    amb_trp_c: float = 109.0
    dram_trp_c: float = 84.0

    def __post_init__(self) -> None:
        levels = self.level_count
        for name, ladder in (
            ("bw_caps_bytes_per_s", self.bw_caps_bytes_per_s),
            ("acg_active_cores", self.acg_active_cores),
            ("cdvfs_levels", self.cdvfs_levels),
        ):
            if len(ladder) != levels:
                raise ConfigurationError(
                    f"{name} must have {levels} entries, got {len(ladder)}"
                )
        if list(self.amb_thresholds_c) != sorted(self.amb_thresholds_c):
            raise ConfigurationError("AMB thresholds must be ascending")
        if list(self.dram_thresholds_c) != sorted(self.dram_thresholds_c):
            raise ConfigurationError("DRAM thresholds must be ascending")
        if self.dram_thresholds_c and len(self.dram_thresholds_c) != len(
            self.amb_thresholds_c
        ):
            raise ConfigurationError(
                "AMB and DRAM threshold lists must have equal length when both used"
            )
        if self.amb_trp_c >= self.amb_tdp_c:
            raise ConfigurationError("AMB TRP must be below the AMB TDP")

    @property
    def level_count(self) -> int:
        """Number of emergency levels (thresholds + 1)."""
        return len(self.amb_thresholds_c) + 1

    def amb_level(self, amb_temp_c: float) -> int:
        """Emergency level implied by the AMB temperature alone."""
        return bisect.bisect_right(self.amb_thresholds_c, amb_temp_c)

    def dram_level(self, dram_temp_c: float) -> int:
        """Emergency level implied by the DRAM temperature alone."""
        if not self.dram_thresholds_c:
            return 0
        return bisect.bisect_right(self.dram_thresholds_c, dram_temp_c)

    def level(self, amb_temp_c: float, dram_temp_c: float) -> int:
        """Overall emergency level: the worse of the AMB and DRAM levels."""
        return max(self.amb_level(amb_temp_c), self.dram_level(dram_temp_c))

    def with_amb_tdp(self, tdp_c: float) -> "EmergencyLevels":
        """Rebuild the table around a different AMB TDP (§5.4.5).

        Every AMB threshold is shifted by the TDP delta, following the
        paper's rationale of stepping levels down from the design point.
        """
        delta = tdp_c - self.amb_tdp_c
        return EmergencyLevels(
            amb_thresholds_c=tuple(t + delta for t in self.amb_thresholds_c),
            dram_thresholds_c=self.dram_thresholds_c,
            bw_caps_bytes_per_s=self.bw_caps_bytes_per_s,
            acg_active_cores=self.acg_active_cores,
            cdvfs_levels=self.cdvfs_levels,
            amb_tdp_c=tdp_c,
            dram_tdp_c=self.dram_tdp_c,
            amb_trp_c=self.amb_trp_c + delta,
            dram_trp_c=self.dram_trp_c,
        )


#: Table 4.3 — five levels (L1..L5) for the simulated FBDIMM platform.
#: AMB TDP 110 degC / DRAM TDP 85 degC; DTM scale 25%.
SIMULATION_LEVELS = EmergencyLevels(
    amb_thresholds_c=(108.0, 109.0, 109.5, 110.0),
    dram_thresholds_c=(83.0, 84.0, 84.5, 85.0),
    bw_caps_bytes_per_s=(None, gbps(19.2), gbps(12.8), gbps(6.4), 0.0),
    acg_active_cores=(4, 3, 2, 1, 0),
    cdvfs_levels=(0, 1, 2, 3, 4),
    amb_tdp_c=110.0,
    dram_tdp_c=85.0,
    amb_trp_c=109.0,
    dram_trp_c=84.0,
)

#: Table 5.1, PE1950 rows — four levels, artificial AMB TDP 90 degC.
#: The hot spot on both servers is always the AMB, so no DRAM thresholds.
PE1950_LEVELS = EmergencyLevels(
    amb_thresholds_c=(76.0, 80.0, 84.0),
    dram_thresholds_c=(),
    bw_caps_bytes_per_s=(None, gbps(4.0), gbps(3.0), gbps(2.0)),
    acg_active_cores=(4, 3, 2, 2),
    cdvfs_levels=(0, 1, 2, 3),
    amb_tdp_c=90.0,
    dram_tdp_c=85.0,
    amb_trp_c=84.0,
    dram_trp_c=84.0,
)

#: Table 5.1, SR1500AL rows — four levels, conservative AMB TDP 100 degC.
SR1500AL_LEVELS = EmergencyLevels(
    amb_thresholds_c=(86.0, 90.0, 94.0),
    dram_thresholds_c=(),
    bw_caps_bytes_per_s=(None, gbps(5.0), gbps(4.0), gbps(3.0)),
    acg_active_cores=(4, 3, 2, 2),
    cdvfs_levels=(0, 1, 2, 3),
    amb_tdp_c=100.0,
    dram_tdp_c=85.0,
    amb_trp_c=94.0,
    dram_trp_c=84.0,
)
