"""Parameter tables transcribed from the paper.

Each module in this package holds one family of constants:

- :mod:`repro.params.dram_timing` — Table 4.1 (simulator / DDR2 timing).
- :mod:`repro.params.power_params` — Eq. 3.1 constants and Table 3.1
  (FBDIMM power model), Table 4.4 (processor power per DTM state).
- :mod:`repro.params.thermal_params` — Tables 3.2 and 3.3 (thermal
  resistances, RC time constants, ambient-model parameters).
- :mod:`repro.params.emergency` — Tables 4.3 and 5.1 (thermal emergency
  levels and the control decision ladder of every DTM scheme).

The values are deliberately kept as plain dataclasses / dictionaries so a
user can construct modified copies for sensitivity studies without touching
library code.
"""

from repro.params.dram_timing import DDR2Timing, FBDIMMChannelParams, SimulatedSystemParams
from repro.params.power_params import (
    AMBPowerParams,
    DRAMPowerParams,
    ProcessorPowerTable,
    SIMULATED_CPU_POWER,
    XEON_5160_POWER,
)
from repro.params.thermal_params import (
    AmbientModelParams,
    CoolingConfig,
    ThermalResistances,
    AOHS_1_0,
    AOHS_1_5,
    AOHS_3_0,
    FDHS_1_0,
    FDHS_1_5,
    FDHS_3_0,
    COOLING_CONFIGS,
    ISOLATED_AMBIENT,
    INTEGRATED_AMBIENT,
)
from repro.params.emergency import (
    EmergencyLevels,
    SIMULATION_LEVELS,
    PE1950_LEVELS,
    SR1500AL_LEVELS,
)

__all__ = [
    "DDR2Timing",
    "FBDIMMChannelParams",
    "SimulatedSystemParams",
    "AMBPowerParams",
    "DRAMPowerParams",
    "ProcessorPowerTable",
    "SIMULATED_CPU_POWER",
    "XEON_5160_POWER",
    "AmbientModelParams",
    "CoolingConfig",
    "ThermalResistances",
    "AOHS_1_0",
    "AOHS_1_5",
    "AOHS_3_0",
    "FDHS_1_0",
    "FDHS_1_5",
    "FDHS_3_0",
    "COOLING_CONFIGS",
    "ISOLATED_AMBIENT",
    "INTEGRATED_AMBIENT",
    "EmergencyLevels",
    "SIMULATION_LEVELS",
    "PE1950_LEVELS",
    "SR1500AL_LEVELS",
]
