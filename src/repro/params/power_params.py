"""FBDIMM and processor power-model parameters (Eq. 3.1, Table 3.1, Table 4.4).

Three parameter families live here:

- :class:`DRAMPowerParams` — the Micron-calculator-derived constants of the
  simple DRAM power model, Eq. 3.1.
- :class:`AMBPowerParams` — the Intel-specification-derived constants of
  the AMB power model, Eq. 3.2 / Table 3.1.
- :class:`ProcessorPowerTable` — the per-DTM-state processor power numbers
  of Table 4.4 (simulated 4-core Xeon-class chip) and the measured-system
  Xeon 5160 power model used in Chapter 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DRAMPowerParams:
    """Constants of the DRAM chip power model, Eq. 3.1.

    ``P_DRAM = static + alpha1 * read_throughput + alpha2 * write_throughput``
    with throughput in GB/s and power in watts, per DIMM.  The static term
    (0.98 W) assumes no low-power modes and 20% all-banks-precharged time,
    and folds in refresh power (§3.3).
    """

    #: Static power per DIMM, watts.
    static_w: float = 0.98
    #: Read throughput coefficient, watts per GB/s.
    alpha1_w_per_gbps: float = 1.12
    #: Write throughput coefficient, watts per GB/s.
    alpha2_w_per_gbps: float = 1.16

    def __post_init__(self) -> None:
        if self.static_w < 0 or self.alpha1_w_per_gbps < 0 or self.alpha2_w_per_gbps < 0:
            raise ConfigurationError("DRAM power parameters must be non-negative")


@dataclass(frozen=True)
class AMBPowerParams:
    """Constants of the AMB power model, Eq. 3.2 / Table 3.1.

    ``P_AMB = idle + beta * bypass_throughput + gamma * local_throughput``
    with throughput in GB/s and power in watts.  The last AMB on a channel
    idles at 4.0 W; every other AMB idles at 5.1 W because it must stay in
    synchronization with neighbors on both sides (§3.3).
    """

    #: Idle power of the last AMB on the daisy chain, watts.
    idle_last_dimm_w: float = 4.0
    #: Idle power of every other AMB, watts.
    idle_other_dimm_w: float = 5.1
    #: Bypass-traffic coefficient, watts per GB/s.
    beta_w_per_gbps: float = 0.19
    #: Local-traffic coefficient, watts per GB/s.
    gamma_w_per_gbps: float = 0.75

    def __post_init__(self) -> None:
        if self.beta_w_per_gbps < 0 or self.gamma_w_per_gbps < 0:
            raise ConfigurationError("AMB power coefficients must be non-negative")
        if self.gamma_w_per_gbps < self.beta_w_per_gbps:
            raise ConfigurationError(
                "a local request must cost at least as much as a bypassed one (§3.3)"
            )

    def idle_power_w(self, is_last_dimm: bool) -> float:
        """Idle power of one AMB depending on its daisy-chain position."""
        return self.idle_last_dimm_w if is_last_dimm else self.idle_other_dimm_w


@dataclass(frozen=True)
class DVFSOperatingPoint:
    """One processor DVFS operating point (frequency + supply voltage)."""

    frequency_hz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.frequency_hz < 0 or self.voltage_v < 0:
            raise ConfigurationError("operating point values must be non-negative")


@dataclass(frozen=True)
class ProcessorPowerTable:
    """Processor power consumption per DTM running state (Table 4.4).

    The simulated processor is a four-core chip whose per-core peak power
    is 65 W and whose per-core standby power is 15.5 W (one third of the
    30 A maximum HALT current at 1.55 V, §4.4.3).  Table 4.4 tabulates:

    - DTM-TS / DTM-BW: 62 W with memory off (all cores stalled/standby),
      260 W otherwise;
    - DTM-ACG: 62 + 49.5 * active_cores watts;
    - DTM-CDVFS: per operating point — 62, 80.6, 116.5, 193.4, 260 W.
    """

    cores: int = 4
    #: Peak power per active core at the top operating point, watts.
    core_peak_w: float = 65.0
    #: Standby (clock-gated / halted) power per core, watts.
    core_standby_w: float = 15.5
    #: DVFS ladder, highest first (Table 4.1 / Table 4.4).
    operating_points: tuple[DVFSOperatingPoint, ...] = (
        DVFSOperatingPoint(3.2e9, 1.55),
        DVFSOperatingPoint(2.8e9, 1.35),
        DVFSOperatingPoint(1.6e9, 1.15),
        DVFSOperatingPoint(0.8e9, 0.95),
    )
    #: Power at each DVFS point with all cores active (Table 4.4),
    #: highest-frequency first; the all-stopped state draws standby power.
    cdvfs_power_w: tuple[float, ...] = (260.0, 193.4, 116.5, 80.6)

    def __post_init__(self) -> None:
        if len(self.cdvfs_power_w) != len(self.operating_points):
            raise ConfigurationError(
                "cdvfs_power_w must have one entry per operating point"
            )

    @property
    def standby_w(self) -> float:
        """Chip power with every core halted (Table 4.4 row '0 cores')."""
        return self.cores * self.core_standby_w

    def acg_power_w(self, active_cores: int) -> float:
        """Chip power with ``active_cores`` running at full speed.

        Table 4.4: 62, 111.5, 161, 210.5 and 260 W for 0..4 active cores,
        i.e. standby plus (peak - standby) per active core.
        """
        if not 0 <= active_cores <= self.cores:
            raise ConfigurationError(
                f"active_cores must be within [0, {self.cores}], got {active_cores}"
            )
        increment = self.core_peak_w - self.core_standby_w
        return self.standby_w + increment * active_cores

    def cdvfs_power_at_level(self, level: int) -> float:
        """Chip power at DVFS ladder position ``level`` (0 = fastest).

        A level equal to ``len(operating_points)`` means fully stopped.
        """
        if level == len(self.operating_points):
            return self.standby_w
        if not 0 <= level < len(self.operating_points):
            raise ConfigurationError(f"invalid DVFS level {level}")
        return self.cdvfs_power_w[level]


#: Table 4.4 instantiation for the simulated platform of Chapter 4.
SIMULATED_CPU_POWER = ProcessorPowerTable()


@dataclass(frozen=True)
class MeasuredProcessorPower:
    """Activity-based power model for the Xeon 5160 servers of Chapter 5.

    The measured machines carry two dual-core Xeon 5160 sockets.  Modern
    cores clock-gate stalled functional blocks, so chip power follows core
    *activity* (retired-uop throughput) rather than merely the enabled-core
    count — which is exactly why DTM-ACG saves little CPU power on real
    systems (§5.4.4) while DTM-CDVFS saves ~15.5% through voltage scaling.

    ``P = idle + sum_cores(active_w * utilization * (V/Vmax)^2 * (f/fmax))``
    """

    sockets: int = 2
    cores_per_socket: int = 2
    #: Idle power of both sockets combined (uncore + leakage), watts.
    idle_w: float = 55.0
    #: Maximum dynamic power per core at top frequency/voltage, watts.
    core_active_w: float = 30.0
    #: Activity floor of an online core: even fully stalled on memory, a
    #: running core spins its front end and caches.  This is why DTM-BW
    #: saves almost no CPU power despite throttling memory (§5.4.4).
    min_activity: float = 0.35
    #: DVFS ladder of the Xeon 5160 (§5.2.1), highest first.
    operating_points: tuple[DVFSOperatingPoint, ...] = (
        DVFSOperatingPoint(3.000e9, 1.2125),
        DVFSOperatingPoint(2.667e9, 1.1625),
        DVFSOperatingPoint(2.333e9, 1.1000),
        DVFSOperatingPoint(2.000e9, 1.0375),
    )

    @property
    def total_cores(self) -> int:
        """Total core count across sockets."""
        return self.sockets * self.cores_per_socket

    def power_w(self, utilizations: list[float], level: int) -> float:
        """Chip power given per-ONLINE-core utilizations and a DVFS level.

        Each entry of ``utilizations`` is one online core; gated/offline
        cores are omitted by the caller.  Online cores draw at least the
        ``min_activity`` floor.
        """
        if not 0 <= level < len(self.operating_points):
            raise ConfigurationError(f"invalid DVFS level {level}")
        point = self.operating_points[level]
        top = self.operating_points[0]
        voltage_scale = (point.voltage_v / top.voltage_v) ** 2
        frequency_scale = point.frequency_hz / top.frequency_hz
        dynamic = sum(
            self.core_active_w * min(max(u, self.min_activity), 1.0)
            for u in utilizations
        )
        return self.idle_w + dynamic * voltage_scale * frequency_scale


#: Chapter 5 measured-platform processor power model.
XEON_5160_POWER = MeasuredProcessorPower()
