"""DDR2 / FBDIMM timing and simulated-system parameters (Table 4.1).

The paper simulates a four-core processor attached to a multi-channel
FBDIMM memory using 667 MT/s DDR2 devices with (5-5-5) timing.  The
dataclasses below carry those parameters into both the cycle-level DRAM
simulator (:mod:`repro.dram`) and the analytic window model
(:mod:`repro.core.windowmodel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DDR2Timing:
    """DDR2 device timing constraints, in nanoseconds (Table 4.1).

    The default values are the (5-5-5) DDR2-667 parameters used in the
    paper: tRCD = tCL = tRP = 15 ns at a 3 ns bus-clock period.
    """

    #: Activate to read/write delay (RAS-to-CAS).
    trcd_ns: float = 15.0
    #: Read command to first data (CAS latency).
    tcl_ns: float = 15.0
    #: Precharge to activate delay.
    trp_ns: float = 15.0
    #: Activate to precharge minimum (row active time).
    tras_ns: float = 39.0
    #: Activate to activate on the same bank (row cycle).
    trc_ns: float = 54.0
    #: Write-to-read turnaround.
    twtr_ns: float = 9.0
    #: Write latency (command to first write data).
    twl_ns: float = 12.0
    #: Write to precharge delay.
    twpd_ns: float = 36.0
    #: Read to precharge delay.
    trpd_ns: float = 9.0
    #: Activate to activate across banks (row-to-row delay).
    trrd_ns: float = 9.0
    #: Data transfer rate in mega-transfers per second.
    transfer_rate_mt: float = 667.0
    #: Burst length in transfers; 4 transfers of 8 bytes moves 32 bytes
    #: per DDR2 x8 rank access, so a 64 B line spans two channels (§3.3).
    burst_length: int = 4

    def __post_init__(self) -> None:
        if self.trc_ns < self.tras_ns:
            raise ConfigurationError(
                f"tRC ({self.trc_ns} ns) must be >= tRAS ({self.tras_ns} ns)"
            )
        if self.transfer_rate_mt <= 0:
            raise ConfigurationError("transfer rate must be positive")

    @property
    def clock_period_ns(self) -> float:
        """Bus clock period in nanoseconds (DDR: two transfers/clock)."""
        return 2000.0 / self.transfer_rate_mt

    @property
    def burst_duration_ns(self) -> float:
        """Time for one burst on the DDR2 data bus."""
        return self.burst_length * self.clock_period_ns / 2.0

    def in_cycles(self, nanoseconds: float) -> int:
        """Round a latency in ns up to whole bus-clock cycles."""
        period = self.clock_period_ns
        return max(0, int(-(-nanoseconds // period)))


@dataclass(frozen=True)
class FBDIMMChannelParams:
    """FBDIMM channel interconnect parameters (§3.2 and Table 4.1).

    During each memory (bus) cycle the southbound link carries three
    commands or one command plus 16 B of write data; the northbound link
    carries 32 B of read data.  The daisy-chained AMBs add a fixed pass-
    through latency per hop, which is what produces the variable read
    latency (VRL) feature.
    """

    #: Commands per southbound frame when no write data is carried.
    southbound_commands_per_frame: int = 3
    #: Write-data payload bytes per southbound frame (1 command + 16 B).
    southbound_write_bytes: int = 16
    #: Read-data payload bytes per northbound frame.
    northbound_read_bytes: int = 32
    #: AMB pass-through latency per hop, nanoseconds (each direction).
    amb_hop_ns: float = 3.0
    #: AMB local translation latency (FBDIMM frame -> DDR2 command), ns.
    amb_translate_ns: float = 5.0
    #: Memory controller fixed overhead per request, ns (Table 4.1: 12 ns).
    controller_overhead_ns: float = 12.0
    #: Memory controller request buffer entries (Table 4.1).
    controller_queue_entries: int = 64
    #: Whether variable read latency is enabled (§3.2).
    variable_read_latency: bool = True

    def frame_period_ns(self, timing: DDR2Timing) -> float:
        """FBDIMM frame period, in nanoseconds.

        One frame spans two DDR2 bus clocks, so a 32 B northbound frame
        stream exactly matches the peak bandwidth of one DDR2 channel
        (§3.2: "the maximum bandwidth of the northbound link matches that
        of one DDR2 channel"): 32 B / 6 ns = 5.33 GB/s at 667 MT/s.
        """
        return 2.0 * timing.clock_period_ns

    def northbound_peak_bytes_per_s(self, timing: DDR2Timing) -> float:
        """Peak read bandwidth of one FBDIMM channel in bytes/second.

        The northbound link matches the bandwidth of one DDR2 channel
        (§3.2): 32 B per frame at the bus clock rate.
        """
        return self.northbound_read_bytes / (self.frame_period_ns(timing) * 1e-9)

    def southbound_peak_bytes_per_s(self, timing: DDR2Timing) -> float:
        """Peak write bandwidth of one FBDIMM channel in bytes/second."""
        return self.southbound_write_bytes / (self.frame_period_ns(timing) * 1e-9)


@dataclass(frozen=True)
class SimulatedSystemParams:
    """Whole-system parameters of the simulated platform (Table 4.1)."""

    #: Number of processor cores.
    cores: int = 4
    #: Issue width per core.
    issue_width: int = 4
    #: Pipeline depth (stages).
    pipeline_stages: int = 21
    #: Nominal (maximum) core clock in Hz.
    max_frequency_hz: float = 3.2e9
    #: Shared L2 capacity in bytes (4 MB).
    l2_capacity_bytes: int = 4 * 1024 * 1024
    #: L2 associativity.
    l2_ways: int = 8
    #: Cache line size in bytes.
    line_bytes: int = 64
    #: Logical FBDIMM channels (each logical channel = 2 physical, §3.3:
    #: a 64 B line is transferred over two FBDIMM channels).
    logical_channels: int = 2
    #: Physical FBDIMM channels.
    physical_channels: int = 4
    #: DIMMs per physical channel.
    dimms_per_channel: int = 4
    #: DRAM banks per DIMM.
    banks_per_dimm: int = 8
    #: DTM control interval in seconds (Table 4.1: 10 ms).
    dtm_interval_s: float = 0.010
    #: DTM control overhead per interval in seconds (Table 4.1: 25 us).
    dtm_overhead_s: float = 25e-6
    #: DDR2 device timing.
    timing: DDR2Timing = field(default_factory=DDR2Timing)
    #: FBDIMM channel parameters.
    channel: FBDIMMChannelParams = field(default_factory=FBDIMMChannelParams)

    def __post_init__(self) -> None:
        if self.physical_channels % self.logical_channels != 0:
            raise ConfigurationError(
                "physical channels must be a multiple of logical channels"
            )
        if self.cores <= 0:
            raise ConfigurationError("core count must be positive")

    @property
    def total_dimms(self) -> int:
        """Total DIMMs in the memory subsystem."""
        return self.physical_channels * self.dimms_per_channel

    @property
    def peak_read_bandwidth_bytes_per_s(self) -> float:
        """Aggregate peak read bandwidth across all physical channels."""
        per_channel = self.channel.northbound_peak_bytes_per_s(self.timing)
        return per_channel * self.physical_channels

    @property
    def peak_write_bandwidth_bytes_per_s(self) -> float:
        """Aggregate peak write bandwidth across all physical channels."""
        per_channel = self.channel.southbound_peak_bytes_per_s(self.timing)
        return per_channel * self.physical_channels
