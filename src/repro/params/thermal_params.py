"""Thermal model parameters (Tables 3.2 and 3.3).

Table 3.2 gives the thermal resistances between the AMB, the DRAM chips
and ambient for each of six cooling configurations — two heat-spreader
types (AMB-Only Heat Spreader and Full-DIMM Heat Spreader) at three air
velocities — plus the RC time constants tau_AMB = 50 s and tau_DRAM =
100 s.  Table 3.3 gives the system inlet temperatures and the CPU-to-
memory thermal interaction coefficient of the integrated ambient model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ThermalResistances:
    """Thermal resistances of one cooling configuration, in degC/W (Table 3.2)."""

    #: AMB to ambient.
    psi_amb: float
    #: DRAM-power contribution to AMB temperature (DRAM -> AMB coupling).
    psi_dram_amb: float
    #: DRAM chip to ambient.
    psi_dram: float
    #: AMB-power contribution to DRAM temperature (AMB -> DRAM coupling).
    psi_amb_dram: float

    def __post_init__(self) -> None:
        for name, value in (
            ("psi_amb", self.psi_amb),
            ("psi_dram_amb", self.psi_dram_amb),
            ("psi_dram", self.psi_dram),
            ("psi_amb_dram", self.psi_amb_dram),
        ):
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class CoolingConfig:
    """A named cooling configuration: heat spreader + air velocity (Table 3.2)."""

    name: str
    #: Heat spreader type: "AOHS" (AMB only) or "FDHS" (full DIMM).
    heat_spreader: str
    #: Cooling air velocity in m/s.
    air_velocity_m_per_s: float
    resistances: ThermalResistances
    #: AMB thermal RC time constant, seconds (Table 3.2).
    tau_amb_s: float = 50.0
    #: DRAM thermal RC time constant, seconds (Table 3.2).
    tau_dram_s: float = 100.0

    def __post_init__(self) -> None:
        if self.heat_spreader not in ("AOHS", "FDHS"):
            raise ConfigurationError(
                f"heat spreader must be AOHS or FDHS, got {self.heat_spreader!r}"
            )
        if self.air_velocity_m_per_s <= 0:
            raise ConfigurationError("air velocity must be positive")
        if self.tau_amb_s <= 0 or self.tau_dram_s <= 0:
            raise ConfigurationError("time constants must be positive")


#: AMB-Only Heat Spreader columns of Table 3.2.
AOHS_1_0 = CoolingConfig(
    name="AOHS_1.0",
    heat_spreader="AOHS",
    air_velocity_m_per_s=1.0,
    resistances=ThermalResistances(
        psi_amb=11.2, psi_dram_amb=4.3, psi_dram=4.9, psi_amb_dram=5.3
    ),
)
AOHS_1_5 = CoolingConfig(
    name="AOHS_1.5",
    heat_spreader="AOHS",
    air_velocity_m_per_s=1.5,
    resistances=ThermalResistances(
        psi_amb=9.3, psi_dram_amb=3.4, psi_dram=4.0, psi_amb_dram=4.1
    ),
)
AOHS_3_0 = CoolingConfig(
    name="AOHS_3.0",
    heat_spreader="AOHS",
    air_velocity_m_per_s=3.0,
    resistances=ThermalResistances(
        psi_amb=6.6, psi_dram_amb=2.2, psi_dram=2.7, psi_amb_dram=2.6
    ),
)

#: Full-DIMM Heat Spreader columns of Table 3.2.
FDHS_1_0 = CoolingConfig(
    name="FDHS_1.0",
    heat_spreader="FDHS",
    air_velocity_m_per_s=1.0,
    resistances=ThermalResistances(
        psi_amb=8.0, psi_dram_amb=4.4, psi_dram=4.0, psi_amb_dram=5.7
    ),
)
FDHS_1_5 = CoolingConfig(
    name="FDHS_1.5",
    heat_spreader="FDHS",
    air_velocity_m_per_s=1.5,
    resistances=ThermalResistances(
        psi_amb=7.0, psi_dram_amb=3.7, psi_dram=3.3, psi_amb_dram=4.5
    ),
)
FDHS_3_0 = CoolingConfig(
    name="FDHS_3.0",
    heat_spreader="FDHS",
    air_velocity_m_per_s=3.0,
    resistances=ThermalResistances(
        psi_amb=5.5, psi_dram_amb=2.9, psi_dram=2.3, psi_amb_dram=2.9
    ),
)

#: All six Table 3.2 columns, keyed by name.  The paper's experiments use
#: the two bold columns AOHS_1.5 and FDHS_1.0.
COOLING_CONFIGS: dict[str, CoolingConfig] = {
    config.name: config
    for config in (AOHS_1_0, AOHS_1_5, AOHS_3_0, FDHS_1_0, FDHS_1_5, FDHS_3_0)
}


@dataclass(frozen=True)
class AmbientModelParams:
    """DRAM ambient-temperature model parameters (Eq. 3.6, Table 3.3).

    ``TA_stable = T_inlet + interaction * sum_i(V_core_i * IPC_core_i)``
    where ``interaction`` is the product Psi_CPU_MEM * xi.  The isolated
    model sets the interaction to zero; the integrated model uses 1.5 and
    correspondingly lower inlet temperatures so both models represent the
    same thermally-constrained environment.
    """

    #: System inlet temperature per cooling configuration name, degC.
    inlet_by_cooling: dict[str, float]
    #: Psi_CPU_MEM * xi, degC per (volt * IPC) summed over cores.
    interaction: float
    #: RC time constant of the ambient node, seconds (§3.5: 20 s).
    tau_ambient_s: float = 20.0

    def __post_init__(self) -> None:
        if self.interaction < 0:
            raise ConfigurationError("interaction degree must be non-negative")
        if self.tau_ambient_s <= 0:
            raise ConfigurationError("tau_ambient_s must be positive")

    def inlet_for(self, cooling_name: str) -> float:
        """System inlet temperature for a cooling configuration."""
        try:
            return self.inlet_by_cooling[cooling_name]
        except KeyError:
            raise ConfigurationError(
                f"no inlet temperature recorded for cooling {cooling_name!r}"
            ) from None

    def with_interaction(self, interaction: float) -> "AmbientModelParams":
        """A copy with a different CPU-memory interaction degree (§4.5.2)."""
        return AmbientModelParams(
            inlet_by_cooling=dict(self.inlet_by_cooling),
            interaction=interaction,
            tau_ambient_s=self.tau_ambient_s,
        )

    def with_inlet_delta(self, delta_c: float) -> "AmbientModelParams":
        """A copy with every inlet temperature shifted by ``delta_c``.

        Scenario knob: a hot machine room (positive delta) or an
        over-provisioned cold aisle (negative delta) shifts the whole
        Table 3.3 inlet row without touching the interaction model.
        """
        return AmbientModelParams(
            inlet_by_cooling={
                name: inlet + delta_c
                for name, inlet in self.inlet_by_cooling.items()
            },
            interaction=self.interaction,
            tau_ambient_s=self.tau_ambient_s,
        )


#: Table 3.3, isolated model row: constant ambient, no CPU interaction.
ISOLATED_AMBIENT = AmbientModelParams(
    inlet_by_cooling={"FDHS_1.0": 45.0, "AOHS_1.5": 50.0},
    interaction=0.0,
)

#: Table 3.3, integrated model row: pre-heated airflow, interaction 1.5.
INTEGRATED_AMBIENT = AmbientModelParams(
    inlet_by_cooling={"FDHS_1.0": 40.0, "AOHS_1.5": 45.0},
    interaction=1.5,
)
