"""A dependency-free metrics registry with bounded label cardinality.

Counters, gauges, and fixed-bucket histograms, rendered two ways from
one source of truth: Prometheus-style text exposition (the default
``GET /metrics`` body) and a JSON document (``?format=json``) for
consumers without a scraper.

Label cardinality is bounded *per metric*: once a metric has
``max_series`` distinct label sets, further label combinations collapse
into a single ``"_other"`` series instead of allocating new ones.  An
unbounded tenant-id stream therefore costs O(1) memory and keeps the
scrape payload flat — the standing advice from every production
monitoring postmortem, enforced in the registry rather than left to
caller discipline.
"""

from __future__ import annotations

import threading
from typing import Iterator

#: Seconds buckets sized for this workload: warm cells are sub-ms, a
#: cold cell is ~0.3-0.5 s, multi-cell jobs run seconds to minutes.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 120.0
)

#: Collapsed-series label value once a metric's cardinality bound hits.
OVERFLOW_LABEL = "_other"

#: Default distinct-label-set bound per metric.
DEFAULT_MAX_SERIES = 64


def _format_value(value: float) -> str:
    """Render ints without a trailing ``.0`` (Prometheus style)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    rendered = ",".join(f'{name}="{value}"' for name, value in labels)
    return "{" + rendered + "}"


class _Series:
    """One label-set's state within a metric."""

    __slots__ = ("value", "count", "total", "buckets")

    def __init__(self, bucket_count: int = 0) -> None:
        self.value = 0.0
        self.count = 0
        self.total = 0.0
        self.buckets = [0] * bucket_count


class Metric:
    """One named counter/gauge/histogram family."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.label_names = label_names
        self.buckets = buckets if kind == "histogram" else ()
        self.max_series = max_series
        self._series: dict[tuple[str, ...], _Series] = {}

    def _series_for(self, label_values: tuple[str, ...]) -> _Series:
        series = self._series.get(label_values)
        if series is None:
            if len(self._series) >= self.max_series:
                label_values = (OVERFLOW_LABEL,) * len(self.label_names)
                series = self._series.get(label_values)
            if series is None:
                series = self._series[label_values] = _Series(
                    len(self.buckets)
                )
        return series

    def _resolve(self, labels: dict[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{list(self.label_names)}, got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    # Mutators are called under the registry lock.

    def inc(self, labels: dict[str, str], amount: float) -> None:
        self._series_for(self._resolve(labels)).value += amount

    def set(self, labels: dict[str, str], value: float) -> None:
        self._series_for(self._resolve(labels)).value = value

    def observe(self, labels: dict[str, str], value: float) -> None:
        series = self._series_for(self._resolve(labels))
        series.count += 1
        series.total += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                series.buckets[index] += 1

    # Renderers.

    def render_text(self) -> Iterator[str]:
        yield f"# HELP {self.name} {self.help_text}"
        yield f"# TYPE {self.name} {self.kind}"
        for label_values in sorted(self._series):
            series = self._series[label_values]
            labels = tuple(zip(self.label_names, label_values))
            if self.kind == "histogram":
                cumulative = 0
                for bound, bucket in zip(self.buckets, series.buckets):
                    cumulative += bucket
                    bucket_labels = labels + (("le", _format_value(bound)),)
                    yield (
                        f"{self.name}_bucket{_format_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                inf_labels = labels + (("le", "+Inf"),)
                yield f"{self.name}_bucket{_format_labels(inf_labels)} {series.count}"
                yield f"{self.name}_sum{_format_labels(labels)} {_format_value(round(series.total, 6))}"
                yield f"{self.name}_count{_format_labels(labels)} {series.count}"
            else:
                yield (
                    f"{self.name}{_format_labels(labels)} "
                    f"{_format_value(series.value)}"
                )

    def render_json(self) -> dict:
        series_docs = []
        for label_values in sorted(self._series):
            series = self._series[label_values]
            doc: dict = {"labels": dict(zip(self.label_names, label_values))}
            if self.kind == "histogram":
                doc["count"] = series.count
                doc["sum"] = round(series.total, 6)
                doc["buckets"] = {
                    _format_value(bound): bucket
                    for bound, bucket in zip(self.buckets, series.buckets)
                }
            else:
                doc["value"] = series.value
            series_docs.append(doc)
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help_text,
            "series": series_docs,
        }


class MetricsRegistry:
    """Thread-safe collection of metrics with one render path."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        **kwargs,
    ) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Metric(
                name, kind, help_text, label_names, **kwargs
            )
        elif metric.kind != kind or metric.label_names != label_names:
            raise ValueError(
                f"metric {name!r} re-registered with a different "
                f"kind/label set"
            )
        return metric

    def counter_inc(
        self, name: str, help_text: str, amount: float = 1.0, **labels: str
    ) -> None:
        """Increment a counter (registered on first use)."""
        with self._lock:
            metric = self._register(
                name, "counter", help_text, tuple(sorted(labels))
            )
            metric.inc(labels, amount)

    def gauge_set(
        self, name: str, help_text: str, value: float, **labels: str
    ) -> None:
        """Set a gauge to an absolute value."""
        with self._lock:
            metric = self._register(
                name, "gauge", help_text, tuple(sorted(labels))
            )
            metric.set(labels, value)

    def observe(
        self,
        name: str,
        help_text: str,
        value: float,
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> None:
        """Record one histogram observation."""
        with self._lock:
            metric = self._register(
                name, "histogram", help_text, tuple(sorted(labels)),
                buckets=buckets,
            )
            metric.observe(labels, value)

    def counter_value(self, name: str, **labels: str) -> float:
        """Current value of one counter series (0 when absent)."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                return 0.0
            key = tuple(str(labels[n]) for n in metric.label_names)
            series = metric._series.get(key)
            return 0.0 if series is None else series.value

    def render_text(self) -> str:
        """The Prometheus-style exposition body."""
        with self._lock:
            lines: list[str] = []
            for name in sorted(self._metrics):
                lines.extend(self._metrics[name].render_text())
        return "\n".join(lines) + "\n"

    def render_json(self) -> list[dict]:
        """Every metric as a JSON-ready document."""
        with self._lock:
            return [
                self._metrics[name].render_json()
                for name in sorted(self._metrics)
            ]
