"""Deprecated alias of :mod:`repro.obs.metrics`.

The metrics registry grew up here alongside the jobs service (PR 8);
it is now the process-wide observability registry and lives in
:mod:`repro.obs.metrics`, next to tracing and SLO evaluation.
Importing this module keeps old code working unchanged but emits a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.obs.metrics import (  # noqa: F401
    DEFAULT_BUCKETS,
    DEFAULT_MAX_SERIES,
    METRICS,
    OVERFLOW_LABEL,
    Metric,
    MetricsRegistry,
)

warnings.warn(
    "repro.jobs.metrics is deprecated: the registry moved to "
    "repro.obs.metrics (the process-wide METRICS instance lives there "
    "too)",
    DeprecationWarning,
    stacklevel=2,
)
