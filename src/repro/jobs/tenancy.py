"""Per-tenant admission control: active-job quotas and rate limits.

Two independent gates run at submit time, both answering with a
structured 429 when they fail:

- **active-job quota** — at most ``max_active`` queued+running jobs per
  tenant, so one tenant cannot occupy the whole queue;
- **token-bucket rate limit** — ``rate_per_s`` sustained submits with
  ``burst`` headroom, so a tight submit loop is throttled even while
  its earlier jobs finish quickly.

:class:`QuotaExceeded` carries the machine-readable fields the HTTP
layer surfaces (``reason``, ``retry_after_s``), so clients can back
off precisely instead of guessing.

Tenant tracking is bounded: after ``max_tenants`` distinct names, new
tenants share one overflow bucket — an unbounded tenant-id stream
(or an attack) cannot grow server memory or metric cardinality.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError

#: Label under which tenants beyond the tracking bound are pooled.
OVERFLOW_TENANT = "_overflow"


class QuotaExceeded(ReproError):
    """A submit rejected by tenancy limits (HTTP 429)."""

    def __init__(
        self, tenant: str, reason: str, message: str, retry_after_s: float
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        #: ``"max_active"`` or ``"rate"``.
        self.reason = reason
        self.retry_after_s = round(max(0.0, retry_after_s), 3)


@dataclass(frozen=True)
class TenantPolicy:
    """The admission limits applied to one tenant."""

    #: Max queued+running jobs at once.
    max_active: int = 8
    #: Sustained submit rate (tokens refilled per second).
    rate_per_s: float = 5.0
    #: Bucket capacity (instantaneous burst headroom).
    burst: int = 10


class TokenBucket:
    """A classic token bucket over an injectable monotonic clock."""

    def __init__(
        self,
        rate_per_s: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate_per_s
        )
        self._stamp = now

    def take(self) -> bool:
        """Consume one token; False when the bucket is dry."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def seconds_until_token(self) -> float:
        """How long until :meth:`take` would succeed."""
        self._refill()
        if self._tokens >= 1.0:
            return 0.0
        if self.rate_per_s <= 0:
            return float("inf")
        return (1.0 - self._tokens) / self.rate_per_s


class QuotaManager:
    """Admission control across tenants (thread-safe)."""

    def __init__(
        self,
        default: TenantPolicy | None = None,
        overrides: dict[str, TenantPolicy] | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        max_tenants: int = 64,
    ) -> None:
        self.default = default or TenantPolicy()
        self.overrides = dict(overrides or {})
        self._clock = clock
        self._max_tenants = max_tenants
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._admitted: dict[str, int] = {}

    def policy_for(self, tenant: str) -> TenantPolicy:
        """The policy applied to ``tenant``."""
        return self.overrides.get(tenant, self.default)

    def _bucket_key(self, tenant: str) -> str:
        # Named-override tenants always get their own bucket; anonymous
        # long-tail tenants share the overflow bucket past the bound.
        if tenant in self.overrides or tenant in self._buckets:
            return tenant
        if len(self._buckets) >= self._max_tenants:
            return OVERFLOW_TENANT
        return tenant

    def admit(self, tenant: str, active_jobs: int) -> None:
        """Gate one submit; raises :class:`QuotaExceeded` on refusal."""
        policy = self.policy_for(tenant)
        if active_jobs >= policy.max_active:
            raise QuotaExceeded(
                tenant,
                "max_active",
                f"tenant {tenant!r} already has {active_jobs} active job(s) "
                f"(limit {policy.max_active}); retry after one completes",
                retry_after_s=1.0,
            )
        with self._lock:
            key = self._bucket_key(tenant)
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._buckets[key] = TokenBucket(
                    policy.rate_per_s, policy.burst, clock=self._clock
                )
            if not bucket.take():
                raise QuotaExceeded(
                    tenant,
                    "rate",
                    f"tenant {tenant!r} exceeded {policy.rate_per_s}/s "
                    f"submit rate (burst {policy.burst})",
                    retry_after_s=bucket.seconds_until_token(),
                )
            self._admitted[key] = self._admitted.get(key, 0) + 1

    def usage(self) -> dict[str, dict]:
        """Per-tenant admitted counts (for ``/metrics`` and debugging)."""
        with self._lock:
            return {
                tenant: {"admitted": count}
                for tenant, count in sorted(self._admitted.items())
            }
