"""``repro.jobs`` — the multi-tenant campaign job service.

Promotes the single-campaign coordinator into a long-running shared
service: a crash-safe persistent job queue with priorities and
FIFO-within-priority ordering, per-tenant quotas and token-bucket rate
limits, a priority-preempting scheduler that drains the queue onto any
:class:`~repro.cluster.ExecutionBackend`, and a bounded-cardinality
metrics registry backing ``GET /metrics``.

The HTTP surface lives in :mod:`repro.api.service` (``/v1/jobs``,
``/v1/healthz``, ``/metrics``); this package is transport-free and
fully usable in-process:

    from repro.jobs import JobsManager

    manager = JobsManager(".repro_jobs")
    manager.start()                      # recovers persisted jobs
    doc = manager.submit_body({
        "request": {"type": "simulate", "mix": "W1", "policy": "acg"},
        "tenant": "alice",
        "priority": 5,
    })
"""

from repro.jobs.client import JobsApiError, JobsClient, wait_for_port_file
from repro.jobs.queue import JobQueue
from repro.obs.metrics import MetricsRegistry
from repro.jobs.scheduler import (
    JobScheduler,
    JobsManager,
    expand_job_request,
    job_progress_label,
)
from repro.jobs.store import (
    CANCELLED,
    COMPLETED,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobRecord,
    JobStore,
    new_job_id,
)
from repro.jobs.tenancy import (
    QuotaExceeded,
    QuotaManager,
    TenantPolicy,
    TokenBucket,
)

__all__ = [
    "CANCELLED",
    "COMPLETED",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "JobQueue",
    "JobRecord",
    "JobScheduler",
    "JobStore",
    "JobsApiError",
    "JobsClient",
    "JobsManager",
    "MetricsRegistry",
    "QuotaExceeded",
    "QuotaManager",
    "TenantPolicy",
    "TokenBucket",
    "expand_job_request",
    "job_progress_label",
    "new_job_id",
    "wait_for_port_file",
]
