"""The in-memory priority queue over the persistent job store.

``JobQueue`` is the single synchronization point of the jobs service:
submitters (HTTP handler threads) push records, the scheduler thread
pops the most urgent one, and every mutation is written through to the
:class:`~repro.jobs.store.JobStore` before it is observable — so the
on-disk state is always at least as advanced as what any client was
told.

Ordering is strict priority (higher number = more urgent), FIFO within
a priority band via the monotonically increasing ``submit_seq``.  A
preempted job is requeued with its *original* sequence number, so it
resumes ahead of later arrivals at the same priority instead of going
to the back of the line.

``recover()`` is the crash-resume path: records found on disk in
``running`` state belonged to a scheduler that died mid-job; they are
moved back to ``queued`` (keeping their per-cell checkpoints) and
re-offered to the new scheduler.
"""

from __future__ import annotations

import heapq
import threading
import time
from pathlib import Path

from repro.errors import ConfigurationError
from repro.jobs.store import (
    CANCELLED,
    QUEUED,
    RUNNING,
    JobRecord,
    JobStore,
)


class JobQueue:
    """Thread-safe priority queue of :class:`JobRecord`, disk-backed."""

    def __init__(self, root: str | Path) -> None:
        self.store = JobStore(root)
        self._lock = threading.Condition()
        self._records: dict[str, JobRecord] = {}
        #: Min-heap of (-priority, submit_seq, job_id); stale entries
        #: (cancelled while queued) are skipped at pop time.
        self._heap: list[tuple[int, int, str]] = []
        self._next_seq = 0

    # -- recovery ----------------------------------------------------------

    def recover(self) -> dict:
        """Load disk state; requeue interrupted work.  Returns counts.

        Jobs persisted as ``running`` were in flight when the previous
        process died: they go back to ``queued`` with their checkpoints
        intact and a ``recovered`` event, so the scheduler resumes them
        from the last window-slice boundary rather than from scratch.
        """
        requeued = 0
        terminal = 0
        with self._lock:
            self.store.sweep_tmp()
            for record in self.store.iter_records():
                self._records[record.job_id] = record
                self._next_seq = max(self._next_seq, record.submit_seq + 1)
                if record.status == RUNNING:
                    record.status = QUEUED
                    record.add_event(
                        "recovered",
                        f"requeued after restart with "
                        f"{len(record.cell_states)} cell checkpoint(s)",
                    )
                    self.store.save(record)
                if record.status == QUEUED:
                    heapq.heappush(
                        self._heap,
                        (-record.priority, record.submit_seq, record.job_id),
                    )
                    requeued += 1
                else:
                    terminal += 1
            self._lock.notify_all()
        return {"requeued": requeued, "terminal": terminal}

    # -- producer side -----------------------------------------------------

    def submit(
        self, tenant: str, request: dict, *, priority: int = 0, job_id: str | None = None
    ) -> JobRecord:
        """Persist and enqueue a new job; returns its record."""
        from repro.jobs.store import new_job_id

        record = JobRecord(
            job_id=job_id or new_job_id(),
            tenant=tenant,
            request=dict(request),
            priority=int(priority),
            created_s=round(time.time(), 3),
        )
        with self._lock:
            if record.job_id in self._records:
                raise ConfigurationError(
                    f"duplicate job id {record.job_id!r}"
                )
            record.submit_seq = self._next_seq
            self._next_seq += 1
            record.add_event("queued", f"priority {record.priority}")
            self.store.save(record)
            self._records[record.job_id] = record
            heapq.heappush(
                self._heap, (-record.priority, record.submit_seq, record.job_id)
            )
            self._lock.notify_all()
        return record

    # -- consumer side (the scheduler thread) ------------------------------

    def next_ready(self, timeout_s: float | None = None) -> JobRecord | None:
        """Pop the most urgent queued job, blocking up to ``timeout_s``.

        The popped record is marked ``running`` and persisted before it
        is returned, so a crash between pop and first slice still
        recovers the job.
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._lock:
            while True:
                record = self._pop_queued_locked()
                if record is not None:
                    record.status = RUNNING
                    if record.started_s is None:
                        record.started_s = round(time.time(), 3)
                    record.add_event("started")
                    self.store.save(record)
                    return record
                if deadline is None:
                    self._lock.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._lock.wait(remaining)

    def _pop_queued_locked(self) -> JobRecord | None:
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            record = self._records.get(job_id)
            if record is not None and record.status == QUEUED:
                return record
        return None

    def requeue(self, record: JobRecord, *, event: str, detail: str = "") -> None:
        """Put an interrupted job back in line (original submit_seq)."""
        with self._lock:
            record.status = QUEUED
            record.add_event(event, detail)
            self.store.save(record)
            heapq.heappush(
                self._heap, (-record.priority, record.submit_seq, record.job_id)
            )
            self._lock.notify_all()

    def persist(self, record: JobRecord) -> None:
        """Write a record's current state through to disk."""
        with self._lock:
            self.store.save(record)

    def has_queued_higher_than(self, priority: int) -> bool:
        """Is a strictly more urgent job waiting?  (Preemption probe.)"""
        with self._lock:
            for neg_priority, _, job_id in self._heap:
                record = self._records.get(job_id)
                if record is None or record.status != QUEUED:
                    continue
                if -neg_priority > priority:
                    return True
            return False

    # -- inspection / control ----------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        """The record for ``job_id`` (live object; treat as read-only)."""
        with self._lock:
            return self._records.get(job_id)

    def list_records(self, tenant: str | None = None) -> list[JobRecord]:
        """Every known record, newest submit first."""
        with self._lock:
            records = [
                record
                for record in self._records.values()
                if tenant is None or record.tenant == tenant
            ]
        return sorted(records, key=lambda r: -r.submit_seq)

    def depth(self) -> int:
        """Number of jobs currently waiting to run."""
        with self._lock:
            return sum(
                1 for r in self._records.values() if r.status == QUEUED
            )

    def running_count(self) -> int:
        """Number of jobs currently executing."""
        with self._lock:
            return sum(
                1 for r in self._records.values() if r.status == RUNNING
            )

    def active_count(self, tenant: str) -> int:
        """Queued + running jobs for one tenant (the quota basis)."""
        with self._lock:
            return sum(
                1
                for r in self._records.values()
                if r.tenant == tenant and r.status in (QUEUED, RUNNING)
            )

    def request_cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: immediate when queued, cooperative when running.

        A queued job flips straight to ``cancelled``; a running one
        gets its flag set and stops at the next window-slice boundary.
        Terminal jobs are left as they are (idempotent).
        """
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise ConfigurationError(f"unknown job {job_id!r}")
            if record.terminal:
                return record
            record.cancel_requested = True
            if record.status == QUEUED:
                record.status = CANCELLED
                record.finished_s = round(time.time(), 3)
                record.add_event("cancelled", "cancelled while queued")
            else:
                record.add_event("cancel_requested")
            self.store.save(record)
            return record

    def cancel_requested(self, job_id: str) -> bool:
        """Has a cancel been requested for this job?"""
        with self._lock:
            record = self._records.get(job_id)
            return bool(record and record.cancel_requested)
