"""A small stdlib HTTP client for the ``/v1/jobs`` lifecycle.

Used by the ``repro jobs`` CLI subcommands and by the
:class:`~repro.api.client.ReproClient` ``submit_job``/``wait_job``
façade.  Every error response is structured
(``{"schema_version", "error", ...}``); :class:`JobsApiError` carries
the HTTP status and the decoded body so callers can distinguish a 429
quota refusal (``retry_after_s``) from a 400.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from repro.errors import ReproError
from repro.obs.trace import TRACE_HEADER, TRACER


class JobsApiError(ReproError):
    """A non-2xx answer from the jobs service."""

    def __init__(self, status: int, body: dict) -> None:
        super().__init__(
            f"jobs service answered {status}: "
            f"{body.get('error', 'unknown error')}"
        )
        self.status = status
        self.body = body

    @property
    def retry_after_s(self) -> float | None:
        """Backoff hint on 429 responses, when the server sent one."""
        value = self.body.get("retry_after_s")
        return float(value) if isinstance(value, (int, float)) else None


class JobsClient:
    """Talk to one jobs-enabled ``python -m repro serve`` instance."""

    def __init__(self, base_url: str, *, timeout_s: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _call(
        self, method: str, path: str, body: dict | None = None
    ) -> dict:
        data = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if data else {}
        trace_header = TRACER.propagation_header()
        if trace_header:
            headers[TRACE_HEADER] = trace_header
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers=headers,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                return json.load(resp)
        except urllib.error.HTTPError as error:
            try:
                payload = json.loads(error.read().decode())
            except ValueError:
                payload = {"error": f"non-JSON {error.code} response"}
            raise JobsApiError(error.code, payload) from None

    # -- lifecycle calls -----------------------------------------------------

    def submit(
        self,
        request: dict,
        *,
        tenant: str = "default",
        priority: int = 0,
    ) -> dict:
        """Submit one typed request dict; returns the job document."""
        return self._call(
            "POST",
            "/v1/jobs",
            {"request": request, "tenant": tenant, "priority": priority},
        )

    def status(self, job_id: str) -> dict:
        """The job's status document (with live per-cell progress)."""
        return self._call("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The completed job's result document (409 while running)."""
        return self._call("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        """Request cancellation; returns the job document."""
        return self._call("POST", f"/v1/jobs/{job_id}/cancel")

    def list(self, tenant: str | None = None) -> dict:
        """Every known job, optionally filtered by tenant."""
        suffix = f"?tenant={tenant}" if tenant else ""
        return self._call("GET", f"/v1/jobs{suffix}")

    def wait(
        self,
        job_id: str,
        *,
        timeout_s: float = 300.0,
        poll_s: float = 0.25,
    ) -> dict:
        """Poll until the job is terminal; returns the result document.

        Raises :class:`JobsApiError` when the job ends cancelled or
        failed (the 409 result answer), or :class:`TimeoutError` when
        ``timeout_s`` elapses first.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            document = self.status(job_id)
            status = document["job"]["status"]
            if status in ("completed", "failed", "cancelled"):
                return self.result(job_id)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status!r} after {timeout_s}s"
                )
            time.sleep(poll_s)

    def healthz(self) -> dict:
        """The service's ``/v1/healthz`` document."""
        return self._call("GET", "/v1/healthz")

    def metrics_json(self) -> dict:
        """The ``/metrics?format=json`` document."""
        return self._call("GET", "/metrics?format=json")


def wait_for_port_file(path: str, *, timeout_s: float = 15.0) -> int:
    """Poll a ``--port-file`` until the serving process writes it."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with open(path) as handle:
                text = handle.read().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    raise TimeoutError(f"no port appeared in {path} within {timeout_s}s")
