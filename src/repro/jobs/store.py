"""Persistent job records — one atomic JSON file per job.

The jobs service must survive being killed at any instant: a submit
that was acknowledged is never lost, and a job that was mid-cell
resumes from its last window-slice checkpoint instead of restarting.
Both properties come from the same discipline the result cache uses
(:class:`~repro.campaign.stores.JsonDirStore`): every record mutation
is written to a temp file in the same directory and published with one
atomic ``os.replace``.  A reader therefore sees either the previous
complete record or the new complete record, never a torn write.

The record carries everything needed to resume: the original typed
request dict, per-cell :class:`~repro.engine.EngineState` checkpoints
(persisted at every window-slice boundary while the job runs), the
envelopes of cells already completed, and an append-only event log
(queued/started/preempted/recovered/...) that doubles as the job's
audit trail.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ConfigurationError

#: On-disk record format tag (checked on load).
RECORD_FORMAT = "repro-job-record"
#: Record layout version; bump on incompatible layout changes.
RECORD_VERSION = 1

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED})
#: Every valid state.
JOB_STATES = frozenset({QUEUED, RUNNING}) | TERMINAL_STATES

#: Events kept per record (oldest dropped first) so a pathological
#: preemption ping-pong cannot grow a record without bound.
_MAX_EVENTS = 200

_tmp_counter = 0
_tmp_lock = threading.Lock()


def new_job_id() -> str:
    """A fresh, URL-safe job identifier."""
    return f"job-{uuid.uuid4().hex[:12]}"


@dataclass
class JobRecord:
    """The full persistent state of one submitted job."""

    job_id: str
    tenant: str
    request: dict
    priority: int = 0
    status: str = QUEUED
    #: Monotonic per-queue sequence number: FIFO order within a
    #: priority band.  A preempted job keeps its original number, so it
    #: resumes ahead of later same-priority arrivals.
    submit_seq: int = 0
    created_s: float = 0.0
    started_s: float | None = None
    finished_s: float | None = None
    cells_total: int = 0
    cells_done: int = 0
    #: Cache key -> serialized EngineState checkpoint for cells that
    #: were interrupted mid-run (preemption, SIGTERM drain, crash).
    cell_states: dict[str, dict] = field(default_factory=dict)
    #: Envelope dicts of completed cells, in spec order.
    results: list[dict] = field(default_factory=list)
    #: How many times the job was preempted by higher-priority work.
    preemptions: int = 0
    #: Cooperative-cancel flag checked at window-slice boundaries.
    cancel_requested: bool = False
    error: str | None = None
    #: The submitter's trace context (``trace_id:span_id`` header
    #: value), so the scheduler joins the submit's trace when the job
    #: runs — possibly after a process restart.
    trace: str | None = None
    events: list[dict] = field(default_factory=list)

    def add_event(self, event: str, detail: str = "") -> None:
        """Append to the audit log (bounded; oldest evicted)."""
        entry: dict[str, Any] = {"at_s": round(time.time(), 3), "event": event}
        if detail:
            entry["detail"] = detail
        self.events.append(entry)
        del self.events[: max(0, len(self.events) - _MAX_EVENTS)]

    @property
    def terminal(self) -> bool:
        """True once the job can never run again."""
        return self.status in TERMINAL_STATES

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready); inverse of :meth:`from_dict`."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "request": dict(self.request),
            "priority": self.priority,
            "status": self.status,
            "submit_seq": self.submit_seq,
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "cells_total": self.cells_total,
            "cells_done": self.cells_done,
            "cell_states": dict(self.cell_states),
            "results": list(self.results),
            "preemptions": self.preemptions,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
            "trace": self.trace,
            "events": list(self.events),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "JobRecord":
        """Rebuild a record from its dict form."""
        missing = {"job_id", "tenant", "request", "status"} - set(raw)
        if missing:
            raise ConfigurationError(
                f"job record is missing fields {sorted(missing)}"
            )
        if raw["status"] not in JOB_STATES:
            raise ConfigurationError(
                f"job record has unknown status {raw['status']!r}"
            )
        known = {key for key in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in raw.items() if key in known})


class JobStore:
    """A directory of atomically written job records.

    One ``<job_id>.json`` per job; writes go to a process/thread-unique
    temp name and publish with ``os.replace``, so a record on disk is
    always a complete JSON document (the property ``recover()`` relies
    on after a crash).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, job_id: str) -> Path:
        if "/" in job_id or job_id.startswith("."):
            raise ConfigurationError(f"malformed job id {job_id!r}")
        return self.root / f"{job_id}.json"

    def save(self, record: JobRecord) -> None:
        """Atomically persist ``record`` (publish-or-nothing)."""
        global _tmp_counter
        path = self._path(record.job_id)
        with _tmp_lock:
            _tmp_counter += 1
            counter = _tmp_counter
        tmp = path.with_name(
            f"{path.name}.tmp.{os.getpid()}.{threading.get_ident()}.{counter}"
        )
        document = {
            "format": RECORD_FORMAT,
            "version": RECORD_VERSION,
            "job": record.to_dict(),
        }
        tmp.write_text(json.dumps(document, sort_keys=True))
        os.replace(tmp, path)

    def load(self, job_id: str) -> JobRecord | None:
        """The stored record, or None when absent/unreadable."""
        path = self._path(job_id)
        try:
            raw = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(raw, dict) or raw.get("format") != RECORD_FORMAT:
            return None
        try:
            return JobRecord.from_dict(raw.get("job") or {})
        except ConfigurationError:
            return None

    def delete(self, job_id: str) -> bool:
        """Remove a record; True when something was deleted."""
        try:
            self._path(job_id).unlink()
            return True
        except OSError:
            return False

    def iter_records(self) -> Iterator[JobRecord]:
        """Every readable record on disk (order unspecified)."""
        for path in sorted(self.root.glob("*.json")):
            record = self.load(path.stem)
            if record is not None:
                yield record

    def sweep_tmp(self) -> int:
        """Remove leftover temp files from crashed writers."""
        removed = 0
        for tmp in self.root.glob("*.json.tmp.*"):
            try:
                tmp.unlink()
                removed += 1
            except OSError:
                pass
        return removed
