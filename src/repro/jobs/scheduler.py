"""The scheduler loop and the service-facing jobs manager.

:class:`JobScheduler` is one daemon thread draining the
:class:`~repro.jobs.queue.JobQueue` in priority order.  Each job lowers
through the same typed-request machinery the CLI and HTTP routes use,
so a job's result document is exactly what the equivalent direct call
would have produced — warm results are byte-identical.

Execution has two paths:

- **in-process sliced (default, ``backend=None``)** — every cell runs
  on this thread through its :class:`~repro.engine.SteppingEngine` in
  ``window_slice``-window slices.  At each slice boundary the engine's
  checkpoint is persisted into the job record (crash durability) and
  the scheduler checks for cancellation, a drain request, and queued
  higher-priority work.  Preemption therefore lands at window-slice
  granularity: the running job checkpoints, requeues with its original
  submit sequence, and the urgent job takes the thread.
- **execution backend** — cells run through
  :class:`~repro.campaign.Campaign` on any
  :class:`~repro.cluster.ExecutionBackend` (vector gangs, a process
  pool, an HTTP worker fleet).  Cancel/preempt/drain are honored at
  cell boundaries (the backend owns the intra-cell loop); an
  :class:`~repro.cluster.HttpWorkerBackend`'s heartbeat requeues and
  worker deaths surface as events on the running job's record.

:class:`JobsManager` bundles queue + scheduler + quotas + metrics into
the object :class:`~repro.api.service.ReproService` mounts under
``/v1/jobs`` and ``/metrics``.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.api.client import _cell_echo, metrics_from_result
from repro.api.envelope import SCHEMA_VERSION, Provenance, ResultEnvelope
from repro.api.requests import (
    CampaignRequest,
    CompareRequest,
    ScenarioRequest,
    request_from_dict,
    request_to_dict,
)
from repro.campaign import (
    Campaign,
    cached_payload,
    default_store,
    engine_for_spec,
    run_outcome,
    runner_for,
    spec_meta,
)
from repro.engine import EngineState
from repro.engine.progress import PROGRESS
from repro.errors import ConfigurationError, ReproError
from repro.jobs.queue import JobQueue
from repro.obs.log import LOG
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.trace import TRACER
from repro.jobs.store import (
    CANCELLED,
    COMPLETED,
    FAILED,
    JobRecord,
)
from repro.jobs.tenancy import QuotaManager

#: Request types whose result document is one bare envelope (matching
#: the CLI's single-envelope ``--json`` output).
_SINGLE_ENVELOPE_TYPES = frozenset({"simulate", "server"})

#: Per-cell slice outcomes (module-private control flow).
_DONE = "done"
_PREEMPTED = "preempted"
_CANCELLED = "cancelled"
_DRAINED = "drained"


def job_progress_label(job_id: str, key: str) -> str:
    """The PROGRESS broker label for one job's cell.

    Job-scoped so two jobs computing the same cell key (or a job plus a
    direct API call) publish to distinct streams — per-job isolation.
    """
    return f"{job_id}/{key}"


def expand_job_request(request: Any) -> tuple[list, list[dict]]:
    """Lower a typed request to ``(specs, request echoes)``.

    The echoes are exactly what the equivalent direct client call would
    embed in each envelope, which is what keeps warm job results
    byte-identical to warm CLI ``--json`` output.
    """
    if isinstance(request, CompareRequest):
        cells = request.cell_requests()
        return (
            [cell.spec() for cell in cells],
            [request_to_dict(cell) for cell in cells],
        )
    if isinstance(request, (CampaignRequest, ScenarioRequest)):
        if request.jobs != 1:
            raise ConfigurationError(
                "job requests must have jobs=1: the scheduler (and its "
                "backend) owns parallelism"
            )
        _, specs = request.cells()
        return specs, [_cell_echo(spec) for spec in specs]
    # simulate / server
    return [request.spec()], [request_to_dict(request)]


class JobScheduler:
    """One daemon thread executing queued jobs in priority order."""

    def __init__(
        self,
        queue: JobQueue,
        *,
        store: Any | None = None,
        backend: Any | None = None,
        window_slice: int = 500,
        metrics: MetricsRegistry | None = None,
        poll_s: float = 0.25,
    ) -> None:
        if window_slice < 1:
            raise ConfigurationError("window_slice must be >= 1")
        self.queue = queue
        self._store = store
        self.backend = backend
        self.window_slice = window_slice
        self.metrics = metrics if metrics is not None else METRICS
        self._poll_s = poll_s
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._current: JobRecord | None = None
        self._current_lock = threading.Lock()
        if backend is not None and getattr(backend, "on_event", "x") is None:
            # An HttpWorkerBackend without a listener: surface its
            # heartbeat requeues / worker deaths on the running job.
            backend.on_event = self._fleet_event

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start the scheduler thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-job-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self, *, drain: bool = True, timeout_s: float = 60.0) -> None:
        """Stop the loop; with ``drain`` the in-flight slice finishes.

        The running job (if any) checkpoints at its next window-slice
        boundary and goes back to the queue in ``queued`` state, so a
        subsequent start — in this process or after a restart — resumes
        it warm.
        """
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout_s if drain else self._poll_s * 4)
            self._thread = None

    @property
    def running_job_id(self) -> str | None:
        """The job currently on the scheduler thread, if any."""
        with self._current_lock:
            return self._current.job_id if self._current else None

    def backend_kind(self) -> str:
        """A short label for the execution backend in use."""
        if self.backend is None:
            return "serial"
        return type(self.backend).__name__.replace("Backend", "").lower()

    # -- the loop -----------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            record = self.queue.next_ready(timeout_s=self._poll_s)
            self._publish_queue_gauges()
            if record is None:
                continue
            with self._current_lock:
                self._current = record
            try:
                self._execute_traced(record)
            except ReproError as error:
                self._fail(record, str(error))
            except Exception as error:  # noqa: BLE001 — keep the loop alive
                self._fail(record, f"{type(error).__name__}: {error}")
            finally:
                with self._current_lock:
                    self._current = None
                self._publish_queue_gauges()

    def _publish_queue_gauges(self) -> None:
        self.metrics.gauge_set(
            "repro_jobs_queue_depth",
            "Jobs waiting to run",
            self.queue.depth(),
        )
        self.metrics.gauge_set(
            "repro_jobs_running",
            "Jobs currently executing",
            self.queue.running_count(),
        )
        backend = self.backend
        if backend is not None and hasattr(backend, "fleet_stats"):
            stats = backend.fleet_stats()
            self.metrics.gauge_set(
                "repro_fleet_workers_alive",
                "Fleet workers answering heartbeats",
                sum(1 for worker in stats if worker["alive"]),
            )
            self.metrics.gauge_set(
                "repro_fleet_workers_dead",
                "Fleet workers marked dead",
                sum(1 for worker in stats if not worker["alive"]),
            )

    def _fleet_event(self, event: dict) -> None:
        """Backend listener: pin fleet events to the running job."""
        with self._current_lock:
            record = self._current
        if record is None:
            return
        name = str(event.get("event", "fleet_event"))
        detail = ", ".join(
            f"{key}={value}"
            for key, value in sorted(event.items())
            if key != "event"
        )
        record.add_event(name, detail)
        self.queue.persist(record)
        self.metrics.counter_inc(
            "repro_fleet_events_total", "Fleet events observed", kind=name
        )

    def _fail(self, record: JobRecord, message: str) -> None:
        record.status = FAILED
        record.error = message
        record.finished_s = round(time.time(), 3)
        record.add_event("failed", message)
        self.queue.persist(record)
        self._observe_finished(record)
        LOG.error("job.failed", job=record.job_id, error=message)

    def _observe_finished(self, record: JobRecord) -> None:
        self.metrics.counter_inc(
            "repro_jobs_finished_total",
            "Jobs reaching a terminal state",
            status=record.status,
            tenant=record.tenant,
        )
        if record.finished_s and record.created_s:
            self.metrics.observe(
                "repro_job_latency_seconds",
                "Submit-to-terminal latency per tenant",
                max(0.0, record.finished_s - record.created_s),
                tenant=record.tenant,
            )
        if record.started_s and record.created_s:
            self.metrics.observe(
                "repro_job_queue_wait_seconds",
                "Submit-to-first-start wait per tenant",
                max(0.0, record.started_s - record.created_s),
                tenant=record.tenant,
            )
        # Eager /v1/progress hygiene: a terminal job's per-cell streams
        # will never update again, so a long-lived service drops them
        # now instead of leaning on the bounded-finished eviction.
        PROGRESS.forget_prefix(f"{record.job_id}/")

    # -- job execution ------------------------------------------------------

    def _execute_traced(self, record: JobRecord) -> None:
        """Run one job under the trace context captured at submit."""
        parsed = TRACER.parse_header(getattr(record, "trace", None))
        if parsed is None:
            with TRACER.span("job", job=record.job_id, tenant=record.tenant):
                self._execute(record)
            return
        with TRACER.activate(*parsed):
            with TRACER.span("job", job=record.job_id, tenant=record.tenant):
                self._execute(record)

    def _execute(self, record: JobRecord) -> None:
        request = request_from_dict(record.request)
        specs, echoes = expand_job_request(request)
        record.cells_total = len(specs)
        # A resumed/preempted job's completed cells are already in
        # record.results; continue from the first unfinished spec.
        start = min(record.cells_done, len(specs))
        if self.backend is None:
            runner = self._run_cells_sliced
        else:
            runner = self._run_cells_backend
        state = runner(record, specs[start:], echoes[start:])
        if state == _PREEMPTED:
            record.preemptions += 1
            self.metrics.counter_inc(
                "repro_job_preemptions_total",
                "Jobs preempted by higher-priority submits",
            )
            self.queue.requeue(
                record,
                event="preempted",
                detail=f"after {record.cells_done}/{record.cells_total} "
                f"cell(s); checkpoints kept",
            )
            return
        if state == _DRAINED:
            self.queue.requeue(
                record, event="drained", detail="scheduler stopping"
            )
            return
        if state == _CANCELLED:
            record.status = CANCELLED
            record.finished_s = round(time.time(), 3)
            record.add_event("cancelled", "stopped at a slice boundary")
            self.queue.persist(record)
            self._observe_finished(record)
            return
        record.status = COMPLETED
        record.finished_s = round(time.time(), 3)
        record.cell_states.clear()
        record.add_event("completed")
        self.queue.persist(record)
        self._observe_finished(record)
        LOG.info(
            "job.completed",
            job=record.job_id,
            tenant=record.tenant,
            cells=record.cells_done,
        )

    def _interruption(self, record: JobRecord) -> str | None:
        """Which interruption applies at this boundary, if any."""
        if self.queue.cancel_requested(record.job_id):
            return _CANCELLED
        if self._stop.is_set():
            return _DRAINED
        if self.queue.has_queued_higher_than(record.priority):
            return _PREEMPTED
        return None

    def _finish_cell(
        self,
        record: JobRecord,
        spec: Any,
        echo: dict,
        result: Any,
        hit: bool,
        seconds: float,
        store_info: dict | None = None,
    ) -> None:
        store_info = store_info or {}
        envelope = ResultEnvelope(
            kind=spec.kind,
            scenario=getattr(spec, "scenario", None),
            request=echo,
            metrics=metrics_from_result(result),
            provenance=Provenance(
                cache="hit" if hit else "miss",
                cache_key=spec.key(),
                compute_seconds=round(seconds, 6),
                shard=store_info.get("shard"),
                single_flight=store_info.get("single_flight"),
            ),
        )
        record.results.append(envelope.to_dict())
        record.cells_done += 1
        record.cell_states.pop(spec.key(), None)
        self.queue.persist(record)
        self.metrics.counter_inc(
            "repro_job_cells_total",
            "Cells served to jobs by cache state",
            cache="hit" if hit else "miss",
        )
        # The cell's progress stream is complete; prune it eagerly.
        PROGRESS.forget(job_progress_label(record.job_id, spec.key()))
        LOG.info(
            "job.cell_finished",
            job=record.job_id,
            cell=spec.key(),
            cache="hit" if hit else "miss",
            done=record.cells_done,
            total=record.cells_total,
        )

    def _run_cells_sliced(
        self, record: JobRecord, specs: list, echoes: list[dict]
    ) -> str:
        """The in-process path: every cell time-sliced on this thread."""
        for spec, echo in zip(specs, echoes):
            state = self._run_one_sliced(record, spec, echo)
            if state != _DONE:
                return state
            interruption = self._interruption(record)
            if interruption is not None and spec is not specs[-1]:
                return interruption
        return _DONE

    def _run_one_sliced(self, record: JobRecord, spec: Any, echo: dict) -> str:
        key = spec.key()
        payload = cached_payload(spec, self._store)
        if payload is not None:
            result = runner_for(spec.kind).decode(payload)
            self._finish_cell(record, spec, echo, result, True, 0.0)
            return _DONE
        try:
            engine = engine_for_spec(spec)
        except ConfigurationError:
            # No engine factory for this kind: whole-run execution,
            # interruptible only at cell boundaries.
            outcome = run_outcome(spec, store=self._store)
            self._finish_cell(
                record, spec, echo, outcome.result, outcome.hit,
                outcome.compute_seconds, outcome.store_info,
            )
            return _DONE
        started = time.perf_counter()
        with PROGRESS.track(job_progress_label(record.job_id, key)):
            resume = record.cell_states.get(key)
            if resume is not None:
                engine.restore(EngineState.from_dict(resume))
                record.add_event(
                    "cell_resumed", f"{key} from window {engine.windows}"
                )
            while True:
                engine.step_windows(self.window_slice)
                if engine.done:
                    break
                # Window-slice boundary: persist the checkpoint (crash
                # durability), then honor cancel/drain/preempt.
                record.cell_states[key] = engine.checkpoint().to_dict()
                self.queue.persist(record)
                interruption = self._interruption(record)
                if interruption is not None:
                    return interruption
            result = engine.finish()
        seconds = time.perf_counter() - started
        payload = runner_for(spec.kind).encode(result)
        store = default_store() if self._store is None else self._store
        store.put(key, payload, meta=spec_meta(spec))
        self._finish_cell(record, spec, echo, result, False, seconds)
        return _DONE

    def _run_cells_backend(
        self, record: JobRecord, specs: list, echoes: list[dict]
    ) -> str:
        """The backend path: cells via Campaign, checks between cells."""
        echo_by_position = iter(echoes)
        campaign = Campaign(specs, store=self._store, backend=self.backend)
        for spec, outcome in campaign.iter_outcomes():
            self._finish_cell(
                record, spec, next(echo_by_position), outcome.result,
                outcome.hit, outcome.compute_seconds, outcome.store_info,
            )
            if record.cells_done < record.cells_total:
                interruption = self._interruption(record)
                if interruption is not None:
                    # Abandoning the iterator drops the backend's
                    # remaining cells; completed ones are cached, so
                    # the resume recomputes nothing.
                    return interruption
        return _DONE


class JobsManager:
    """Queue + scheduler + quotas + metrics behind one façade.

    The object :class:`~repro.api.service.ReproService` mounts: HTTP
    handlers call :meth:`submit_body` / :meth:`status_document` /
    :meth:`result_document` / :meth:`cancel` / :meth:`list_document`,
    and ``serve`` drives :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        jobs_dir: str,
        *,
        store: Any | None = None,
        backend: Any | None = None,
        window_slice: int = 500,
        quotas: QuotaManager | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else METRICS
        self.queue = JobQueue(jobs_dir)
        self.quotas = quotas if quotas is not None else QuotaManager()
        self.scheduler = JobScheduler(
            self.queue,
            store=store,
            backend=backend,
            window_slice=window_slice,
            metrics=self.metrics,
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> dict:
        """Recover persisted jobs, then start scheduling.  Returns counts."""
        recovered = self.queue.recover()
        self.scheduler.start()
        return recovered

    def stop(self, *, drain: bool = True) -> None:
        """Stop scheduling; with ``drain`` the in-flight slice finishes."""
        self.scheduler.stop(drain=drain)

    # -- submissions ---------------------------------------------------------

    def submit_body(self, body: dict) -> dict:
        """Validate and enqueue one ``POST /v1/jobs`` body.

        Raises :class:`~repro.jobs.tenancy.QuotaExceeded` (429) or
        :class:`~repro.errors.ConfigurationError` (400).
        """
        if not isinstance(body, dict):
            raise ConfigurationError("job submit body must be a JSON object")
        unknown = set(body) - {"request", "tenant", "priority"}
        if unknown:
            raise ConfigurationError(
                f"unknown job submit fields {sorted(unknown)}"
            )
        raw_request = body.get("request")
        if not isinstance(raw_request, dict):
            raise ConfigurationError(
                "job submit body needs a 'request' object (a typed API "
                "request with its 'type' tag)"
            )
        tenant = body.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
            raise ConfigurationError(
                "tenant must be a non-empty string (at most 64 chars)"
            )
        priority = body.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ConfigurationError("priority must be an integer")
        if not -100 <= priority <= 100:
            raise ConfigurationError("priority must be between -100 and 100")
        # Validate the request shape (and normalize it) before taking a
        # quota token or touching disk.
        request = request_from_dict(raw_request)
        specs, _ = expand_job_request(request)
        self.quotas.admit(tenant, self.queue.active_count(tenant))
        record = self.queue.submit(
            tenant, request_to_dict(request), priority=priority
        )
        record.cells_total = len(specs)
        # Capture the submitter's trace context so the scheduler thread
        # (and any backend workers it dispatches to) joins the same
        # trace when the job eventually runs.
        record.trace = TRACER.propagation_header()
        self.queue.persist(record)
        self.metrics.counter_inc(
            "repro_jobs_submitted_total",
            "Jobs accepted per tenant",
            tenant=tenant,
        )
        LOG.info(
            "job.submitted",
            job=record.job_id,
            tenant=tenant,
            priority=priority,
            cells=record.cells_total,
        )
        return self.job_document(record)

    # -- documents -----------------------------------------------------------

    def job_document(self, record: JobRecord, *, progress: bool = False) -> dict:
        """The ``/v1/jobs/<id>`` status document."""
        job: dict[str, Any] = {
            "id": record.job_id,
            "tenant": record.tenant,
            "priority": record.priority,
            "status": record.status,
            "request": dict(record.request),
            "created_s": record.created_s,
            "started_s": record.started_s,
            "finished_s": record.finished_s,
            "cells_total": record.cells_total,
            "cells_done": record.cells_done,
            "preemptions": record.preemptions,
            "events": list(record.events),
        }
        if record.error is not None:
            job["error"] = record.error
        if progress:
            prefix = f"{record.job_id}/"
            job["progress"] = {
                label[len(prefix):]: snap
                for label, snap in PROGRESS.snapshot().items()
                if label.startswith(prefix)
            }
        return {"schema_version": SCHEMA_VERSION, "job": job}

    def status_document(self, job_id: str) -> dict | None:
        """Status with live per-cell progress, or None when unknown."""
        record = self.queue.get(job_id)
        if record is None:
            return None
        return self.job_document(record, progress=True)

    def result_document(self, job_id: str) -> tuple[int, dict]:
        """``(http status, document)`` for ``GET /v1/jobs/<id>/result``.

        A completed single-cell job answers with the bare envelope —
        byte-identical to the equivalent warm CLI ``--json`` — and
        multi-cell jobs with the standard results document.
        """
        record = self.queue.get(job_id)
        if record is None:
            return 404, {
                "schema_version": SCHEMA_VERSION,
                "error": f"unknown job {job_id!r}",
            }
        if record.status != COMPLETED:
            return 409, {
                "schema_version": SCHEMA_VERSION,
                "error": f"job {job_id} has no result "
                f"(status {record.status!r})",
                "status": record.status,
            }
        request_type = record.request.get("type")
        if request_type in _SINGLE_ENVELOPE_TYPES:
            return 200, dict(record.results[0])
        return 200, {
            "schema_version": SCHEMA_VERSION,
            "results": [dict(result) for result in record.results],
        }

    def cancel(self, job_id: str) -> dict:
        """Request cancellation; returns the job document."""
        record = self.queue.request_cancel(job_id)
        self.metrics.counter_inc(
            "repro_job_cancels_total",
            "Cancel requests accepted",
            tenant=record.tenant,
        )
        if record.terminal:
            # A queued job cancels immediately (no scheduler pass will
            # ever observe it) — prune its progress streams here.
            PROGRESS.forget_prefix(f"{job_id}/")
        LOG.info("job.cancel_requested", job=job_id, status=record.status)
        return self.job_document(record)

    def list_document(self, tenant: str | None = None) -> dict:
        """The ``GET /v1/jobs`` listing (newest first)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "jobs": [
                self.job_document(record)["job"]
                for record in self.queue.list_records(tenant)
            ],
        }

    # -- introspection -------------------------------------------------------

    def backend_kind(self) -> str:
        """The scheduler's execution-backend label."""
        return self.scheduler.backend_kind()

    def health(self) -> dict:
        """The jobs section of ``/v1/healthz``."""
        return {
            "queue_depth": self.queue.depth(),
            "running": self.queue.running_count(),
            "backend": self.backend_kind(),
        }

    def publish_usage_metrics(self) -> None:
        """Refresh per-tenant usage gauges (called per /metrics scrape)."""
        for tenant, usage in self.quotas.usage().items():
            self.metrics.gauge_set(
                "repro_tenant_admitted_total",
                "Submits admitted per tenant since start",
                usage["admitted"],
                tenant=tenant,
            )
        self.scheduler._publish_queue_gauges()
