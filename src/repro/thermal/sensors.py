"""Thermal sensor emulation.

The measured platforms of Chapter 5 read AMB temperatures through sensors
embedded in each FBDIMM: the reading is reported to the memory controller
every 1344 bus cycles, is quantized, and occasionally produces high noise
spikes (the paper discards the hottest 0.5% of samples to remove them,
§5.4.1).  :class:`ThermalSensor` reproduces those artifacts so the DTM
policies observe realistic, imperfect temperatures.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError


class ThermalSensor:
    """A sampled, quantized, occasionally-noisy temperature sensor.

    Args:
        period_s: minimum time between fresh readings; between readings
            the sensor returns the stale value (the AMB sensor refreshes
            every 1344 bus cycles ~ 4 us at 333 MHz, effectively
            continuous at DTM timescales, but OS-level polling is 1 s).
        quantization_c: reading granularity in degC (0 = exact).
        spike_probability: chance that a reading is a noise spike.
        spike_magnitude_c: size of a spike, added to the true value.
        seed: RNG seed for reproducible noise.
    """

    def __init__(
        self,
        period_s: float = 0.0,
        quantization_c: float = 0.0,
        spike_probability: float = 0.0,
        spike_magnitude_c: float = 10.0,
        seed: int | None = 0,
    ) -> None:
        if period_s < 0:
            raise ConfigurationError("sensor period must be non-negative")
        if quantization_c < 0:
            raise ConfigurationError("quantization must be non-negative")
        if not 0.0 <= spike_probability <= 1.0:
            raise ConfigurationError("spike probability must be within [0, 1]")
        self._period_s = period_s
        self._quantization_c = quantization_c
        self._spike_probability = spike_probability
        self._spike_magnitude_c = spike_magnitude_c
        self._rng = random.Random(seed)
        self._last_sample_time_s: float | None = None
        self._last_reading_c: float | None = None

    def read(self, true_temperature_c: float, now_s: float) -> float:
        """Return the sensor's reading of ``true_temperature_c`` at ``now_s``.

        Repeated calls within one sampling period return the stale value.
        """
        stale = (
            self._last_sample_time_s is not None
            and now_s - self._last_sample_time_s < self._period_s
            and self._last_reading_c is not None
        )
        if stale:
            return self._last_reading_c  # type: ignore[return-value]
        reading = true_temperature_c
        if self._spike_probability and self._rng.random() < self._spike_probability:
            reading += self._spike_magnitude_c
        if self._quantization_c:
            steps = round(reading / self._quantization_c)
            reading = steps * self._quantization_c
        self._last_sample_time_s = now_s
        self._last_reading_c = reading
        return reading

    def reset(self) -> None:
        """Forget the stale reading (e.g. across experiment runs)."""
        self._last_sample_time_s = None
        self._last_reading_c = None


def despike(samples: list[float], drop_fraction: float = 0.005) -> list[float]:
    """Drop the hottest ``drop_fraction`` of samples (§5.4.1 methodology).

    The paper excludes the 0.5% highest temperature samples to remove
    sensor noise spikes before averaging.
    """
    if not 0.0 <= drop_fraction < 1.0:
        raise ConfigurationError("drop fraction must be within [0, 1)")
    if not samples:
        return []
    keep = max(1, int(len(samples) * (1.0 - drop_fraction)))
    return sorted(samples)[:keep]
