"""First-order thermal-RC dynamics (Eq. 3.5).

The paper treats each temperature like the voltage on an RC circuit:

``T(t + dt) = T(t) + (T_stable - T(t)) * (1 - exp(-dt / tau))``

where ``tau`` is the time for the temperature difference to shrink by a
factor of e.  The model deliberately omits a leakage-temperature feedback
loop: DRAM/AMB leakage was measured to rise only ~2% with heating (§3.4).
"""

from __future__ import annotations

import math

from repro.errors import ThermalModelError


def exponential_step(current_c: float, stable_c: float, dt_s: float, tau_s: float) -> float:
    """One Eq. 3.5 update toward the stable temperature.

    Args:
        current_c: temperature now, degC.
        stable_c: stable (asymptotic) temperature for the present power, degC.
        dt_s: time step, seconds.
        tau_s: RC time constant, seconds.

    Returns:
        Temperature after ``dt_s`` seconds, degC.
    """
    if dt_s < 0:
        raise ThermalModelError(f"time step must be non-negative, got {dt_s}")
    if tau_s <= 0:
        raise ThermalModelError(f"tau must be positive, got {tau_s}")
    return current_c + (stable_c - current_c) * (1.0 - math.exp(-dt_s / tau_s))


class RCNode:
    """A single thermal node with first-order dynamics.

    The node tracks its own temperature; callers supply the stable
    temperature for the current power each step.  This is the building
    block for the AMB, DRAM and ambient nodes of the two thermal models.
    """

    def __init__(self, tau_s: float, initial_c: float) -> None:
        if tau_s <= 0:
            raise ThermalModelError(f"tau must be positive, got {tau_s}")
        self._tau_s = tau_s
        self._temperature_c = initial_c
        # The simulators step with a fixed dt, so cache the (dt, tau) ->
        # gain pair instead of evaluating exp() every window.  The key
        # must include tau: a copied or retuned node would otherwise
        # silently reuse a gain computed for a different time constant.
        self._cached_dt_s = -1.0
        self._cached_tau_s = tau_s
        self._cached_gain = 0.0

    @property
    def temperature_c(self) -> float:
        """Current node temperature, degC."""
        return self._temperature_c

    @property
    def tau_s(self) -> float:
        """RC time constant, seconds."""
        return self._tau_s

    def step(self, stable_c: float, dt_s: float) -> float:
        """Advance ``dt_s`` seconds toward ``stable_c``; returns the new temp."""
        if dt_s != self._cached_dt_s or self._tau_s != self._cached_tau_s:
            if dt_s < 0:
                raise ThermalModelError(f"time step must be non-negative, got {dt_s}")
            self._cached_dt_s = dt_s
            self._cached_tau_s = self._tau_s
            self._cached_gain = 1.0 - math.exp(-dt_s / self._tau_s)
        self._temperature_c += (stable_c - self._temperature_c) * self._cached_gain
        return self._temperature_c

    def reset(self, temperature_c: float) -> None:
        """Force the node to a temperature (e.g. cold start at ambient)."""
        self._temperature_c = temperature_c

    def time_to_reach(self, stable_c: float, target_c: float) -> float:
        """Analytic time to move from the current temp to ``target_c``.

        Useful in tests: inverts Eq. 3.5 under constant power.  Returns
        ``inf`` when the target lies beyond the stable temperature.
        """
        gap_now = stable_c - self._temperature_c
        gap_then = stable_c - target_c
        if gap_now == 0.0:
            return 0.0 if target_c == self._temperature_c else math.inf
        ratio = gap_then / gap_now
        if ratio <= 0.0:
            return math.inf
        if ratio >= 1.0:
            return 0.0
        return -self._tau_s * math.log(ratio)
