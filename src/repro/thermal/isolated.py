"""Isolated thermal model of one FBDIMM (Eqs. 3.3–3.5).

Stable temperatures under constant power (Intel-study-derived, §3.4):

``T_AMB  = T_A + P_AMB * Psi_AMB      + P_DRAM * Psi_DRAM_AMB``
``T_DRAM = T_A + P_AMB * Psi_AMB_DRAM + P_DRAM * Psi_DRAM``

The dynamic temperatures approach these stable points with the RC time
constants tau_AMB = 50 s and tau_DRAM = 100 s (Table 3.2).  DIMMs do not
interact with each other (cooling air flows between them, §3.4); only the
AMB and the DRAM chips of the *same* DIMM couple through the raw card.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params.thermal_params import CoolingConfig
from repro.thermal.rc import RCNode


@dataclass(frozen=True)
class DimmTemperatures:
    """AMB and DRAM temperatures of one DIMM at one instant, degC."""

    amb_c: float
    dram_c: float


def stable_temperatures(
    ambient_c: float,
    amb_power_w: float,
    dram_power_w: float,
    cooling: CoolingConfig,
) -> DimmTemperatures:
    """Stable AMB/DRAM temperatures for constant power (Eqs. 3.3–3.4).

    Args:
        ambient_c: DIMM ambient (inlet) temperature T_A, degC.
        amb_power_w: AMB power, watts.
        dram_power_w: power of the DRAM chips adjacent to the AMB, watts.
        cooling: heat spreader + air velocity column of Table 3.2.

    Returns:
        The asymptotic temperatures the DIMM would reach.
    """
    r = cooling.resistances
    amb_c = ambient_c + amb_power_w * r.psi_amb + dram_power_w * r.psi_dram_amb
    dram_c = ambient_c + amb_power_w * r.psi_amb_dram + dram_power_w * r.psi_dram
    return DimmTemperatures(amb_c=amb_c, dram_c=dram_c)


class DimmThermalModel:
    """Dynamic thermal state of one DIMM (isolated model, §3.4).

    Each :meth:`step` call takes the DIMM's current power draw, computes
    the stable temperatures for that power (Eqs. 3.3–3.4) and advances the
    AMB/DRAM RC nodes by the time step (Eq. 3.5).  The ambient temperature
    is passed per step, which lets the integrated model of §3.5 reuse this
    class unchanged by feeding it a time-varying ambient.
    """

    def __init__(self, cooling: CoolingConfig, initial_ambient_c: float) -> None:
        self._cooling = cooling
        self._amb_node = RCNode(cooling.tau_amb_s, initial_ambient_c)
        self._dram_node = RCNode(cooling.tau_dram_s, initial_ambient_c)

    @property
    def cooling(self) -> CoolingConfig:
        """The cooling configuration this DIMM is modeled under."""
        return self._cooling

    @property
    def temperatures(self) -> DimmTemperatures:
        """Current AMB and DRAM temperatures."""
        return DimmTemperatures(
            amb_c=self._amb_node.temperature_c,
            dram_c=self._dram_node.temperature_c,
        )

    def step(
        self,
        ambient_c: float,
        amb_power_w: float,
        dram_power_w: float,
        dt_s: float,
    ) -> DimmTemperatures:
        """Advance the DIMM temperatures by ``dt_s`` seconds.

        Args:
            ambient_c: current DIMM inlet temperature, degC.
            amb_power_w: AMB power over the interval, watts.
            dram_power_w: DRAM power over the interval, watts.
            dt_s: interval length, seconds.

        Returns:
            Temperatures at the end of the interval.
        """
        stable = stable_temperatures(ambient_c, amb_power_w, dram_power_w, self._cooling)
        self._amb_node.step(stable.amb_c, dt_s)
        self._dram_node.step(stable.dram_c, dt_s)
        return self.temperatures

    def reset(self, ambient_c: float) -> None:
        """Cold-start the DIMM at the ambient temperature."""
        self._amb_node.reset(ambient_c)
        self._dram_node.reset(ambient_c)

    def reset_to(self, amb_c: float, dram_c: float) -> None:
        """Force specific AMB/DRAM temperatures (e.g. idle-stable start)."""
        self._amb_node.reset(amb_c)
        self._dram_node.reset(dram_c)
