"""Thermal models of Chapter 3.

- :mod:`repro.thermal.rc` — the first-order thermal-RC update of Eq. 3.5.
- :mod:`repro.thermal.isolated` — the isolated DIMM model (Eqs. 3.3–3.5):
  stable AMB/DRAM temperatures from power, exponential approach dynamics,
  constant ambient.
- :mod:`repro.thermal.integrated` — the integrated model (Eq. 3.6): DRAM
  ambient temperature pre-heated by processor activity.
- :mod:`repro.thermal.sensors` — thermal sensor emulation (quantization,
  reading period, noise spikes) matching the measured platforms of Ch. 5.
"""

from repro.thermal.rc import RCNode, exponential_step
from repro.thermal.isolated import DimmThermalModel, DimmTemperatures, stable_temperatures
from repro.thermal.integrated import AmbientModel, CoreActivity
from repro.thermal.sensors import ThermalSensor

__all__ = [
    "RCNode",
    "exponential_step",
    "DimmThermalModel",
    "DimmTemperatures",
    "stable_temperatures",
    "AmbientModel",
    "CoreActivity",
    "ThermalSensor",
]
