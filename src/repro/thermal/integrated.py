"""Integrated DRAM ambient-temperature model (Eq. 3.6, §3.5).

In servers where the cooling airflow passes the processors before the
DIMMs, the memory inlet temperature rises with processor activity:

``TA_stable = T_inlet + Psi_CPU_MEM * sum_i(xi * V_core_i * IPC_core_i)``

The product ``xi * V * IPC`` estimates per-core power (voltage times a
current proxy).  IPC is defined against *reference* cycles — the cycle
time at the top frequency — so a DVFS-slowed core contributes less.  The
dynamic ambient follows the stable point with tau = 20 s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ThermalModelError
from repro.params.thermal_params import AmbientModelParams
from repro.thermal.rc import RCNode


@dataclass(frozen=True)
class CoreActivity:
    """Per-core inputs of the ambient model for one interval."""

    #: Supply voltage of the core, volts.
    voltage_v: float
    #: Committed instructions divided by *reference* cycles (cycles at the
    #: maximum frequency), so frequency scaling lowers this value (§3.5).
    reference_ipc: float

    def __post_init__(self) -> None:
        if self.voltage_v < 0:
            raise ThermalModelError("core voltage must be non-negative")
        if self.reference_ipc < 0:
            raise ThermalModelError("reference IPC must be non-negative")


def stable_ambient_c(
    params: AmbientModelParams,
    cooling_name: str,
    activities: list[CoreActivity],
) -> float:
    """Stable DRAM ambient temperature for constant core activity (Eq. 3.6)."""
    inlet = params.inlet_for(cooling_name)
    heating = params.interaction * sum(
        a.voltage_v * a.reference_ipc for a in activities
    )
    return inlet + heating


class AmbientModel:
    """Dynamic DRAM ambient temperature driven by processor activity.

    With ``interaction == 0`` (Table 3.3, isolated row) the ambient is a
    constant equal to the system inlet temperature, reproducing the §3.4
    assumption exactly; with a positive interaction the ambient node chases
    the Eq. 3.6 stable point with a 20 s time constant.
    """

    def __init__(self, params: AmbientModelParams, cooling_name: str) -> None:
        self._params = params
        self._cooling_name = cooling_name
        inlet = params.inlet_for(cooling_name)
        self._node = RCNode(params.tau_ambient_s, inlet)

    @property
    def params(self) -> AmbientModelParams:
        """The ambient-model parameters in use."""
        return self._params

    @property
    def inlet_c(self) -> float:
        """System inlet temperature, degC."""
        return self._params.inlet_for(self._cooling_name)

    @property
    def ambient_c(self) -> float:
        """Current DRAM ambient (memory inlet) temperature, degC."""
        if self._params.interaction == 0.0:
            return self.inlet_c
        return self._node.temperature_c

    def step(self, activities: list[CoreActivity], dt_s: float) -> float:
        """Advance the ambient node by ``dt_s`` given core activity.

        Returns the ambient temperature at the end of the interval.
        """
        heating_sum = sum(a.voltage_v * a.reference_ipc for a in activities)
        return self.step_heating(heating_sum, dt_s)

    def step_heating(self, heating_sum: float, dt_s: float) -> float:
        """Fast-path step taking the precomputed sum of V_i * IPC_i.

        The inner simulation loop calls this once per window; it avoids
        building :class:`CoreActivity` objects.
        """
        stable = self.inlet_c + self._params.interaction * heating_sum
        self._node.step(stable, dt_s)
        return self.ambient_c

    def reset(self) -> None:
        """Restart the ambient at the system inlet temperature."""
        self._node.reset(self.inlet_c)

    @property
    def node_temperature_c(self) -> float:
        """The raw ambient-node temperature (checkpoint state; unlike
        :attr:`ambient_c` it is meaningful even at interaction 0)."""
        return self._node.temperature_c

    def restore_node(self, temperature_c: float) -> None:
        """Force the ambient node to a checkpointed temperature."""
        self._node.reset(float(temperature_c))
