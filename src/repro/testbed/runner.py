"""Measurement-style experiment runner for the Chapter 5 servers.

:class:`ServerSimulator` plays the role of the paper's experimental
methodology (§5.3): it runs a multiprogramming batch job on a modeled
server under one DTM policy, polling the AMB sensors once per second,
applying the policy's decision through the Linux mechanisms (hotplug,
cpufreq, chipset throttle), and logging performance counters, power and
temperatures — producing everything Figs. 5.4–5.15 need.

Since the engine refactor the measurement loop is hosted on
:class:`repro.engine.SteppingEngine`: :class:`ServerStrategy` supplies
the per-second mechanism application and performance evaluation, the
engine supplies stepping, checkpoint/resume and observers, and the
results stay byte-identical to the historical inlined loop.

:func:`run_homogeneous` reproduces the §5.4.1 warm-up experiments: four
copies of one program from idle-stable temperature, with the chipset
safety throttle arming near the TDP (Fig. 5.4 / Fig. 5.5) — also an
engine strategy (:class:`HomogeneousStrategy`), with the daughter-card
sensor logging attached as an observer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.kernel import make_memspot
from repro.core.results import TemperatureTrace
from repro.cpu.power import measured_chip_power_w
from repro.dtm.base import DTMPolicy, ThermalReading
from repro.engine.observers import Observer, ProgressObserver, TraceRecorder
from repro.engine.stepping import SteppingEngine, WindowOutcome
from repro.errors import ConfigurationError, SimulationError
from repro.testbed.chipset import OpenLoopThrottle
from repro.testbed.daughtercard import DaughterCard
from repro.testbed.linux import CPUFreq, CPUHotplug
from repro.testbed.performance import ServerWindowModel, SocketLoad
from repro.testbed.platforms import ServerPlatform
from repro.workloads.batch import BatchScheduler
from repro.workloads.mixes import get_mix
from repro.workloads.profiles import AppProfile, get_app


#: Per-core V*IPC-equivalent heat of a running-but-stalled core (spin
#: power), folded into the Eq. 3.6 sum alongside committed-work heat.
_SPIN_HEAT = 0.20


@dataclass(frozen=True)
class ServerRunResult:
    """Outputs of one server experiment."""

    platform: str
    workload: str
    policy: str
    runtime_s: float
    traffic_bytes: float
    l2_misses: float
    instructions: float
    cpu_energy_j: float
    memory_energy_j: float
    #: Time-averaged memory inlet (CPU exhaust) temperature, degC.
    mean_inlet_c: float
    peak_amb_c: float
    finished_jobs: int
    trace: TemperatureTrace = field(default_factory=TemperatureTrace)

    @property
    def average_cpu_power_w(self) -> float:
        """Mean processor power over the run."""
        if self.runtime_s <= 0:
            return 0.0
        return self.cpu_energy_j / self.runtime_s

    def normalized_runtime(self, baseline: "ServerRunResult") -> float:
        """Runtime relative to a baseline (Fig. 5.6 metric)."""
        if baseline.runtime_s <= 0:
            raise SimulationError("baseline runtime must be positive")
        return self.runtime_s / baseline.runtime_s

    def normalized_misses(self, baseline: "ServerRunResult") -> float:
        """L2 misses relative to a baseline (Fig. 5.8 metric)."""
        if baseline.l2_misses <= 0:
            raise SimulationError("baseline misses must be positive")
        return self.l2_misses / baseline.l2_misses


class ServerStrategy:
    """One Chapter 5 (platform, workload, policy) measurement as an
    engine strategy.

    The Linux/chipset mechanism objects (hotplug, cpufreq, throttle)
    are fully re-programmed from the policy decision at the top of
    every window, so they carry no cross-window state and stay out of
    the checkpoint.
    """

    kind = "ch5"

    def __init__(
        self,
        platform: ServerPlatform,
        policy: DTMPolicy,
        mix_name: str,
        copies: int,
        time_slice_s: float | None,
        ambient_override_c: float | None,
        window_model: ServerWindowModel,
        base_frequency_level: int,
        max_sim_s: float,
        kernel: str,
    ) -> None:
        self._platform = platform
        self._policy = policy
        self._window = window_model
        self._time_slice_s = time_slice_s
        self._base_frequency_level = base_frequency_level
        self._max_sim_s = max_sim_s
        policy.reset()
        self._mix = get_mix(mix_name)
        self._scheduler = BatchScheduler(self._mix, copies, platform.total_cores)
        self._hotplug = CPUHotplug(platform.total_cores)
        self._cpufreq = CPUFreq(platform.cpu_power)
        self._throttle = OpenLoopThrottle()
        self.memspot = make_memspot(
            kernel=kernel,
            cooling=platform.cooling,
            ambient=platform.ambient_params(ambient_override_c),
            physical_channels=platform.channels,
            dimms_per_channel=platform.dimms_per_channel,
        )
        self.dt_s = platform.dtm_interval_s
        self._top_level = platform.levels.level_count - 1
        self._safety_cap = platform.levels.bw_caps_bytes_per_s[-1]
        self.trace_recorder = TraceRecorder(resolution_s=None)

    def default_observers(self) -> tuple[Observer, ...]:
        """The observers every Chapter 5 engine carries."""
        return (self.trace_recorder, ProgressObserver())

    # -- engine protocol ---------------------------------------------------

    def done(self, engine: SteppingEngine) -> bool:
        return self._scheduler.done

    def max_sim_horizon(self) -> float | None:
        return self._max_sim_s

    def timeout_error(self, engine: SteppingEngine) -> SimulationError:
        return SimulationError(
            f"server batch did not finish within {self._max_sim_s} s "
            f"({self._scheduler.finished_jobs}/"
            f"{self._scheduler.total_jobs} jobs)"
        )

    def window(self, engine: SteppingEngine) -> WindowOutcome:
        platform = self._platform
        scheduler = self._scheduler
        hotplug = self._hotplug
        cpufreq = self._cpufreq
        throttle = self._throttle
        dt = self.dt_s
        sample = engine.sample
        reading = ThermalReading(amb_c=sample.amb_c, dram_c=sample.dram_c)
        decision = self._policy.decide(reading, dt)

        # Apply the decision through the Linux/chipset mechanisms.
        active = max(2, decision.active_cores) if decision.active_cores else 2
        online = hotplug.apply_count(active, sockets=platform.sockets)
        # A non-zero base level pins BW/ACG to a lower processor
        # speed (the Fig. 5.13 sensitivity experiment).
        level = max(
            self._base_frequency_level,
            min(decision.dvfs_level, len(cpufreq.points) - 1),
        )
        cpufreq.set_level(level)
        cap = decision.bandwidth_cap_bytes_per_s
        if decision.emergency_level >= self._top_level and self._safety_cap is not None:
            cap = self._safety_cap if cap is None else min(cap, self._safety_cap)
        throttle.program_bandwidth(cap)

        loads, slot_groups = self._build_loads(scheduler, hotplug, online)
        heating = 0.0
        read_bps = 0.0
        write_bps = 0.0
        if loads:
            result = self._window.evaluate(
                loads,
                frequency_hz=cpufreq.frequency_hz,
                voltage_v=cpufreq.voltage_v,
                bandwidth_cap_bytes_per_s=throttle.bandwidth_cap_bytes_per_s(),
                time_slice_s=self._time_slice_s,
            )
            progress: dict[int, float] = {}
            index = 0
            utilizations: list[float] = []
            for load, slots in zip(loads, slot_groups):
                socket_utils = []
                for slot in slots:
                    rate = result.programs[index]
                    advanced = rate.instructions_per_s * dt
                    progress[slot] = advanced
                    engine.instructions += advanced
                    socket_utils.append(rate.utilization)
                    index += 1
                if load.active_cores >= 2:
                    utilizations.extend(socket_utils[:2])
                else:
                    utilizations.append(min(1.0, sum(socket_utils)))
            scheduler.advance(progress)
            # Eq. 3.6 heating plus a spin term: stalled-but-running
            # cores still draw dynamic power (why the measured inlet
            # is hottest under DTM-BW, Fig. 5.9), scaling with V and f.
            top_hz = platform.cpu_power.operating_points[0].frequency_hz
            spin = (
                _SPIN_HEAT
                * cpufreq.voltage_v
                * (cpufreq.frequency_hz / top_hz)
                * len(online)
            )
            heating = result.heating_sum + spin
            read_bps = result.read_bytes_per_s
            write_bps = result.write_bytes_per_s
            engine.traffic_bytes += result.total_bytes_per_s * dt
            engine.l2_misses += result.l2_misses_per_s * dt
        else:
            utilizations = []

        cpu_power = measured_chip_power_w(
            utilizations, cpufreq.level, platform.cpu_power
        )
        return WindowOutcome(
            read_bytes_per_s=read_bps,
            write_bytes_per_s=write_bps,
            heating_sum=heating,
            cpu_power_w=cpu_power,
        )

    def finalize(self, engine: SteppingEngine) -> ServerRunResult:
        now = engine.now_s
        return ServerRunResult(
            platform=self._platform.name,
            workload=self._mix.name,
            policy=self._policy.name,
            runtime_s=now,
            traffic_bytes=engine.traffic_bytes,
            l2_misses=engine.l2_misses,
            instructions=engine.instructions,
            cpu_energy_j=engine.cpu_energy_j,
            memory_energy_j=engine.memory_energy_j,
            mean_inlet_c=engine.ambient_integral / now if now > 0 else 0.0,
            peak_amb_c=engine.peak_amb_c,
            finished_jobs=self._scheduler.finished_jobs,
            trace=self.trace_recorder.trace,
        )

    def progress(self, engine: SteppingEngine) -> dict[str, Any]:
        return {
            "finished_jobs": self._scheduler.finished_jobs,
            "total_jobs": self._scheduler.total_jobs,
        }

    def state_dict(self) -> dict[str, Any]:
        return {
            "scheduler": self._scheduler.state_dict(),
            "policy": self._policy.state_dict(),
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        self._scheduler.load_state_dict(state["scheduler"])
        self._policy.load_state_dict(state.get("policy", {}))

    def _build_loads(
        self,
        scheduler: BatchScheduler,
        hotplug: CPUHotplug,
        online: list[int],
    ) -> tuple[list[SocketLoad], list[list[int]]]:
        """Socket loads + the slot ids behind each load's programs."""
        platform = self._platform
        per_socket = platform.cores_per_socket
        loads: list[SocketLoad] = []
        slot_groups: list[list[int]] = []
        online_set = set(online)
        for socket in range(platform.sockets):
            slots = [socket * per_socket + local for local in range(per_socket)]
            occupied = [s for s in slots if scheduler.job_at(s) is not None]
            if not occupied:
                continue
            active = sum(1 for s in slots if s in online_set)
            if active == 0:
                continue
            resident = tuple(scheduler.job_at(s).app for s in occupied)  # type: ignore[union-attr]
            loads.append(
                SocketLoad(resident=resident, active_cores=min(active, len(slots)))
            )
            slot_groups.append(occupied)
        return loads, slot_groups


class ServerSimulator:
    """Runs one (platform, workload, policy) measurement to completion."""

    def __init__(
        self,
        platform: ServerPlatform,
        policy: DTMPolicy,
        mix_name: str,
        copies: int = 2,
        time_slice_s: float | None = None,
        ambient_override_c: float | None = None,
        window_model: ServerWindowModel | None = None,
        base_frequency_level: int = 0,
        max_sim_s: float = 500_000.0,
        kernel: str = "batched",
    ) -> None:
        if copies < 1:
            raise ConfigurationError("need at least one batch copy")
        self._platform = platform
        self._policy = policy
        self._mix = get_mix(mix_name)
        self._copies = copies
        self._time_slice_s = time_slice_s
        self._ambient_override_c = ambient_override_c
        self._window = window_model or ServerWindowModel(platform)
        self._base_frequency_level = base_frequency_level
        self._max_sim_s = max_sim_s
        self._kernel = kernel

    @property
    def window_model(self) -> ServerWindowModel:
        """The socket-aware performance model (shared for memoization)."""
        return self._window

    def engine(
        self, extra_observers: tuple[Observer, ...] = ()
    ) -> SteppingEngine:
        """A fresh stepping engine for one run of this measurement.

        Same contract as :meth:`TwoLevelSimulator.engine`: default
        observers (trace recorder, progress emitter) plus the caller's
        extras; restores require the same observer line-up.
        """
        strategy = ServerStrategy(
            self._platform,
            self._policy,
            self._mix.name,
            self._copies,
            self._time_slice_s,
            self._ambient_override_c,
            self._window,
            self._base_frequency_level,
            self._max_sim_s,
            self._kernel,
        )
        return SteppingEngine(
            strategy,
            observers=(*strategy.default_observers(), *extra_observers),
        )

    def run(self) -> ServerRunResult:
        """Execute the batch job under the policy."""
        return self.engine().run_to_completion()


class DaughterCardObserver(Observer):
    """Logs each window's AMB/inlet temperatures to a daughter card.

    The card's noisy channels draw from their own RNG, which is not
    part of the engine checkpoint — §5.4.1 warm-up runs are short and
    never resumed, and the model-truth trace stays exact either way.
    """

    def __init__(self, card: DaughterCard) -> None:
        self.card = card

    def on_window(self, engine: SteppingEngine) -> None:
        sample = engine.sample
        self.card.sample(
            engine.now_s, {"amb": sample.amb_c, "inlet": sample.ambient_c}
        )


class HomogeneousStrategy:
    """The §5.4.1 warm-up experiment as an engine strategy.

    No DTM policy and no batch scheduler: four copies of one program
    run for a fixed duration while the chipset open-loop throttle arms
    above the safety threshold.
    """

    kind = "homogeneous"

    def __init__(
        self,
        platform: ServerPlatform,
        app: AppProfile,
        duration_s: float,
        safety_cap_bytes_per_s: float,
        safety_threshold_c: float,
        window_model: ServerWindowModel,
    ) -> None:
        self._duration_s = duration_s
        self._safety_cap = safety_cap_bytes_per_s
        self._safety_threshold_c = safety_threshold_c
        self._window = window_model
        self._throttle = OpenLoopThrottle()
        self._cpufreq = CPUFreq(platform.cpu_power)
        self.memspot = make_memspot(
            cooling=platform.cooling,
            ambient=platform.ambient_params(),
            physical_channels=platform.channels,
            dimms_per_channel=platform.dimms_per_channel,
        )
        self.dt_s = 1.0
        self._loads = [
            SocketLoad(resident=(app, app), active_cores=2)
            for _ in range(platform.sockets)
        ]
        self.trace_recorder = TraceRecorder(resolution_s=None)

    def default_observers(self) -> tuple[Observer, ...]:
        return (self.trace_recorder, ProgressObserver())

    def done(self, engine: SteppingEngine) -> bool:
        return engine.now_s >= self._duration_s

    def max_sim_horizon(self) -> float | None:
        return None

    def timeout_error(self, engine: SteppingEngine) -> SimulationError:
        raise AssertionError("homogeneous runs have a fixed duration")

    def window(self, engine: SteppingEngine) -> WindowOutcome:
        if engine.sample.amb_c >= self._safety_threshold_c:
            self._throttle.program_bandwidth(self._safety_cap)
        else:
            self._throttle.program_bandwidth(None)
        result = self._window.evaluate(
            self._loads,
            frequency_hz=self._cpufreq.frequency_hz,
            voltage_v=self._cpufreq.voltage_v,
            bandwidth_cap_bytes_per_s=self._throttle.bandwidth_cap_bytes_per_s(),
        )
        return WindowOutcome(
            read_bytes_per_s=result.read_bytes_per_s,
            write_bytes_per_s=result.write_bytes_per_s,
            heating_sum=result.heating_sum,
            cpu_power_w=0.0,
        )

    def finalize(self, engine: SteppingEngine) -> TemperatureTrace:
        return self.trace_recorder.trace

    def progress(self, engine: SteppingEngine) -> dict[str, Any]:
        return {"duration_s": self._duration_s}

    def state_dict(self) -> dict[str, Any]:
        return {}

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        pass


def run_homogeneous(
    platform: ServerPlatform,
    app_name: str,
    duration_s: float = 500.0,
    safety_cap_bytes_per_s: float = 3.0e9,
    safety_threshold_c: float = 100.0,
    daughter_card: DaughterCard | None = None,
    window_model: ServerWindowModel | None = None,
) -> tuple[TemperatureTrace, DaughterCard]:
    """Warm-up run of four copies of one program (§5.4.1, Figs. 5.4/5.5).

    No DTM policy runs; the chipset open-loop throttle arms only when the
    AMB crosses ``safety_threshold_c`` (the paper disables throttling
    below 100 degC and caps at 3 GB/s above it on the SR1500AL).

    Returns the model-truth temperature trace and the daughter card whose
    "amb" channel holds the noisy sensor log.
    """
    app: AppProfile = get_app(app_name)
    window = window_model or ServerWindowModel(platform)
    card = daughter_card or DaughterCard(sampling_period_s=1.0)
    if "amb" not in card.channels:
        card.add_channel("amb")
    if "inlet" not in card.channels:
        card.add_channel("inlet", noisy=False)
    strategy = HomogeneousStrategy(
        platform,
        app,
        duration_s,
        safety_cap_bytes_per_s,
        safety_threshold_c,
        window,
    )
    engine = SteppingEngine(
        strategy,
        observers=(*strategy.default_observers(), DaughterCardObserver(card)),
    )
    trace = engine.run_to_completion()
    return trace, card
