"""Chapter 5: real-system testbed emulation.

The paper's case study implements the DTM schemes in Linux on two
servers — a Dell PowerEdge 1950 and an instrumented Intel SR1500AL —
and measures them with a sensor daughter card.  We cannot ship those
machines, so this package models them:

- :mod:`repro.testbed.platforms` — the two server configurations:
  Xeon 5160 sockets, per-socket shared L2, FBDIMM population, airflow
  (CPU exhaust pre-heats the memory inlet), TDPs and emergency tables.
- :mod:`repro.testbed.performance` — a socket-aware window model: two
  cores share each socket's L2; when core gating leaves one core per
  socket, the two resident programs time-share it with switch-induced
  cold misses (the Fig. 5.15 effect).
- :mod:`repro.testbed.linux` — the OS mechanisms of §5.2.1: CPU hotplug
  (core 0 protected), cpufreq ladder, scheduler time slices.
- :mod:`repro.testbed.chipset` — the Intel 5000X open-loop activation
  throttle used as the worst-case safety net and by DTM-BW.
- :mod:`repro.testbed.daughtercard` — sensor sampling with noise spikes
  (§5.3.1), including the despiking methodology of §5.4.1.
- :mod:`repro.testbed.runner` — the measurement-style experiment runner
  producing Fig. 5.4–5.15 data.
"""

from repro.testbed.platforms import ServerPlatform, PE1950, SR1500AL
from repro.testbed.performance import ServerWindowModel
from repro.testbed.linux import CPUHotplug, CPUFreq, TimeSliceModel
from repro.testbed.chipset import OpenLoopThrottle
from repro.testbed.daughtercard import DaughterCard
from repro.testbed.runner import ServerSimulator, ServerRunResult

__all__ = [
    "ServerPlatform",
    "PE1950",
    "SR1500AL",
    "ServerWindowModel",
    "CPUHotplug",
    "CPUFreq",
    "TimeSliceModel",
    "OpenLoopThrottle",
    "DaughterCard",
    "ServerSimulator",
    "ServerRunResult",
]
