"""Intel 5000X chipset open-loop bandwidth throttling (§5.2.1).

The chipset caps the number of memory row activations in a window of
21504K bus cycles (66 ms at the 333 MHz bus).  With the close-page policy
every request is exactly one activation moving one cache line, so an
activation cap is a bandwidth cap:

``bandwidth = activations_per_window * line_bytes / window``

DTM-BW programs this cap per thermal running level; the other policies
arm it only at the highest emergency level as a worst-case safety net.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.units import CACHE_LINE_BYTES


class OpenLoopThrottle:
    """Activation-count cap expressed both ways (activations and GB/s)."""

    #: Default window: 21504K bus cycles at 333 MHz (§5.2.1).
    DEFAULT_WINDOW_S = 21504e3 / 333e6

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        line_bytes: int = CACHE_LINE_BYTES,
    ) -> None:
        if window_s <= 0:
            raise ConfigurationError("throttle window must be positive")
        if line_bytes <= 0:
            raise ConfigurationError("line size must be positive")
        self._window_s = window_s
        self._line_bytes = line_bytes
        self._max_activations: int | None = None

    @property
    def window_s(self) -> float:
        """The throttle window length, seconds."""
        return self._window_s

    @property
    def max_activations(self) -> int | None:
        """The programmed cap (None = disabled)."""
        return self._max_activations

    def program_activations(self, max_activations: int | None) -> None:
        """Program the cap directly in activations per window."""
        if max_activations is not None and max_activations < 1:
            raise ConfigurationError("activation cap must be >= 1 or None")
        self._max_activations = max_activations

    def program_bandwidth(self, bytes_per_s: float | None) -> None:
        """Program the cap from a target bandwidth."""
        if bytes_per_s is None:
            self._max_activations = None
            return
        if bytes_per_s < 0:
            raise ConfigurationError("bandwidth cap must be non-negative")
        activations = int(bytes_per_s * self._window_s / self._line_bytes)
        self._max_activations = max(1, activations)

    def bandwidth_cap_bytes_per_s(self) -> float | None:
        """The effective bandwidth ceiling implied by the cap."""
        if self._max_activations is None:
            return None
        return self._max_activations * self._line_bytes / self._window_s

    def clamp(self, demand_bytes_per_s: float) -> float:
        """Throughput actually served for a given demand."""
        cap = self.bandwidth_cap_bytes_per_s()
        if cap is None:
            return demand_bytes_per_s
        return min(demand_bytes_per_s, cap)
