"""The two measured server platforms (§5.3.1).

Both machines carry two dual-core 3.0 GHz Xeon 5160 sockets (4 MB shared
L2 per socket), an Intel 5000X chipset and 667 MT/s FBDIMMs.  They
differ in memory population, enclosure and thermal environment:

- **PE1950** — Dell PowerEdge 1950, two 2 GB FBDIMMs, stand-alone in an
  air-conditioned room (26 degC), strong fans; an artificial AMB TDP of
  90 degC reveals thermal-limit behaviour (§5.3.1).
- **SR1500AL** — Intel SR1500AL in a hot box at 36 degC system ambient
  with four FBDIMMs and a conservative AMB TDP of 100 degC; one of its
  processors is aligned with the DIMMs, so CPU exhaust pre-heating is
  stronger (§5.4.3: cooling air heated ~10 degC by the processors).

The thermal resistances below are calibrated against the paper's
measured anchors: SR1500AL idles near 81 degC AMB, reaches 100 degC in
about 150 s under swim (Fig. 5.4); the PE1950 touches ~96 degC under
memory-intensive load (§5.4.1); the memory inlet averages ~47 degC on
the loaded SR1500AL (Fig. 5.9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.params.emergency import EmergencyLevels, PE1950_LEVELS, SR1500AL_LEVELS
from repro.params.power_params import MeasuredProcessorPower, XEON_5160_POWER
from repro.params.thermal_params import AmbientModelParams, CoolingConfig, ThermalResistances


def _server_cooling(name: str, psi_amb: float) -> CoolingConfig:
    """Server DIMM cooling: strong directed airflow, full-DIMM spreader."""
    return CoolingConfig(
        name=name,
        heat_spreader="FDHS",
        air_velocity_m_per_s=2.0,
        resistances=ThermalResistances(
            psi_amb=psi_amb,
            psi_dram_amb=2.7,
            psi_dram=3.0,
            psi_amb_dram=3.5,
        ),
    )


@dataclass(frozen=True)
class ServerPlatform:
    """One measured server's full configuration."""

    name: str
    #: System (front panel) ambient temperature, degC.
    system_ambient_c: float
    #: FBDIMM channels in use and DIMMs per channel.
    channels: int
    dimms_per_channel: int
    #: Emergency table (Table 5.1 rows for this machine).
    levels: EmergencyLevels
    #: DIMM cooling configuration.
    cooling: CoolingConfig
    #: CPU->memory preheat coefficient of Eq. 3.6 for this layout
    #: (stronger when a processor is aligned with the DIMMs, §5.4.3).
    cpu_mem_interaction: float
    #: Constant inlet rise from CPU *idle* power (the sockets draw ~70 W
    #: even stalled, which already pre-heats the airflow), degC.
    cpu_idle_preheat_c: float = 7.0
    #: Per-socket shared L2 capacity, bytes (Xeon 5160: 4 MB, 16-way).
    l2_per_socket_bytes: int = 4 * 1024 * 1024
    #: Sockets and cores per socket.
    sockets: int = 2
    cores_per_socket: int = 2
    #: Memory envelope: FSB-limited peak and loaded idle latency.
    peak_bandwidth_bytes_per_s: float = 11.0e9
    idle_latency_s: float = 95e-9
    #: Processor power model.
    cpu_power: MeasuredProcessorPower = XEON_5160_POWER
    #: DTM polling interval (§5.2.1: one second).
    dtm_interval_s: float = 1.0
    #: Default scheduler time slice (§5.3.1: 100 ms).
    time_slice_s: float = 0.100

    def __post_init__(self) -> None:
        if self.channels < 1 or self.dimms_per_channel < 1:
            raise ConfigurationError("need at least one channel and DIMM")
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ConfigurationError("need at least one socket and core")

    @property
    def total_cores(self) -> int:
        """Total cores across sockets."""
        return self.sockets * self.cores_per_socket

    @property
    def total_dimms(self) -> int:
        """Total FBDIMM count."""
        return self.channels * self.dimms_per_channel

    def ambient_params(self, ambient_override_c: float | None = None) -> AmbientModelParams:
        """Eq. 3.6 parameters for this machine.

        Args:
            ambient_override_c: replace the system ambient (the paper
                runs the SR1500AL at both 36 and 26 degC, §5.4.5).
        """
        ambient = (
            self.system_ambient_c if ambient_override_c is None else ambient_override_c
        )
        return AmbientModelParams(
            inlet_by_cooling={self.cooling.name: ambient + self.cpu_idle_preheat_c},
            interaction=self.cpu_mem_interaction,
        )

    def with_levels(self, levels: EmergencyLevels) -> "ServerPlatform":
        """A copy with a different emergency table (TDP sweeps, §5.4.5)."""
        return ServerPlatform(
            name=self.name,
            system_ambient_c=self.system_ambient_c,
            channels=self.channels,
            dimms_per_channel=self.dimms_per_channel,
            levels=levels,
            cooling=self.cooling,
            cpu_mem_interaction=self.cpu_mem_interaction,
            cpu_idle_preheat_c=self.cpu_idle_preheat_c,
            l2_per_socket_bytes=self.l2_per_socket_bytes,
            sockets=self.sockets,
            cores_per_socket=self.cores_per_socket,
            peak_bandwidth_bytes_per_s=self.peak_bandwidth_bytes_per_s,
            idle_latency_s=self.idle_latency_s,
            cpu_power=self.cpu_power,
            dtm_interval_s=self.dtm_interval_s,
            time_slice_s=self.time_slice_s,
        )


#: Dell PowerEdge 1950: 26 degC room, two DIMMs (one per channel),
#: artificial AMB TDP 90 degC, processors slightly misaligned with the
#: DIMMs (weaker preheat).
PE1950 = ServerPlatform(
    name="PE1950",
    system_ambient_c=26.0,
    channels=2,
    dimms_per_channel=1,
    levels=PE1950_LEVELS,
    cooling=_server_cooling("PE1950", psi_amb=6.3),
    cpu_mem_interaction=1.7,
)

#: Intel SR1500AL: hot box at 36 degC, four DIMMs (two per channel),
#: AMB TDP 100 degC, one processor aligned with the DIMMs (~10 degC
#: preheat at full load).
SR1500AL = ServerPlatform(
    name="SR1500AL",
    system_ambient_c=36.0,
    channels=2,
    dimms_per_channel=2,
    levels=SR1500AL_LEVELS,
    cooling=_server_cooling("SR1500AL", psi_amb=6.6),
    cpu_mem_interaction=2.0,
)

#: Canonical registry of the measured platforms, keyed by name.  The
#: CLI, the scenario engine, and the client API all resolve platform
#: names through this one mapping.
PLATFORMS: dict[str, ServerPlatform] = {
    platform.name: platform for platform in (PE1950, SR1500AL)
}
