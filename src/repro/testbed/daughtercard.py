"""The sensor daughter card of the SR1500AL (§5.3.1).

The instrumented server routes analog power/thermal sensors through A/D
converters on a custom daughter card, sampled every 10 ms by a
micro-controller and logged by a user-space application.  The model
below reproduces the measurement chain: named channels, a sampling
period, bounded log buffers, and the occasional noise spikes that the
paper's methodology removes by discarding the hottest 0.5% of samples
(§5.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.thermal.sensors import ThermalSensor, despike


@dataclass
class SensorLog:
    """Bounded sample log of one channel."""

    times_s: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time_s: float, value: float) -> None:
        """Record one sample."""
        self.times_s.append(time_s)
        self.values.append(value)

    def despiked_mean(self, drop_fraction: float = 0.005) -> float:
        """Mean after removing the hottest ``drop_fraction`` of samples."""
        kept = despike(self.values, drop_fraction)
        if not kept:
            return 0.0
        return sum(kept) / len(kept)

    def __len__(self) -> int:
        return len(self.times_s)


class DaughterCard:
    """Multi-channel sampled sensor logger.

    Args:
        sampling_period_s: 10 ms in the paper's experiments.
        spike_probability: per-sample chance of a noise spike on thermal
            channels (visible in Fig. 5.4's raw curves).
        seed: RNG seed for reproducible noise.
    """

    def __init__(
        self,
        sampling_period_s: float = 0.010,
        spike_probability: float = 0.002,
        seed: int = 0,
    ) -> None:
        if sampling_period_s <= 0:
            raise ConfigurationError("sampling period must be positive")
        self._period_s = sampling_period_s
        self._sensors: dict[str, ThermalSensor] = {}
        self._logs: dict[str, SensorLog] = {}
        self._spike_probability = spike_probability
        self._seed = seed
        self._last_sample_s: float | None = None

    @property
    def sampling_period_s(self) -> float:
        """The card's sampling period."""
        return self._period_s

    def add_channel(self, name: str, noisy: bool = True) -> None:
        """Register a sensor channel."""
        if name in self._sensors:
            raise ConfigurationError(f"channel {name!r} already exists")
        self._sensors[name] = ThermalSensor(
            period_s=0.0,
            quantization_c=0.0,
            spike_probability=self._spike_probability if noisy else 0.0,
            spike_magnitude_c=8.0,
            seed=self._seed + len(self._sensors),
        )
        self._logs[name] = SensorLog()

    @property
    def channels(self) -> list[str]:
        """Registered channel names."""
        return sorted(self._sensors)

    def sample(self, now_s: float, true_values: dict[str, float]) -> dict[str, float]:
        """Sample every channel if the period elapsed; returns readings.

        Channels missing from ``true_values`` are skipped.
        """
        due = (
            self._last_sample_s is None
            or now_s - self._last_sample_s >= self._period_s - 1e-12
        )
        readings: dict[str, float] = {}
        if not due:
            return readings
        self._last_sample_s = now_s
        for name, value in true_values.items():
            sensor = self._sensors.get(name)
            if sensor is None:
                continue
            reading = sensor.read(value, now_s)
            self._logs[name].append(now_s, reading)
            readings[name] = reading
        return readings

    def log(self, name: str) -> SensorLog:
        """The recorded log of one channel."""
        try:
            return self._logs[name]
        except KeyError:
            raise ConfigurationError(f"unknown channel {name!r}") from None

    def reset(self) -> None:
        """Clear logs and sampling state."""
        for name in self._sensors:
            self._logs[name] = SensorLog()
            self._sensors[name].reset()
        self._last_sample_s = None
