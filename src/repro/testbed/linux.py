"""Linux DTM mechanisms of §5.2.1.

Three OS-level actuators, modeled as small state machines with the same
constraints the paper describes:

- :class:`CPUHotplug` — logical core removal via
  ``/sys/devices/system/cpu/cpuN/online``; core 0 can never be disabled.
- :class:`CPUFreq` — the cpufreq ladder of the Xeon 5160 (3.000 / 2.667 /
  2.333 / 2.000 GHz with automatic voltage scaling).
- :class:`TimeSliceModel` — when two programs share one core (ACG with a
  disabled sibling), the scheduler alternates them every base time
  quantum; slices below ~20 ms thrash the 4 MB L2 (Fig. 5.15).
"""

from __future__ import annotations

from repro.errors import ConfigurationError, SchedulingError
from repro.params.power_params import DVFSOperatingPoint, MeasuredProcessorPower, XEON_5160_POWER


class CPUHotplug:
    """Logical core enable/disable with the core-0 restriction."""

    def __init__(self, total_cores: int) -> None:
        if total_cores < 1:
            raise ConfigurationError("need at least one core")
        self._online = [True] * total_cores

    @property
    def total_cores(self) -> int:
        """Total core count."""
        return len(self._online)

    def online_cores(self) -> list[int]:
        """Ids of online cores."""
        return [i for i, on in enumerate(self._online) if on]

    def set_online(self, core: int, online: bool) -> None:
        """Write '0'/'1' to a core's online file.

        Raises:
            SchedulingError: when disabling core 0 ("the first core of
                the first processor cannot be disabled", §5.2.1).
        """
        if not 0 <= core < len(self._online):
            raise ConfigurationError(f"core {core} out of range")
        if core == 0 and not online:
            raise SchedulingError("core 0 cannot be disabled (Linux hotplug)")
        self._online[core] = online

    def apply_count(self, active: int, sockets: int = 2) -> list[int]:
        """Bring exactly ``active`` cores online, balanced across sockets.

        The Chapter 5 policies retain at least one core per socket to
        keep using its L2 (§5.2.2); this helper disables sibling cores
        symmetrically: 4 -> both siblings on, 3 -> disable one sibling,
        2 -> one core per socket.
        """
        total = len(self._online)
        per_socket = total // sockets
        active = max(sockets, min(total, active))
        plan = [False] * total
        remaining = active
        # First pass: one core per socket (socket-local core index 0).
        for socket in range(sockets):
            plan[socket * per_socket] = True
            remaining -= 1
        # Second pass: add siblings while budget remains.
        for socket in range(sockets):
            for local in range(1, per_socket):
                if remaining <= 0:
                    break
                plan[socket * per_socket + local] = True
                remaining -= 1
        for core in range(total):
            if core == 0:
                continue
            self._online[core] = plan[core]
        self._online[0] = True
        return self.online_cores()

    def reset(self) -> None:
        """All cores online."""
        for index in range(len(self._online)):
            self._online[index] = True


class CPUFreq:
    """The cpufreq governor interface: set a frequency, voltage follows."""

    def __init__(self, model: MeasuredProcessorPower | None = None) -> None:
        self._model = model if model is not None else XEON_5160_POWER
        self._level = 0

    @property
    def points(self) -> tuple[DVFSOperatingPoint, ...]:
        """Available operating points, fastest first."""
        return self._model.operating_points

    @property
    def level(self) -> int:
        """Current ladder position."""
        return self._level

    @property
    def frequency_hz(self) -> float:
        """Current frequency."""
        return self.points[self._level].frequency_hz

    @property
    def voltage_v(self) -> float:
        """Current (automatically scaled) voltage."""
        return self.points[self._level].voltage_v

    def set_level(self, level: int) -> None:
        """Select an operating point by ladder index."""
        if not 0 <= level < len(self.points):
            raise ConfigurationError(f"invalid cpufreq level {level}")
        self._level = level

    def set_frequency_hz(self, frequency_hz: float) -> None:
        """Select the ladder point matching a frequency (scaling_setspeed)."""
        for index, point in enumerate(self.points):
            if abs(point.frequency_hz - frequency_hz) < 1e6:
                self._level = index
                return
        raise ConfigurationError(f"unsupported frequency {frequency_hz} Hz")

    def reset(self) -> None:
        """Back to full speed."""
        self._level = 0


class TimeSliceModel:
    """Cache-thrashing surcharge for core-shared execution (Fig. 5.15).

    When two programs alternate on one core every ``slice_s`` seconds,
    each switch forces the incoming program to refill its resident lines.
    The extra miss rate is ``refill_lines / slice`` per second of that
    program's execution; it vanishes for long slices and grows
    hyperbolically for short ones — the paper measures +7.6% misses at
    10 ms and +12% at 5 ms against the 100 ms default.
    """

    def __init__(self, cache_bytes: int, line_bytes: int = 64) -> None:
        if cache_bytes <= 0 or line_bytes <= 0:
            raise ConfigurationError("cache geometry must be positive")
        self._cache_bytes = cache_bytes
        self._line_bytes = line_bytes

    def extra_misses_per_s(self, slice_s: float, resident_bytes: float) -> float:
        """Extra miss rate caused by switching every ``slice_s`` seconds.

        Args:
            slice_s: the scheduler base time quantum.
            resident_bytes: the working set the program re-fetches after
                each switch (bounded by the cache capacity).
        """
        if slice_s <= 0:
            raise ConfigurationError("time slice must be positive")
        refill_lines = min(resident_bytes, self._cache_bytes) / self._line_bytes
        return refill_lines / slice_s
