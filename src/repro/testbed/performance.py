"""Socket-aware performance model for the Chapter 5 servers.

The measured machines have two dual-core sockets, each with its own 4 MB
shared L2, in front of a single FSB/FBDIMM memory system.  Three running
shapes matter:

1. **Both cores of a socket active** — the two resident programs share
   the socket's L2 (the normal contention case).
2. **One core active, two programs resident** (DTM-ACG disabled a
   sibling) — the programs alternate on the surviving core every
   scheduler time slice.  Each runs *alone* with the whole L2 — this is
   the 27–30% L2-miss reduction of Fig. 5.8 — but pays switch-induced
   cold misses that matter below ~20 ms slices (Fig. 5.15).
3. **One program on a socket** (batch tail) — solo execution.

The sockets couple through memory latency: an outer fixed point iterates
the shared-channel utilization, evaluating each socket at the current
loaded latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.sharing import CacheClient, SharedCacheModel
from repro.core.windowmodel import MemoryEnvelope
from repro.errors import ConfigurationError
from repro.testbed.linux import TimeSliceModel
from repro.testbed.platforms import ServerPlatform
from repro.units import CACHE_LINE_BYTES
from repro.workloads.profiles import AppProfile


@dataclass(frozen=True)
class SocketLoad:
    """What one socket is running this interval."""

    #: Programs resident on this socket (1 or 2).
    resident: tuple[AppProfile, ...]
    #: Cores currently online on this socket (1 or 2).
    active_cores: int

    def __post_init__(self) -> None:
        if not 1 <= len(self.resident) <= 2:
            raise ConfigurationError("a socket hosts one or two programs")
        if not 1 <= self.active_cores <= 2:
            raise ConfigurationError("a socket has one or two active cores")


@dataclass(frozen=True)
class ProgramRate:
    """Per-program outputs of one server window."""

    app_name: str
    socket: int
    instructions_per_s: float
    l2_misses_per_s: float
    bytes_per_s: float
    #: Core utilization attributable to this program (for CPU power).
    utilization: float


@dataclass(frozen=True)
class ServerWindowResult:
    """Aggregate outputs of one server window evaluation."""

    programs: tuple[ProgramRate, ...]
    read_bytes_per_s: float
    write_bytes_per_s: float
    l2_misses_per_s: float
    utilization: float
    latency_s: float
    #: Sum over cores of V * reference-IPC for the Eq. 3.6 ambient model.
    heating_sum: float

    @property
    def total_bytes_per_s(self) -> float:
        """Read plus write throughput."""
        return self.read_bytes_per_s + self.write_bytes_per_s


#: Peak sustainable IPC of a Xeon 5160 core (utilization denominator).
_PEAK_IPC = 2.0


class ServerWindowModel:
    """Evaluates one DTM control state on a server platform."""

    def __init__(self, platform: ServerPlatform, iterations: int = 12) -> None:
        self._platform = platform
        self._iterations = iterations
        self._envelope = MemoryEnvelope(
            idle_latency_s=platform.idle_latency_s,
            peak_bandwidth_bytes_per_s=platform.peak_bandwidth_bytes_per_s,
        )
        self._cache_model = SharedCacheModel(platform.l2_per_socket_bytes)
        self._slice_model = TimeSliceModel(platform.l2_per_socket_bytes)
        self._memo: dict[tuple, ServerWindowResult] = {}

    @property
    def envelope(self) -> MemoryEnvelope:
        """The server's memory envelope."""
        return self._envelope

    def evaluate(
        self,
        sockets: list[SocketLoad],
        frequency_hz: float,
        voltage_v: float,
        bandwidth_cap_bytes_per_s: float | None = None,
        time_slice_s: float | None = None,
    ) -> ServerWindowResult:
        """Evaluate one window across all sockets.

        Args:
            sockets: per-socket loads (empty sockets omitted).
            frequency_hz: current core frequency (cpufreq applies to all).
            voltage_v: current supply voltage.
            bandwidth_cap_bytes_per_s: chipset throttle ceiling.
            time_slice_s: scheduler base quantum for core-shared sockets;
                defaults to the platform's 100 ms.
        """
        slice_s = time_slice_s if time_slice_s is not None else self._platform.time_slice_s
        key = (
            tuple(
                (tuple(a.name for a in s.resident), s.active_cores) for s in sockets
            ),
            round(frequency_hz),
            round(voltage_v, 4),
            None
            if bandwidth_cap_bytes_per_s is None
            else round(bandwidth_cap_bytes_per_s),
            round(slice_s, 6),
        )
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._solve(
            sockets, frequency_hz, voltage_v, bandwidth_cap_bytes_per_s, slice_s
        )
        self._memo[key] = result
        return result

    def _rates_at(
        self,
        sockets: list[SocketLoad],
        frequency_hz: float,
        latency_s: float,
        slice_s: float,
    ) -> tuple[list[ProgramRate], float]:
        """All program rates at one fixed memory latency, plus total demand."""
        programs: list[ProgramRate] = []
        demand = 0.0
        for socket_index, load in enumerate(sockets):
            rates = self._socket_rates(socket_index, load, frequency_hz, latency_s, slice_s)
            programs.extend(rates)
            demand += sum(r.bytes_per_s for r in rates)
        return programs, demand

    def _solve(
        self,
        sockets: list[SocketLoad],
        frequency_hz: float,
        voltage_v: float,
        cap: float | None,
        slice_s: float,
    ) -> ServerWindowResult:
        """Bisection on the shared-channel utilization.

        Demand is monotone decreasing in latency, and latency monotone
        increasing in utilization, so ``demand(L(u)) - u * B`` has a
        unique root — the served operating point.  If demand exceeds
        capacity even at the saturated latency (tiny caps), rates are
        scaled down uniformly: hard admission control at the controller.
        """
        envelope = self._envelope
        effective_peak = envelope.peak_bandwidth_bytes_per_s
        if cap is not None:
            effective_peak = min(effective_peak, max(cap, 1.0))
        rho_max = envelope.rho_max
        programs, demand = self._rates_at(
            sockets, frequency_hz, envelope.latency_s(rho_max), slice_s
        )
        if demand >= rho_max * effective_peak:
            # Saturated even at the worst queueing delay: admission control.
            scale = rho_max * effective_peak / demand if demand > 0 else 1.0
            programs = [
                ProgramRate(
                    app_name=p.app_name,
                    socket=p.socket,
                    instructions_per_s=p.instructions_per_s * scale,
                    l2_misses_per_s=p.l2_misses_per_s * scale,
                    bytes_per_s=p.bytes_per_s * scale,
                    utilization=p.utilization * scale,
                )
                for p in programs
            ]
            utilization = rho_max
            latency = envelope.latency_s(rho_max)
        else:
            lo, hi = 0.0, rho_max
            for _ in range(max(self._iterations, 20)):
                mid = (lo + hi) / 2.0
                _, demand_mid = self._rates_at(
                    sockets, frequency_hz, envelope.latency_s(mid), slice_s
                )
                if demand_mid > mid * effective_peak:
                    lo = mid
                else:
                    hi = mid
            utilization = (lo + hi) / 2.0
            latency = envelope.latency_s(utilization)
            programs, _ = self._rates_at(sockets, frequency_hz, latency, slice_s)
        total_read = 0.0
        total_write = 0.0
        total_misses = 0.0
        heating = 0.0
        max_frequency = self._platform.cpu_power.operating_points[0].frequency_hz
        for rate in programs:
            app_write_frac = _write_frac_by_name(sockets, rate.app_name)
            write = rate.bytes_per_s * app_write_frac / (1.0 + app_write_frac)
            total_write += write
            total_read += rate.bytes_per_s - write
            total_misses += rate.l2_misses_per_s
            heating += voltage_v * rate.instructions_per_s / max_frequency
        return ServerWindowResult(
            programs=tuple(programs),
            read_bytes_per_s=total_read,
            write_bytes_per_s=total_write,
            l2_misses_per_s=total_misses,
            utilization=min(utilization, 1.0),
            latency_s=latency,
            heating_sum=heating,
        )

    def _socket_rates(
        self,
        socket_index: int,
        load: SocketLoad,
        frequency_hz: float,
        latency_s: float,
        slice_s: float,
    ) -> list[ProgramRate]:
        """Per-program rates of one socket at a fixed memory latency."""
        capacity = self._platform.l2_per_socket_bytes
        latency_cycles = latency_s * frequency_hz
        apps = load.resident
        if len(apps) == 2 and load.active_cores == 2:
            # Shape 1: both cores run; programs share the L2.
            shares = self._shared_shares(apps, frequency_hz, latency_cycles)
            rates = []
            for app, share in zip(apps, shares):
                rates.append(
                    self._program_rate(
                        socket_index, app, frequency_hz, latency_cycles, share, 1.0, 0.0
                    )
                )
            return rates
        if len(apps) == 2 and load.active_cores == 1:
            # Shape 2: time-shared core; each program runs alone with the
            # whole L2 for half the time, paying switch cold misses.
            rates = []
            for app in apps:
                resident = min(app.mrc.c_half_bytes, capacity)
                extra = self._slice_model.extra_misses_per_s(slice_s, resident)
                rates.append(
                    self._program_rate(
                        socket_index,
                        app,
                        frequency_hz,
                        latency_cycles,
                        capacity,
                        duty=0.5,
                        extra_misses_per_s=extra,
                    )
                )
            return rates
        # Shape 3: one program (tail of the batch) — solo with full cache.
        rates = []
        for app in apps:
            rates.append(
                self._program_rate(
                    socket_index, app, frequency_hz, latency_cycles, capacity, 1.0, 0.0
                )
            )
        return rates

    def _shared_shares(
        self, apps: tuple[AppProfile, ...], frequency_hz: float, latency_cycles: float
    ) -> list[float]:
        """Cache shares of two co-runners (insertion-rate fixed point)."""
        ipc_estimates = []
        for app in apps:
            mpi = app.misses_per_instruction(self._platform.l2_per_socket_bytes / 2)
            ipc_estimates.append(1.0 / (app.cpi_base + mpi * latency_cycles / app.mlp))
        clients = [
            CacheClient(
                name=f"{app.name}#{index}",
                access_rate_per_s=frequency_hz * ipc_estimates[index] * app.apki / 1000.0,
                mrc=app.mrc,
            )
            for index, app in enumerate(apps)
        ]
        solved = self._cache_model.solve(clients)
        return [share.capacity_bytes for share in solved]

    def _program_rate(
        self,
        socket_index: int,
        app: AppProfile,
        frequency_hz: float,
        latency_cycles: float,
        cache_share_bytes: float,
        duty: float,
        extra_misses_per_s: float,
    ) -> ProgramRate:
        """Closed-form rate of one program at fixed latency and share."""
        mpi = app.misses_per_instruction(cache_share_bytes)
        ipc_solo = 1.0 / (app.cpi_base + mpi * latency_cycles / app.mlp)
        ips = frequency_hz * ipc_solo * duty
        misses = ips * mpi
        if extra_misses_per_s > 0.0 and ips > 0.0:
            # Charge the cold misses: extra miss rate while running, with
            # the corresponding pipeline stalls folded into IPS.
            extra_mpi = extra_misses_per_s * duty / ips
            ipc_adj = 1.0 / (
                app.cpi_base + (mpi + extra_mpi) * latency_cycles / app.mlp
            )
            ips = frequency_hz * ipc_adj * duty
            misses = ips * (mpi + extra_mpi)
        top_frequency = self._platform.cpu_power.operating_points[0].frequency_hz
        spec = 1.0 + app.spec_traffic_frac * frequency_hz / top_frequency
        bytes_per_s = misses * CACHE_LINE_BYTES * (spec + app.write_frac)
        utilization = min(1.0, (ips / frequency_hz) / _PEAK_IPC) if frequency_hz else 0.0
        return ProgramRate(
            app_name=app.name,
            socket=socket_index,
            instructions_per_s=ips,
            l2_misses_per_s=misses,
            bytes_per_s=bytes_per_s,
            utilization=utilization,
        )

    def clear_cache(self) -> None:
        """Drop memoized evaluations."""
        self._memo.clear()


def _write_frac_by_name(sockets: list[SocketLoad], name: str) -> float:
    """Find a program's write fraction by name (for the read/write split)."""
    for load in sockets:
        for app in load.resident:
            if app.name == name:
                return app.write_frac
    return 0.3
