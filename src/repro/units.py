"""Unit helpers and conversions used throughout the library.

The paper mixes several unit systems: memory throughput in GB/s, DRAM
timing in nanoseconds, channel speed in mega-transfers per second (MT/s),
temperatures in degrees Celsius, and power in watts.  Centralizing the
conversion constants here keeps the model code free of magic numbers and
makes the provenance of each constant auditable.

All internal simulator state uses SI base units (bytes, seconds, watts,
degrees Celsius) unless a name says otherwise.
"""

from __future__ import annotations

#: Bytes in one binary kilobyte / megabyte / gigabyte.
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: The paper quotes bandwidth in decimal GB/s (e.g. 6.4 GB/s for DDR2-800).
GB = 1_000_000_000

#: Seconds per nanosecond / microsecond / millisecond.
NS = 1e-9
US = 1e-6
MS = 1e-3

#: Cache block size used throughout the paper (Table 4.1: 64 B lines).
CACHE_LINE_BYTES = 64


def gbps(value: float) -> float:
    """Convert a throughput expressed in GB/s to bytes/second."""
    return value * GB


def to_gbps(bytes_per_second: float) -> float:
    """Convert a throughput in bytes/second to GB/s."""
    return bytes_per_second / GB


def ns_to_s(nanoseconds: float) -> float:
    """Convert nanoseconds to seconds."""
    return nanoseconds * NS


def s_to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds / NS


def mt_per_s_to_hz(mega_transfers: float) -> float:
    """Convert a DDR transfer rate in MT/s to the bus clock in Hz.

    DDR transfers twice per bus clock, so e.g. 667 MT/s corresponds to a
    333.5 MHz bus clock.
    """
    return mega_transfers * 1e6 / 2.0


def celsius_to_kelvin(celsius: float) -> float:
    """Convert degrees Celsius to Kelvin."""
    return celsius + 273.15


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert Kelvin to degrees Celsius."""
    return kelvin - 273.15


def joules(power_watts: float, seconds: float) -> float:
    """Energy in joules for a constant power draw over an interval."""
    return power_watts * seconds
