"""Energy accounting for the DTM energy-consumption experiments.

The second-level simulator produces piecewise-constant power over DTM
intervals; :class:`EnergyMeter` integrates those samples and keeps
separate channels (e.g. "cpu", "memory") so Figs. 4.9/4.10/5.11 can be
regenerated from a single run.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import ConfigurationError


class EnergyMeter:
    """Accumulates energy per named channel from (power, duration) samples."""

    def __init__(self) -> None:
        self._joules: dict[str, float] = defaultdict(float)
        self._seconds: dict[str, float] = defaultdict(float)

    def add(self, channel: str, power_w: float, duration_s: float) -> None:
        """Record ``power_w`` drawn on ``channel`` for ``duration_s`` seconds."""
        if duration_s < 0:
            raise ConfigurationError("duration must be non-negative")
        if power_w < 0:
            raise ConfigurationError("power must be non-negative")
        self._joules[channel] += power_w * duration_s
        self._seconds[channel] += duration_s

    def energy_j(self, channel: str) -> float:
        """Total energy recorded on a channel, in joules."""
        return self._joules.get(channel, 0.0)

    def duration_s(self, channel: str) -> float:
        """Total time recorded on a channel, in seconds."""
        return self._seconds.get(channel, 0.0)

    def average_power_w(self, channel: str) -> float:
        """Time-averaged power on a channel (0 if nothing recorded)."""
        seconds = self._seconds.get(channel, 0.0)
        if seconds == 0.0:
            return 0.0
        return self._joules[channel] / seconds

    def total_energy_j(self) -> float:
        """Energy summed over every channel."""
        return sum(self._joules.values())

    @property
    def channels(self) -> list[str]:
        """Names of all channels with recorded samples, sorted."""
        return sorted(self._joules)

    def merged(self, *channel_names: str) -> float:
        """Energy summed over a subset of channels (for CPU+DRAM plots)."""
        return sum(self._joules.get(name, 0.0) for name in channel_names)
