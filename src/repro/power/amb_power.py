"""The AMB power model of Eq. 3.2.

``P_AMB = P_idle + beta * T_bypass + gamma * T_local``

An AMB spends energy on requests destined for its own DRAM chips
(*local*) and on requests it merely forwards along the daisy chain
(*bypass*).  A local request costs more than a bypassed one
(gamma > beta).  Idle power depends on the chain position: the last AMB
only synchronizes with one neighbor and idles at 4.0 W instead of 5.1 W
(Table 3.1).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.params.power_params import AMBPowerParams
from repro.units import to_gbps


def amb_power_w(
    local_bytes_per_s: float,
    bypass_bytes_per_s: float,
    is_last_dimm: bool = False,
    params: AMBPowerParams | None = None,
) -> float:
    """Power of one AMB, in watts (Eq. 3.2).

    Args:
        local_bytes_per_s: throughput of requests served by this DIMM.
        bypass_bytes_per_s: throughput of requests forwarded past it.
        is_last_dimm: whether this AMB terminates the daisy chain.
        params: model constants; defaults to the Table 3.1 values.

    Returns:
        AMB power in watts.

    Raises:
        ConfigurationError: if a throughput is negative.
    """
    if local_bytes_per_s < 0 or bypass_bytes_per_s < 0:
        raise ConfigurationError("throughput must be non-negative")
    p = params if params is not None else AMBPowerParams()
    return (
        p.idle_power_w(is_last_dimm)
        + p.beta_w_per_gbps * to_gbps(bypass_bytes_per_s)
        + p.gamma_w_per_gbps * to_gbps(local_bytes_per_s)
    )
