"""The simple DRAM power model of Eq. 3.1.

``P_DRAM = P_static + alpha1 * T_read + alpha2 * T_write``

Throughput is expressed in bytes/second at the interface of one DIMM's
DRAM chips; the coefficients are per-DIMM (Table 3.1 text: 0.98 W static,
1.12 W/(GB/s) read, 1.16 W/(GB/s) write).  Row-buffer hits never appear
because the paper fixes close-page mode with auto-precharge, making the
hit rate zero (§3.3).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.params.power_params import DRAMPowerParams
from repro.units import to_gbps


def dram_power_w(
    read_bytes_per_s: float,
    write_bytes_per_s: float,
    params: DRAMPowerParams | None = None,
) -> float:
    """Power of one DIMM's DRAM chips, in watts (Eq. 3.1).

    Args:
        read_bytes_per_s: read throughput served by this DIMM.
        write_bytes_per_s: write throughput served by this DIMM.
        params: model constants; defaults to the Table 3.1 values.

    Returns:
        DRAM power in watts.

    Raises:
        ConfigurationError: if a throughput is negative.
    """
    if read_bytes_per_s < 0 or write_bytes_per_s < 0:
        raise ConfigurationError("throughput must be non-negative")
    p = params if params is not None else DRAMPowerParams()
    return (
        p.static_w
        + p.alpha1_w_per_gbps * to_gbps(read_bytes_per_s)
        + p.alpha2_w_per_gbps * to_gbps(write_bytes_per_s)
    )
