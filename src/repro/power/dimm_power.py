"""Per-DIMM power with the daisy-chain local/bypass traffic split.

On an FBDIMM channel the memory controller reaches DIMM *i* through the
AMBs of DIMMs 0..i-1, so every request to a far DIMM is *bypass* traffic
at every nearer AMB (Fig. 3.2).  With addresses interleaved uniformly
across the chain, DIMM *i* of an *n*-DIMM channel sees:

- local traffic  = T / n
- bypass traffic = T * (n - 1 - i) / n

which makes the DIMM closest to the controller both the busiest AMB and
(all else equal) the hottest — matching the paper's observation that the
first DIMM of the PE1950 always reads hottest (§5.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.params.power_params import AMBPowerParams, DRAMPowerParams
from repro.power.amb_power import amb_power_w
from repro.power.dram_power import dram_power_w


@dataclass(frozen=True)
class ChannelTraffic:
    """Aggregate read/write throughput carried by one FBDIMM channel."""

    read_bytes_per_s: float
    write_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.read_bytes_per_s < 0 or self.write_bytes_per_s < 0:
            raise ConfigurationError("channel throughput must be non-negative")

    @property
    def total_bytes_per_s(self) -> float:
        """Combined read + write throughput."""
        return self.read_bytes_per_s + self.write_bytes_per_s


@dataclass(frozen=True)
class DimmPower:
    """Power breakdown of one DIMM at one instant."""

    #: Position on the daisy chain, 0 = closest to the controller.
    position: int
    amb_w: float
    dram_w: float

    @property
    def total_w(self) -> float:
        """AMB + DRAM power of this DIMM."""
        return self.amb_w + self.dram_w


def channel_dimm_powers(
    traffic: ChannelTraffic,
    dimms: int,
    amb_params: AMBPowerParams | None = None,
    dram_params: DRAMPowerParams | None = None,
) -> list[DimmPower]:
    """Power of every DIMM on one channel under uniform interleaving.

    Args:
        traffic: total read/write throughput on the channel.
        dimms: number of DIMMs on the daisy chain (>= 1).
        amb_params: AMB power constants (Table 3.1 defaults).
        dram_params: DRAM power constants (Eq. 3.1 defaults).

    Returns:
        One :class:`DimmPower` per chain position, nearest first.
    """
    if dimms < 1:
        raise ConfigurationError(f"a channel needs at least one DIMM, got {dimms}")
    total = traffic.total_bytes_per_s
    local = total / dimms
    local_read = traffic.read_bytes_per_s / dimms
    local_write = traffic.write_bytes_per_s / dimms
    powers = []
    for position in range(dimms):
        bypass = total * (dimms - 1 - position) / dimms
        amb_w = amb_power_w(
            local_bytes_per_s=local,
            bypass_bytes_per_s=bypass,
            is_last_dimm=(position == dimms - 1),
            params=amb_params,
        )
        dram_w = dram_power_w(local_read, local_write, params=dram_params)
        powers.append(DimmPower(position=position, amb_w=amb_w, dram_w=dram_w))
    return powers


def hottest_dimm_power(
    traffic: ChannelTraffic,
    dimms: int,
    amb_params: AMBPowerParams | None = None,
    dram_params: DRAMPowerParams | None = None,
) -> DimmPower:
    """The chain position with the highest AMB power (the thermal hot spot)."""
    powers = channel_dimm_powers(traffic, dimms, amb_params, dram_params)
    return max(powers, key=lambda p: p.amb_w)
