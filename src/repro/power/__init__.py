"""FBDIMM power models (Chapter 3, §3.3) and energy accounting.

- :mod:`repro.power.dram_power` — the simple DRAM chip power model, Eq. 3.1.
- :mod:`repro.power.amb_power` — the AMB power model, Eq. 3.2.
- :mod:`repro.power.dimm_power` — per-DIMM power with the local/bypass
  traffic split implied by the daisy-chain position.
- :mod:`repro.power.energy` — trapezoidal energy integration of power
  samples for the energy-consumption experiments (Figs. 4.9 / 4.10 / 5.11).
"""

from repro.power.dram_power import dram_power_w
from repro.power.amb_power import amb_power_w
from repro.power.dimm_power import ChannelTraffic, DimmPower, channel_dimm_powers
from repro.power.energy import EnergyMeter

__all__ = [
    "dram_power_w",
    "amb_power_w",
    "ChannelTraffic",
    "DimmPower",
    "channel_dimm_powers",
    "EnergyMeter",
]
