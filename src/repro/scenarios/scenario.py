"""The :class:`Scenario` dataclass and the scenario registry.

A scenario is the *single* vocabulary for naming a run anywhere in the
repo: it composes a workload profile (mix), a DTM policy, a thermal
model (cooling column + ambient row, or a Chapter 5 server platform),
platform-shape parameters (channels, chain depth) and a traffic shape
(duty cycle, bandwidth scaling) into one declarative, frozen object.
``Scenario.spec()`` lowers it to the campaign engine's
:class:`~repro.analysis.specs.Chapter4Spec` /
:class:`~repro.analysis.specs.Chapter5Spec`, which is how every
entry point — the CLI, the campaign grids, the figure benches — actually
launches it (with caching, dedup, and parallelism for free).

The registry holds the named library of :mod:`repro.scenarios.library`;
:func:`grid_scenario` builds canonical *unregistered* scenarios for
ad-hoc cells (CLI one-offs, campaign grid points) so that those, too,
flow through the same composition path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.analysis.specs import (
    CHAPTER4_POLICY_CHOICES,
    CHAPTER5_POLICIES,
    Chapter4Spec,
    Chapter5Spec,
)
from repro.campaign import RunSpec
from repro.errors import ConfigurationError
from repro.params.thermal_params import COOLING_CONFIGS
from repro.testbed.platforms import PLATFORMS

#: Spec kinds a scenario can lower to.
SCENARIO_KINDS = ("ch4", "ch5")

#: Fields that only make sense for Chapter 4 (simulation) scenarios,
#: with their neutral defaults.
_CH4_ONLY = {
    "cooling": "AOHS_1.5",
    "ambient": "isolated",
    "interaction": None,
    "amb_trp_c": None,
    "dram_trp_c": None,
    "inlet_delta_c": 0.0,
    "channels": 4,
    "dimms_per_channel": 4,
    "duty_cycle": 1.0,
    "duty_period_s": 0.1,
    "bandwidth_scale": 1.0,
}

#: Fields that only make sense for Chapter 5 (server) scenarios.
_CH5_ONLY = {
    "platform": "PE1950",
    "time_slice_s": None,
    "ambient_override_c": None,
    "amb_tdp_c": None,
    "base_frequency_level": 0,
}


@dataclass(frozen=True)
class Scenario:
    """One named workload/DTM/thermal/traffic scenario.

    Composition axes:

    - **workload**: ``mix`` (Table 4.2 / 5.2 name);
    - **DTM policy**: ``policy`` short name;
    - **thermal model**: ``cooling`` + ``ambient`` (+ ``interaction``,
      ``inlet_delta_c``) for ch4, ``platform`` (+ ``ambient_override_c``,
      ``amb_tdp_c``) for ch5;
    - **platform shape**: ``channels`` x ``dimms_per_channel``;
    - **traffic shape**: ``duty_cycle``/``duty_period_s`` bursts and
      ``bandwidth_scale`` envelope scaling.
    """

    name: str
    description: str
    kind: str = "ch4"
    mix: str = "W1"
    policy: str = "ts"
    # -- ch4 axes ---------------------------------------------------------
    cooling: str = "AOHS_1.5"
    ambient: str = "isolated"
    dtm_interval_s: float = 0.010
    interaction: float | None = None
    amb_trp_c: float | None = None
    dram_trp_c: float | None = None
    inlet_delta_c: float = 0.0
    channels: int = 4
    dimms_per_channel: int = 4
    duty_cycle: float = 1.0
    duty_period_s: float = 0.1
    bandwidth_scale: float = 1.0
    # -- ch5 axes ---------------------------------------------------------
    platform: str = "PE1950"
    time_slice_s: float | None = None
    ambient_override_c: float | None = None
    amb_tdp_c: float | None = None
    base_frequency_level: int = 0
    #: Free-form labels for ``scenarios list`` filtering.
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario needs a non-empty name")
        if self.kind not in SCENARIO_KINDS:
            raise ConfigurationError(
                f"scenario {self.name!r}: kind must be one of {SCENARIO_KINDS}, "
                f"got {self.kind!r}"
            )
        choices = (
            CHAPTER4_POLICY_CHOICES if self.kind == "ch4" else CHAPTER5_POLICIES
        )
        if self.policy not in choices:
            raise ConfigurationError(
                f"scenario {self.name!r}: policy {self.policy!r} is not a "
                f"{self.kind} policy (choices: {list(choices)})"
            )
        if self.kind == "ch4" and self.cooling not in COOLING_CONFIGS:
            raise ConfigurationError(
                f"scenario {self.name!r}: unknown cooling {self.cooling!r}"
            )
        if self.kind == "ch4" and self.ambient not in ("isolated", "integrated"):
            raise ConfigurationError(
                f"scenario {self.name!r}: ambient must be isolated or integrated"
            )
        if self.kind == "ch5" and self.platform not in PLATFORMS:
            raise ConfigurationError(
                f"scenario {self.name!r}: unknown platform {self.platform!r} "
                f"(choices: {sorted(PLATFORMS)})"
            )
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ConfigurationError(
                f"scenario {self.name!r}: duty cycle must be within (0, 1]"
            )
        if self.duty_period_s <= 0 or self.bandwidth_scale <= 0:
            raise ConfigurationError(
                f"scenario {self.name!r}: duty period and bandwidth scale "
                "must be positive"
            )
        if self.channels < 1 or self.dimms_per_channel < 1:
            raise ConfigurationError(
                f"scenario {self.name!r}: need at least one channel and one DIMM"
            )
        off_kind = _CH5_ONLY if self.kind == "ch4" else _CH4_ONLY
        for field_name, default in off_kind.items():
            if getattr(self, field_name) != default:
                raise ConfigurationError(
                    f"scenario {self.name!r}: {field_name!r} does not apply to "
                    f"{self.kind} scenarios"
                )

    def spec(
        self,
        copies: int = 2,
        mix: str | None = None,
        policy: str | None = None,
    ) -> RunSpec:
        """Lower this scenario to a campaign run spec.

        ``mix``/``policy`` override the scenario's own axes — that is how
        the campaign's scenarios grid crosses a scenario with extra
        workloads or policies.
        """
        mix = self.mix if mix is None else mix
        policy = self.policy if policy is None else policy
        if self.kind == "ch4":
            return Chapter4Spec(
                scenario=self.name,
                mix=mix,
                policy=policy,
                cooling=self.cooling,
                ambient=self.ambient,
                copies=copies,
                dtm_interval_s=self.dtm_interval_s,
                interaction=self.interaction,
                amb_trp_c=self.amb_trp_c,
                dram_trp_c=self.dram_trp_c,
                inlet_delta_c=self.inlet_delta_c,
                channels=self.channels,
                dimms_per_channel=self.dimms_per_channel,
                duty_cycle=self.duty_cycle,
                duty_period_s=self.duty_period_s,
                bandwidth_scale=self.bandwidth_scale,
            )
        return Chapter5Spec(
            scenario=self.name,
            platform=self.platform,
            mix=mix,
            policy=policy,
            copies=copies,
            time_slice_s=self.time_slice_s,
            ambient_override_c=self.ambient_override_c,
            amb_tdp_c=self.amb_tdp_c,
            base_frequency_level=self.base_frequency_level,
        )

    def with_overrides(self, **changes) -> "Scenario":
        """A copy with dataclass fields replaced (validation re-runs)."""
        return replace(self, **changes)


def grid_scenario(
    kind: str,
    mix: str,
    policy: str,
    *,
    cooling: str = "AOHS_1.5",
    ambient: str = "isolated",
    platform: str = "PE1950",
) -> Scenario:
    """A canonical unregistered scenario for one ad-hoc grid/CLI cell.

    The name is deterministic in the axes, so an ad-hoc CLI run and the
    equivalent campaign grid cell share one cache entry.
    """
    if kind == "ch4":
        return Scenario(
            name=f"ch4:{cooling}:{mix}:{policy}",
            description=f"{policy} on {mix} @ {cooling} ({ambient} model)",
            kind="ch4",
            mix=mix,
            policy=policy,
            cooling=cooling,
            ambient=ambient,
        )
    if kind == "ch5":
        return Scenario(
            name=f"ch5:{platform}:{mix}:{policy}",
            description=f"{policy} on {mix} @ {platform}",
            kind="ch5",
            mix=mix,
            policy=policy,
            platform=platform,
        )
    raise ConfigurationError(f"kind must be one of {SCENARIO_KINDS}, got {kind!r}")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace_existing: bool = False) -> Scenario:
    """Add a scenario to the registry (name collisions are errors)."""
    if not replace_existing and scenario.name in _SCENARIOS:
        raise ConfigurationError(
            f"scenario {scenario.name!r} is already registered"
        )
    _SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    scenario = _SCENARIOS.get(name)
    if scenario is None:
        known = ", ".join(sorted(_SCENARIOS)) or "none registered"
        raise ConfigurationError(f"unknown scenario {name!r} (have: {known})")
    return scenario


def scenario_names() -> tuple[str, ...]:
    """Sorted names of every registered scenario."""
    return tuple(sorted(_SCENARIOS))


def iter_scenarios(kind: str | None = None, tag: str | None = None) -> Iterator[Scenario]:
    """Registered scenarios in name order, optionally filtered."""
    for name in scenario_names():
        scenario = _SCENARIOS[name]
        if kind is not None and scenario.kind != kind:
            continue
        if tag is not None and tag not in scenario.tags:
            continue
        yield scenario
