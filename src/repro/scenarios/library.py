"""The built-in scenario library.

Each entry composes a workload, a DTM policy, a thermal model, platform
shape, and a traffic shape into one named, registered
:class:`~repro.scenarios.scenario.Scenario`.  The paper's figures cover
the default platform under steady batch traffic; these scenarios stress
the axes the figures hold fixed — ambient excursions, control-parameter
corners, channel asymmetry, bursty traffic, and server-side what-ifs.

Run one with ``python -m repro scenarios run <name>`` or sweep them with
``python -m repro campaign --grid scenarios``.
"""

from __future__ import annotations

from repro.scenarios.scenario import Scenario, register_scenario

#: Every built-in scenario, in definition order.
SCENARIO_LIBRARY: tuple[Scenario, ...] = (
    # -- ambient excursions ------------------------------------------------
    Scenario(
        name="hot-ambient",
        description="machine-room cooling failure: inlet +8 degC under DTM-TS",
        kind="ch4",
        mix="W2",
        policy="ts",
        inlet_delta_c=8.0,
        tags=("ambient", "stress"),
    ),
    Scenario(
        name="cold-aisle",
        description="over-provisioned cold aisle: inlet -8 degC, no limit",
        kind="ch4",
        mix="W1",
        policy="no-limit",
        cooling="FDHS_1.0",
        inlet_delta_c=-8.0,
        tags=("ambient",),
    ),
    # -- control-parameter corners -----------------------------------------
    Scenario(
        name="throttle-storm",
        description="deep TS hysteresis (AMB TRP 95) forcing long on/off swings",
        kind="ch4",
        mix="W3",
        policy="ts",
        cooling="FDHS_1.0",
        amb_trp_c=95.0,
        tags=("control", "stress"),
    ),
    Scenario(
        name="fast-control",
        description="2 ms DTM interval: control overhead dominates (Fig. 4.11 corner)",
        kind="ch4",
        mix="W1",
        policy="acg",
        dtm_interval_s=0.002,
        tags=("control",),
    ),
    Scenario(
        name="worst-case-comb",
        description="combined policy under integrated ambient, interaction 2.0, hot inlet",
        kind="ch4",
        mix="W3",
        policy="comb",
        ambient="integrated",
        interaction=2.0,
        inlet_delta_c=5.0,
        tags=("control", "stress"),
    ),
    # -- platform shape ----------------------------------------------------
    Scenario(
        name="asymmetric-channel",
        description="16 DIMMs down 2 channels: double bypass traffic per AMB",
        kind="ch4",
        mix="W1",
        policy="bw",
        channels=2,
        dimms_per_channel=8,
        tags=("platform",),
    ),
    Scenario(
        name="deep-chain",
        description="8-DIMM daisy chains on all 4 channels under DTM-TS",
        kind="ch4",
        mix="W4",
        policy="ts",
        dimms_per_channel=8,
        tags=("platform",),
    ),
    # -- traffic shape -----------------------------------------------------
    Scenario(
        name="idle-burst",
        description="bursty batch: cores run 25% of each 400 ms period",
        kind="ch4",
        mix="W1",
        policy="no-limit",
        duty_cycle=0.25,
        duty_period_s=0.4,
        tags=("traffic",),
    ),
    Scenario(
        name="narrow-pipe",
        description="memory envelope halved: queueing-dominated latency under DTM-BW",
        kind="ch4",
        mix="W2",
        policy="bw",
        bandwidth_scale=0.5,
        tags=("traffic",),
    ),
    Scenario(
        name="integrated-cdvfs",
        description="CDVFS+PID under the integrated ambient model (Fig. 4.12 cell)",
        kind="ch4",
        mix="W1",
        policy="cdvfs+pid",
        ambient="integrated",
        tags=("control",),
    ),
    # -- server (Chapter 5) what-ifs ---------------------------------------
    Scenario(
        name="server-hot-inlet",
        description="PE1950 with a 45 degC memory inlet under the combined policy",
        kind="ch5",
        mix="W1",
        policy="comb",
        platform="PE1950",
        ambient_override_c=45.0,
        tags=("server", "ambient"),
    ),
    Scenario(
        name="server-low-tdp",
        description="SR1500AL derated to an 80 degC AMB TDP under DTM-ACG",
        kind="ch5",
        mix="W11",
        policy="acg",
        platform="SR1500AL",
        amb_tdp_c=80.0,
        tags=("server", "control"),
    ),
    Scenario(
        name="server-coarse-slice",
        description="PE1950 with 500 ms OS time slices under DTM-BW",
        kind="ch5",
        mix="W2",
        policy="bw",
        platform="PE1950",
        time_slice_s=0.5,
        tags=("server", "traffic"),
    ),
)

for _scenario in SCENARIO_LIBRARY:
    register_scenario(_scenario, replace_existing=True)
