"""Declarative scenario engine: one vocabulary for naming any run.

Importing this package registers the built-in library, so::

    from repro.scenarios import get_scenario, run_scenario

    result = run_scenario("hot-ambient", copies=1)

is all it takes to execute a named scenario through the campaign engine
(cached, deduplicated, parallelizable).  See
:mod:`repro.scenarios.scenario` for the dataclass and registry and
:mod:`repro.scenarios.library` for the built-ins.
"""

from __future__ import annotations

from typing import Any

from repro.campaign import ResultStore
from repro.campaign import run as _campaign_run
from repro.scenarios.library import SCENARIO_LIBRARY
from repro.scenarios.scenario import (
    SCENARIO_KINDS,
    Scenario,
    get_scenario,
    grid_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)

__all__ = [
    "SCENARIO_KINDS",
    "SCENARIO_LIBRARY",
    "Scenario",
    "get_scenario",
    "grid_scenario",
    "iter_scenarios",
    "register_scenario",
    "run_scenario",
    "scenario_names",
]


def run_scenario(
    name: str,
    copies: int = 2,
    store: ResultStore | None = None,
) -> Any:
    """Run (or recall) one registered scenario through the campaign engine."""
    return _campaign_run(get_scenario(name).spec(copies=copies), store=store)
