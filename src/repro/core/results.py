"""Result containers for two-level simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class TemperatureTrace:
    """Downsampled temperature time series of one run."""

    times_s: list[float] = field(default_factory=list)
    amb_c: list[float] = field(default_factory=list)
    dram_c: list[float] = field(default_factory=list)
    ambient_c: list[float] = field(default_factory=list)

    def append(self, time_s: float, amb_c: float, dram_c: float, ambient_c: float) -> None:
        """Record one sample."""
        self.times_s.append(time_s)
        self.amb_c.append(amb_c)
        self.dram_c.append(dram_c)
        self.ambient_c.append(ambient_c)

    def __len__(self) -> int:
        return len(self.times_s)

    def max_amb_c(self) -> float:
        """Peak recorded AMB temperature."""
        if not self.amb_c:
            raise SimulationError("empty temperature trace")
        return max(self.amb_c)

    def window(self, start_s: float, end_s: float) -> "TemperatureTrace":
        """Sub-trace within [start_s, end_s)."""
        sub = TemperatureTrace()
        for i, t in enumerate(self.times_s):
            if start_s <= t < end_s:
                sub.append(t, self.amb_c[i], self.dram_c[i], self.ambient_c[i])
        return sub


@dataclass(frozen=True)
class RunResult:
    """Outputs of one two-level simulation run.

    The benchmark harness normalizes these against the no-limit baseline
    to regenerate the paper's figures.
    """

    workload: str
    policy: str
    cooling: str
    #: Simulated wall-clock time to finish the batch job, seconds.
    runtime_s: float
    #: Total memory traffic (read + write bytes).
    traffic_bytes: float
    #: Total L2 cache misses.
    l2_misses: float
    #: Total instructions retired.
    instructions: float
    #: Processor energy, joules.
    cpu_energy_j: float
    #: Memory (FBDIMM) energy, joules.
    memory_energy_j: float
    #: Time-averaged memory inlet (ambient) temperature, degC.
    mean_ambient_c: float
    #: Peak AMB temperature seen, degC.
    peak_amb_c: float
    #: Peak DRAM temperature seen, degC.
    peak_dram_c: float
    #: Fraction of DTM intervals spent at the highest emergency level.
    shutdown_fraction: float
    #: Number of completed batch jobs.
    finished_jobs: int
    #: Temperature trace (downsampled; empty if recording disabled).
    trace: TemperatureTrace = field(default_factory=TemperatureTrace)

    @property
    def average_cpu_power_w(self) -> float:
        """Mean processor power over the run."""
        if self.runtime_s <= 0:
            return 0.0
        return self.cpu_energy_j / self.runtime_s

    @property
    def average_memory_power_w(self) -> float:
        """Mean memory power over the run."""
        if self.runtime_s <= 0:
            return 0.0
        return self.memory_energy_j / self.runtime_s

    def normalized_runtime(self, baseline: "RunResult") -> float:
        """Runtime relative to a baseline run (Fig. 4.3 metric)."""
        if baseline.runtime_s <= 0:
            raise SimulationError("baseline runtime must be positive")
        return self.runtime_s / baseline.runtime_s

    def normalized_traffic(self, baseline: "RunResult") -> float:
        """Memory traffic relative to a baseline run (Fig. 4.4 metric)."""
        if baseline.traffic_bytes <= 0:
            raise SimulationError("baseline traffic must be positive")
        return self.traffic_bytes / baseline.traffic_bytes

    def normalized_energy(self, baseline: "RunResult", channel: str = "memory") -> float:
        """Energy relative to a baseline run (Fig. 4.9/4.10 metric)."""
        if channel == "memory":
            own, base = self.memory_energy_j, baseline.memory_energy_j
        elif channel == "cpu":
            own, base = self.cpu_energy_j, baseline.cpu_energy_j
        elif channel == "total":
            own = self.memory_energy_j + self.cpu_energy_j
            base = baseline.memory_energy_j + baseline.cpu_energy_j
        else:
            raise SimulationError(f"unknown energy channel {channel!r}")
        if base <= 0:
            raise SimulationError("baseline energy must be positive")
        return own / base
