"""Level-1 trace generation over the DTM design space (§4.3.1).

The paper's first-level simulator produces, ahead of time, performance
and memory-throughput traces for "all possible running combinations of
workloads under each DTM design choice" — the set W_i x D fed to the
second-level simulator.  :class:`TraceLibrary` materializes that product
for a workload mix: every subset of co-running applications crossed with
every DTM actuator state, each entry carrying the 10 ms-window
performance and throughput figures.

The in-loop simulator does not *need* the library (its window model is
memoized on demand), but the library makes the two-level structure
explicit, drives the design-space benches and lets a user export the
traces for external tools.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.windowmodel import WindowModel, WindowResult
from repro.errors import ConfigurationError
from repro.params.emergency import EmergencyLevels, SIMULATION_LEVELS
from repro.params.power_params import ProcessorPowerTable, SIMULATED_CPU_POWER
from repro.workloads.mixes import WorkloadMix


@dataclass(frozen=True)
class DesignPoint:
    """One DTM actuator state in the explored design space D."""

    active_cores: int
    dvfs_level: int
    bandwidth_cap_bytes_per_s: float | None

    def __post_init__(self) -> None:
        if self.active_cores < 0 or self.dvfs_level < 0:
            raise ConfigurationError("design point fields must be non-negative")


def design_space(
    levels: EmergencyLevels | None = None,
    cpu_power: ProcessorPowerTable | None = None,
) -> list[DesignPoint]:
    """The design space implied by an emergency table's control ladders."""
    table = levels if levels is not None else SIMULATION_LEVELS
    cpu = cpu_power if cpu_power is not None else SIMULATED_CPU_POWER
    core_counts = sorted(set(table.acg_active_cores), reverse=True)
    dvfs_levels = sorted(set(table.cdvfs_levels))
    caps = []
    for cap in table.bw_caps_bytes_per_s:
        if cap not in caps:
            caps.append(cap)
    points = []
    for cores, dvfs, cap in itertools.product(core_counts, dvfs_levels, caps):
        if dvfs > len(cpu.operating_points):
            continue
        points.append(
            DesignPoint(
                active_cores=cores,
                dvfs_level=dvfs,
                bandwidth_cap_bytes_per_s=cap,
            )
        )
    return points


@dataclass(frozen=True)
class TraceEntry:
    """One (running set, design point) trace record."""

    app_names: tuple[str, ...]
    point: DesignPoint
    result: WindowResult

    def summary(self) -> dict:
        """A plain-dict export of the entry (for serialization)."""
        return {
            "apps": list(self.app_names),
            "active_cores": self.point.active_cores,
            "dvfs_level": self.point.dvfs_level,
            "bandwidth_cap_bytes_per_s": self.point.bandwidth_cap_bytes_per_s,
            "instructions_per_s": self.result.instructions_per_s,
            "read_bytes_per_s": self.result.read_bytes_per_s,
            "write_bytes_per_s": self.result.write_bytes_per_s,
            "l2_misses_per_s": self.result.l2_misses_per_s,
            "utilization": self.result.utilization,
            "latency_s": self.result.latency_s,
        }


class TraceLibrary:
    """The W x D trace product for one workload mix."""

    def __init__(
        self,
        mix: WorkloadMix,
        window_model: WindowModel | None = None,
        cpu_power: ProcessorPowerTable | None = None,
    ) -> None:
        self._mix = mix
        self._cpu = cpu_power if cpu_power is not None else SIMULATED_CPU_POWER
        self._window = window_model if window_model is not None else WindowModel()

    def generate(self, points: list[DesignPoint] | None = None) -> list[TraceEntry]:
        """Materialize trace entries for every running subset x point.

        Running subsets are the combinations of mix applications that can
        co-run under core gating (size 1..len(mix)); the stopped state
        (0 cores or DVFS-stopped) contributes a zero entry once.
        """
        if points is None:
            points = design_space(cpu_power=self._cpu)
        apps = self._mix.apps
        operating_points = self._cpu.operating_points
        entries: list[TraceEntry] = []
        for point in points:
            stopped = (
                point.active_cores == 0
                or point.dvfs_level >= len(operating_points)
                or (
                    point.bandwidth_cap_bytes_per_s is not None
                    and point.bandwidth_cap_bytes_per_s <= 0
                )
            )
            if stopped:
                result = self._window.evaluate([], 0.0, memory_on=False)
                entries.append(TraceEntry((), point, result))
                continue
            frequency = operating_points[point.dvfs_level].frequency_hz
            size = min(point.active_cores, len(apps))
            for subset in itertools.combinations(range(len(apps)), size):
                running = [apps[i] for i in subset]
                result = self._window.evaluate(
                    running,
                    frequency_hz=frequency,
                    bandwidth_cap_bytes_per_s=point.bandwidth_cap_bytes_per_s,
                    memory_on=True,
                )
                entries.append(
                    TraceEntry(tuple(a.name for a in running), point, result)
                )
        return entries

    def export(self, points: list[DesignPoint] | None = None) -> list[dict]:
        """Plain-dict export of the full library."""
        return [entry.summary() for entry in self.generate(points)]
