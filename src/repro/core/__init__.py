"""The paper's primary contribution: the two-level thermal simulator.

Level 1 (:mod:`repro.core.windowmodel`, :mod:`repro.core.tracegen`)
produces performance and memory-throughput figures for every combination
of co-running applications and DTM control state, in 10 ms windows —
the role the paper's extended M5 plays (§4.3.1, Fig. 4.1).

Level 2 (:mod:`repro.core.memspot`) is MEMSpot: it replays those windows
through the power model (Eq. 3.1/3.2), the thermal model (Eqs. 3.3–3.6)
and the DTM policy, closing the control loop.

:class:`repro.core.simulator.TwoLevelSimulator` wires both levels to the
batch-job scheduler and runs a workload to completion.
"""

from repro.core.windowmodel import MemoryEnvelope, WindowModel, WindowResult
from repro.core.memspot import MemSpot, MemSpotSample
from repro.core.simulator import SimulationConfig, TwoLevelSimulator
from repro.core.results import RunResult
from repro.core.tracegen import DesignPoint, TraceLibrary
from repro.core.calibration import calibrate_envelope

__all__ = [
    "MemoryEnvelope",
    "WindowModel",
    "WindowResult",
    "MemSpot",
    "MemSpotSample",
    "SimulationConfig",
    "TwoLevelSimulator",
    "RunResult",
    "DesignPoint",
    "TraceLibrary",
    "calibrate_envelope",
]
