"""The two-level thermal simulator (Fig. 4.1), hosted on the engine.

:class:`TwoLevelSimulator` wires together:

- the batch-job scheduler (§4.3.2): N copies of each mix application,
  refilled round-robin as jobs finish;
- the level-1 window model: performance and memory throughput of the
  currently-running applications under the current DTM control state;
- MEMSpot (level 2): power and temperatures from that throughput;
- the DTM policy: temperatures in, actuator state out, every DTM
  interval (10 ms by default, Table 4.1), with a 25 us control overhead
  charged per interval;
- energy accounting for the processor (Table 4.4) and the FBDIMM.

Since the engine refactor the run loop itself lives in
:class:`repro.engine.SteppingEngine`; this module supplies
:class:`Chapter4Strategy` — the per-window decision/evaluation/advance
and the :class:`~repro.core.results.RunResult` assembly.  One
:meth:`TwoLevelSimulator.run` call still simulates the full batch to
completion, but :meth:`TwoLevelSimulator.engine` exposes the stepping
surface underneath: checkpoint/resume, observers, and time-sliced
execution all come for free and are bit-identical to a straight run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.kernel import make_memspot
from repro.core.results import RunResult
from repro.core.windowmodel import MemoryEnvelope, WindowModel
from repro.cpu.power import simulated_chip_power_w
from repro.dtm.base import DTMPolicy, ThermalReading
from repro.engine.observers import Observer, ProgressObserver, TraceRecorder
from repro.engine.stepping import SteppingEngine, WindowOutcome
from repro.errors import ConfigurationError, SimulationError
from repro.params.emergency import EmergencyLevels, SIMULATION_LEVELS
from repro.params.power_params import ProcessorPowerTable, SIMULATED_CPU_POWER
from repro.params.thermal_params import (
    AmbientModelParams,
    CoolingConfig,
    AOHS_1_5,
    ISOLATED_AMBIENT,
)
from repro.workloads.batch import BatchScheduler
from repro.workloads.mixes import get_mix


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one two-level simulation run.

    Defaults reproduce the Chapter 4 platform: four cores, AOHS_1.5
    cooling, the isolated ambient model, Table 4.3 emergency levels and a
    10 ms DTM interval with 25 us overhead.
    """

    mix_name: str = "W1"
    #: Copies of each application in the batch (the paper uses 50; the
    #: benchmark harness scales this down — shapes are scale-invariant).
    copies: int = 2
    cores: int = 4
    cooling: CoolingConfig = AOHS_1_5
    ambient: AmbientModelParams = ISOLATED_AMBIENT
    levels: EmergencyLevels = SIMULATION_LEVELS
    dtm_interval_s: float = 0.010
    dtm_overhead_s: float = 25e-6
    rotation_interval_s: float = 0.100
    cpu_power: ProcessorPowerTable = SIMULATED_CPU_POWER
    envelope: MemoryEnvelope = field(default_factory=MemoryEnvelope)
    l2_capacity_bytes: float = 4 * 1024 * 1024
    physical_channels: int = 4
    dimms_per_channel: int = 4
    record_trace: bool = True
    trace_resolution_s: float = 1.0
    max_sim_s: float = 500_000.0
    #: Use the cache-aware batch refill policy (§6 future-work extension;
    #: see :mod:`repro.workloads.scheduling`) instead of round-robin.
    cache_aware_scheduling: bool = False
    #: Traffic shape: fraction of each ``duty_period_s`` the cores run.
    #: Below 1.0 the batch executes in bursts separated by idle windows
    #: (the scenario engine's "idle-burst" traffic shapes); 1.0 is the
    #: paper's continuous batch.
    duty_cycle: float = 1.0
    duty_period_s: float = 0.1
    #: Thermal kernel: "batched" (flat-array fast path) or "scalar"
    #: (per-node reference).  Both produce bit-identical results; the
    #: scalar path exists as the equivalence oracle.
    kernel: str = "batched"

    def __post_init__(self) -> None:
        if self.dtm_interval_s <= 0:
            raise ConfigurationError("DTM interval must be positive")
        if self.dtm_overhead_s < 0:
            raise ConfigurationError("DTM overhead must be non-negative")
        if self.dtm_overhead_s >= self.dtm_interval_s:
            raise ConfigurationError("DTM overhead must be below the interval")
        if self.copies < 1:
            raise ConfigurationError("need at least one batch copy")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ConfigurationError("duty cycle must be within (0, 1]")
        if self.duty_period_s <= 0:
            raise ConfigurationError("duty period must be positive")
        if self.duty_cycle < 1.0:
            # Gating is per whole DTM window, so the burst must span at
            # least one window or the batch can never make progress.
            if self.duty_windows_on() < 1 or self.duty_windows_per_period() < 2:
                raise ConfigurationError(
                    "duty cycle on-time must cover at least one DTM interval "
                    f"(duty_cycle={self.duty_cycle}, "
                    f"duty_period_s={self.duty_period_s}, "
                    f"dtm_interval_s={self.dtm_interval_s})"
                )
        if self.kernel not in ("batched", "scalar"):
            raise ConfigurationError(
                f"kernel must be 'batched' or 'scalar', got {self.kernel!r}"
            )

    def duty_windows_per_period(self) -> int:
        """DTM windows per duty period (the burst gate counts windows,
        not float time, so the duty cycle is exact and drift-free)."""
        return max(1, round(self.duty_period_s / self.dtm_interval_s))

    def duty_windows_on(self) -> int:
        """Running windows at the start of each duty period."""
        return round(self.duty_cycle * self.duty_windows_per_period())


class Chapter4Strategy:
    """One Chapter 4 (workload, policy) run as an engine strategy.

    Construction resets the policy and builds a fresh scheduler and
    MEMSpot — a strategy instance is one run.  The per-window sequence
    and every accumulation order match the pre-engine inlined loop, so
    engine-hosted results are byte-identical to the historical ones.
    """

    kind = "ch4"

    def __init__(
        self,
        config: SimulationConfig,
        policy: DTMPolicy,
        window_model: WindowModel,
    ) -> None:
        cfg = config
        self._config = cfg
        self._policy = policy
        self._window = window_model
        policy.reset()
        mix = get_mix(cfg.mix_name)
        if cfg.cache_aware_scheduling:
            from repro.workloads.scheduling import CacheAwareScheduler

            self._scheduler: BatchScheduler = CacheAwareScheduler(
                mix, cfg.copies, cfg.cores,
                cache_capacity_bytes=cfg.l2_capacity_bytes,
            )
        else:
            self._scheduler = BatchScheduler(mix, cfg.copies, cfg.cores)
        self.memspot = make_memspot(
            kernel=cfg.kernel,
            cooling=cfg.cooling,
            ambient=cfg.ambient,
            physical_channels=cfg.physical_channels,
            dimms_per_channel=cfg.dimms_per_channel,
        )
        self.dt_s = cfg.dtm_interval_s
        self._points = cfg.cpu_power.operating_points
        self._stopped_level = len(self._points)
        self._max_frequency = self._points[0].frequency_hz
        self._overhead_factor = 1.0 - cfg.dtm_overhead_s / self.dt_s
        self._top_level = cfg.levels.level_count - 1
        self._burst_gated = cfg.duty_cycle < 1.0
        self._duty_windows = cfg.duty_windows_per_period()
        self._duty_on = cfg.duty_windows_on()
        self._rotation = 0
        self._since_rotation_s = 0.0
        self._total_intervals = 0
        self._shutdown_intervals = 0
        # Steady-state cache for the gang's window_fast path.  Valid
        # only for the plain round-robin scheduler, whose slot
        # assignment changes exactly when finished_jobs does; subclass
        # refill rules may reassign without finishing a job.
        self._window_cache: dict | None = (
            {} if type(self._scheduler) is BatchScheduler else None
        )
        self._cache_epoch = -1
        self._cache_occupied: list[int] = []
        self.trace_recorder = TraceRecorder(
            resolution_s=cfg.trace_resolution_s, enabled=cfg.record_trace
        )

    def default_observers(self) -> tuple[Observer, ...]:
        """The observers every Chapter 4 engine carries."""
        return (self.trace_recorder, ProgressObserver())

    @property
    def thermally_insensitive(self) -> bool:
        """Whether the window path ignores the thermal sample.

        True only when the policy never reads its ThermalReading —
        everything else in :meth:`window` is driven by internal
        counters, so two runs differing only in thermal parameters
        then produce identical outcome streams (the leader-gang
        precondition; see :mod:`repro.engine.gang`).
        """
        return getattr(self._policy, "thermally_insensitive", False)

    # -- engine protocol ---------------------------------------------------

    def done(self, engine: SteppingEngine) -> bool:
        return self._scheduler.done

    def max_sim_horizon(self) -> float | None:
        return self._config.max_sim_s

    def timeout_error(self, engine: SteppingEngine) -> SimulationError:
        return SimulationError(
            f"batch did not finish within {self._config.max_sim_s} "
            f"simulated seconds ({self._scheduler.finished_jobs}/"
            f"{self._scheduler.total_jobs} jobs done)"
        )

    @property
    def dtm_policy(self) -> DTMPolicy:
        """The policy instance — the gang's batched-decide entry point."""
        return self._policy

    def window(self, engine: SteppingEngine) -> WindowOutcome:
        sample = engine.sample
        reading = ThermalReading(amb_c=sample.amb_c, dram_c=sample.dram_c)
        decision = self._policy.decide(reading, self.dt_s)
        return self.window_with_decision(engine, decision)

    def window_with_decision(
        self, engine: SteppingEngine, decision: Any
    ) -> WindowOutcome:
        """One window under an externally-computed policy decision.

        The post-decide half of :meth:`window`, split out so a lockstep
        gang can batch the policy step
        (:meth:`~repro.dtm.base.DTMPolicy.decide_all`) across cells and
        feed each cell its decision — every remaining operation and
        accumulation below is the exact :meth:`window` sequence, so a
        gang-driven window is bit-identical to a solo one.  ``decision``
        must be what ``self.dtm_policy`` produced for this window (with
        its state already advanced).
        """
        cfg = self._config
        dt = self.dt_s
        scheduler = self._scheduler
        self._total_intervals += 1
        if not decision.memory_on or decision.emergency_level >= self._top_level:
            self._shutdown_intervals += 1

        self._since_rotation_s += dt
        if self._since_rotation_s >= cfg.rotation_interval_s:
            self._since_rotation_s = 0.0
            self._rotation += 1

        if decision.dvfs_level >= self._stopped_level:
            frequency = 0.0
            voltage = 0.0
        else:
            frequency = self._points[decision.dvfs_level].frequency_hz
            voltage = self._points[decision.dvfs_level].voltage_v

        occupied = scheduler.occupied_slots()
        active_slots: list[int] = []
        burst_idle = (
            self._burst_gated
            and (self._total_intervals - 1) % self._duty_windows >= self._duty_on
        )
        if (
            not burst_idle
            and decision.memory_on
            and frequency > 0.0
            and decision.active_cores > 0
        ):
            if decision.active_cores >= len(occupied):
                active_slots = occupied
            else:
                offset = self._rotation % len(occupied)
                rotated = occupied[offset:] + occupied[:offset]
                active_slots = sorted(rotated[: decision.active_cores])

        heating_sum = 0.0
        read_bps = 0.0
        write_bps = 0.0
        if active_slots:
            slot_apps = scheduler.running_apps(active_slots)
            ordered_slots = list(slot_apps)
            result = self._window.evaluate(
                [slot_apps[slot] for slot in ordered_slots],
                frequency_hz=frequency,
                bandwidth_cap_bytes_per_s=decision.bandwidth_cap_bytes_per_s,
                memory_on=True,
            )
            progress = {}
            for slot, slot_result in zip(ordered_slots, result.slots):
                advanced = (
                    slot_result.instructions_per_s * dt * self._overhead_factor
                )
                progress[slot] = advanced
                engine.instructions += advanced
                heating_sum += (
                    voltage * slot_result.instructions_per_s / self._max_frequency
                )
            scheduler.advance(progress)
            read_bps = result.read_bytes_per_s
            write_bps = result.write_bytes_per_s
            engine.traffic_bytes += result.total_bytes_per_s * dt
            engine.l2_misses += result.l2_misses_per_s * dt

        cpu_power = simulated_chip_power_w(
            active_cores=len(active_slots),
            dvfs_level=min(decision.dvfs_level, self._stopped_level),
            memory_on=decision.memory_on,
            table=cfg.cpu_power,
        )
        return WindowOutcome(
            read_bytes_per_s=read_bps,
            write_bytes_per_s=write_bps,
            heating_sum=heating_sum,
            cpu_power_w=cpu_power,
        )

    def window_fast(self, engine: SteppingEngine, decision: Any) -> WindowOutcome:
        """:meth:`window_with_decision` through a steady-state cache.

        The lockstep gang's per-cell window driver.  Between job
        completions the scheduler's slot assignment is frozen, so the
        whole post-decide computation — slot selection, level-1
        evaluation, per-slot products, chip power — is a pure function
        of (decision, rotation offset, burst phase).  This path caches
        those products per assignment epoch and, on a hit, replays the
        cached per-slot additions in the original order, so every
        engine/scheduler mutation applies exactly the bits
        :meth:`window_with_decision` would have produced (the gang
        bitwise-equality suite pins the two paths together).  Falls
        back to the plain path when the scheduler is subclassed.
        """
        cache = self._window_cache
        if cache is None:
            return self.window_with_decision(engine, decision)
        cfg = self._config
        dt = self.dt_s
        scheduler = self._scheduler
        self._total_intervals += 1
        if not decision.memory_on or decision.emergency_level >= self._top_level:
            self._shutdown_intervals += 1
        self._since_rotation_s += dt
        if self._since_rotation_s >= cfg.rotation_interval_s:
            self._since_rotation_s = 0.0
            self._rotation += 1
        epoch = scheduler.finished_jobs
        if epoch != self._cache_epoch:
            cache.clear()
            self._cache_epoch = epoch
            self._cache_occupied = scheduler.occupied_slots()
        occupied = self._cache_occupied
        burst_idle = (
            self._burst_gated
            and (self._total_intervals - 1) % self._duty_windows >= self._duty_on
        )
        key = (
            decision,
            burst_idle,
            self._rotation % len(occupied) if occupied else 0,
        )
        entry = cache.get(key)
        if entry is None:
            entry = cache[key] = self._window_entry(
                decision, burst_idle, occupied
            )
        outcome, progress, slot_adds, traffic_delta, l2_delta = entry
        if progress is not None:
            for advanced in slot_adds:
                engine.instructions += advanced
            scheduler.advance(progress)
            engine.traffic_bytes += traffic_delta
            engine.l2_misses += l2_delta
        return outcome

    def _window_entry(
        self, decision: Any, burst_idle: bool, occupied: list[int]
    ) -> tuple:
        """One :meth:`window_fast` cache entry — the pure products of
        the post-decide body, mirroring :meth:`window_with_decision`
        operation for operation."""
        cfg = self._config
        dt = self.dt_s
        scheduler = self._scheduler
        if decision.dvfs_level >= self._stopped_level:
            frequency = 0.0
            voltage = 0.0
        else:
            frequency = self._points[decision.dvfs_level].frequency_hz
            voltage = self._points[decision.dvfs_level].voltage_v
        active_slots: list[int] = []
        if (
            not burst_idle
            and decision.memory_on
            and frequency > 0.0
            and decision.active_cores > 0
        ):
            if decision.active_cores >= len(occupied):
                active_slots = occupied
            else:
                offset = self._rotation % len(occupied)
                rotated = occupied[offset:] + occupied[:offset]
                active_slots = sorted(rotated[: decision.active_cores])
        heating_sum = 0.0
        read_bps = 0.0
        write_bps = 0.0
        progress: dict[int, float] | None = None
        slot_adds: tuple[float, ...] = ()
        traffic_delta = 0.0
        l2_delta = 0.0
        if active_slots:
            slot_apps = scheduler.running_apps(active_slots)
            ordered_slots = list(slot_apps)
            result = self._window.evaluate(
                [slot_apps[slot] for slot in ordered_slots],
                frequency_hz=frequency,
                bandwidth_cap_bytes_per_s=decision.bandwidth_cap_bytes_per_s,
                memory_on=True,
            )
            progress = {}
            adds = []
            for slot, slot_result in zip(ordered_slots, result.slots):
                advanced = (
                    slot_result.instructions_per_s * dt * self._overhead_factor
                )
                progress[slot] = advanced
                adds.append(advanced)
                heating_sum += (
                    voltage * slot_result.instructions_per_s / self._max_frequency
                )
            slot_adds = tuple(adds)
            read_bps = result.read_bytes_per_s
            write_bps = result.write_bytes_per_s
            traffic_delta = result.total_bytes_per_s * dt
            l2_delta = result.l2_misses_per_s * dt
        cpu_power = simulated_chip_power_w(
            active_cores=len(active_slots),
            dvfs_level=min(decision.dvfs_level, self._stopped_level),
            memory_on=decision.memory_on,
            table=cfg.cpu_power,
        )
        outcome = WindowOutcome(
            read_bytes_per_s=read_bps,
            write_bytes_per_s=write_bps,
            heating_sum=heating_sum,
            cpu_power_w=cpu_power,
        )
        return (outcome, progress, slot_adds, traffic_delta, l2_delta)

    def finalize(self, engine: SteppingEngine) -> RunResult:
        cfg = self._config
        now = engine.now_s
        return RunResult(
            workload=cfg.mix_name,
            policy=self._policy.name,
            cooling=cfg.cooling.name,
            runtime_s=now,
            traffic_bytes=engine.traffic_bytes,
            l2_misses=engine.l2_misses,
            instructions=engine.instructions,
            cpu_energy_j=engine.cpu_energy_j,
            memory_energy_j=engine.memory_energy_j,
            mean_ambient_c=engine.ambient_integral / now if now > 0 else 0.0,
            peak_amb_c=engine.peak_amb_c,
            peak_dram_c=engine.peak_dram_c,
            shutdown_fraction=(
                self._shutdown_intervals / max(1, self._total_intervals)
            ),
            finished_jobs=self._scheduler.finished_jobs,
            trace=self.trace_recorder.trace,
        )

    def progress(self, engine: SteppingEngine) -> dict[str, Any]:
        return {
            "finished_jobs": self._scheduler.finished_jobs,
            "total_jobs": self._scheduler.total_jobs,
        }

    def state_dict(self) -> dict[str, Any]:
        return {
            "scheduler": self._scheduler.state_dict(),
            "policy": self._policy.state_dict(),
            "rotation": self._rotation,
            "since_rotation_s": self._since_rotation_s,
            "total_intervals": self._total_intervals,
            "shutdown_intervals": self._shutdown_intervals,
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        # A restore moves the scheduler to an arbitrary point; the
        # steady-state window cache is stale even if finished_jobs
        # happens to match.
        if self._window_cache is not None:
            self._window_cache.clear()
        self._cache_epoch = -1
        self._scheduler.load_state_dict(state["scheduler"])
        self._policy.load_state_dict(state.get("policy", {}))
        self._rotation = int(state.get("rotation", 0))
        self._since_rotation_s = float(state.get("since_rotation_s", 0.0))
        self._total_intervals = int(state.get("total_intervals", 0))
        self._shutdown_intervals = int(state.get("shutdown_intervals", 0))


class TwoLevelSimulator:
    """Runs one (workload, policy) pair to batch completion."""

    def __init__(
        self,
        config: SimulationConfig,
        policy: DTMPolicy,
        window_model: WindowModel | None = None,
    ) -> None:
        self._config = config
        self._policy = policy
        self._mix = get_mix(config.mix_name)
        self._window = window_model or WindowModel(
            l2_capacity_bytes=config.l2_capacity_bytes,
            max_frequency_hz=config.cpu_power.operating_points[0].frequency_hz,
            envelope=config.envelope,
        )

    @property
    def config(self) -> SimulationConfig:
        """The run configuration."""
        return self._config

    @property
    def window_model(self) -> WindowModel:
        """The level-1 model (shared across runs for memoization)."""
        return self._window

    def engine(
        self, extra_observers: tuple[Observer, ...] = ()
    ) -> SteppingEngine:
        """A fresh stepping engine for one run of this configuration.

        The engine carries the strategy's default observers (trace
        recorder, progress emitter) plus ``extra_observers`` — pass a
        :class:`~repro.engine.CheckpointObserver` for resumable runs.
        A restored engine must be built with the same extras, in the
        same order, as the one that wrote the checkpoint.
        """
        strategy = Chapter4Strategy(self._config, self._policy, self._window)
        return SteppingEngine(
            strategy,
            observers=(*strategy.default_observers(), *extra_observers),
        )

    def run(self) -> RunResult:
        """Simulate the batch job to completion."""
        return self.engine().run_to_completion()
