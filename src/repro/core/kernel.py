"""Batched per-window thermal kernel (the MEMSpot hot path, flattened).

Profile of a batch run: the level-1 window model memoizes, so after the
first few hundred windows the simulators spend most of their time inside
:meth:`repro.core.memspot.MemSpot.step` — which, per 10 ms window, builds
a :class:`ChannelTraffic`, one :class:`DimmPower` per DIMM, one
:class:`DimmTemperatures` per DIMM, and dispatches two
:class:`~repro.thermal.rc.RCNode` method calls per DIMM, each re-checking
its cached gain.  None of that allocation changes between windows.

:class:`BatchedMemSpot` precomputes everything that is constant for a
fixed configuration and time step — per-position AMB idle powers, bypass
hop counts, the Table 3.2 resistances, and the three RC gains
``1 - exp(-dt/tau)`` — and keeps the chain's AMB/DRAM temperatures in
flat lists.  One :meth:`step` is then a single pass of scalar float
arithmetic: no dataclasses, no per-node dispatch, no repeated ``exp()``.

Numerical contract: every expression below reproduces the scalar path's
floating-point operations *in the same order*, so the batched and
per-node kernels are bit-identical, not merely close.  The golden-master
suite and the property tests in ``tests/test_property_invariants.py``
enforce this equivalence.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.core.memspot import MemSpot, MemSpotSample
from repro.errors import ConfigurationError, ThermalModelError
from repro.params.power_params import AMBPowerParams, DRAMPowerParams
from repro.params.thermal_params import AmbientModelParams, CoolingConfig
from repro.units import GB


def _import_numpy():
    """NumPy if importable, else None.

    NumPy is an optional accelerator, never a dependency: every caller
    of :class:`GridMemSpot` works (bit-identically) without it, just on
    the pure-python cell loop instead of stacked arrays.
    """
    try:
        import numpy
    except Exception:  # pragma: no cover - exercised via monkeypatch
        return None
    return numpy


def make_memspot(kernel: str = "batched", **kwargs) -> "MemSpot | BatchedMemSpot":
    """Build the level-2 thermal emulator for the requested kernel.

    ``batched`` is the flat-array fast path, ``scalar`` the per-node
    reference implementation; both yield bit-identical trajectories.
    """
    if kernel == "scalar":
        return MemSpot(**kwargs)
    if kernel == "batched":
        return BatchedMemSpot(**kwargs)
    raise ConfigurationError(
        f"kernel must be 'batched' or 'scalar', got {kernel!r}"
    )


class BatchedMemSpot:
    """Drop-in replacement for :class:`~repro.core.memspot.MemSpot`.

    Same constructor, same :meth:`sample`/:meth:`step`/:meth:`reset`
    interface, same numbers — the state just lives in flat per-position
    lists instead of one object tree per DIMM.
    """

    def __init__(
        self,
        cooling: CoolingConfig,
        ambient: AmbientModelParams,
        physical_channels: int = 4,
        dimms_per_channel: int = 4,
        amb_params: AMBPowerParams | None = None,
        dram_params: DRAMPowerParams | None = None,
        warm_start: bool = True,
    ) -> None:
        if physical_channels < 1 or dimms_per_channel < 1:
            raise ConfigurationError("need at least one channel and one DIMM")
        self._cooling = cooling
        self._channels = physical_channels
        self._dimms = dimms_per_channel
        self._warm_start = warm_start
        p = amb_params if amb_params is not None else AMBPowerParams()
        d = dram_params if dram_params is not None else DRAMPowerParams()

        # Power-model constants, flattened per chain position.
        n = dimms_per_channel
        self._idle_w = [p.idle_power_w(i == n - 1) for i in range(n)]
        #: Integer bypass hop counts (n - 1 - i); kept as ints so the
        #: per-window bypass expression ``total * hops / n`` matches the
        #: scalar path's operation order exactly.
        self._hops = [n - 1 - i for i in range(n)]
        self._beta = p.beta_w_per_gbps
        self._gamma = p.gamma_w_per_gbps
        self._dram_static = d.static_w
        self._alpha1 = d.alpha1_w_per_gbps
        self._alpha2 = d.alpha2_w_per_gbps

        # Thermal constants (Table 3.2 column + Eq. 3.6 scalars).
        r = cooling.resistances
        self._psi_amb = r.psi_amb
        self._psi_dram_amb = r.psi_dram_amb
        self._psi_dram = r.psi_dram
        self._psi_amb_dram = r.psi_amb_dram
        self._tau_amb = cooling.tau_amb_s
        self._tau_dram = cooling.tau_dram_s
        self._inlet = ambient.inlet_for(cooling.name)
        self._interaction = ambient.interaction
        self._tau_ambient = ambient.tau_ambient_s

        # RC gains are recomputed only when dt changes (it never does
        # inside one run: the DTM interval is fixed).
        self._gain_dt = -1.0
        self._gain_ambient = 0.0
        self._gain_amb = 0.0
        self._gain_dram = 0.0

        # Flat thermal state.
        self._t_ambient = self._inlet
        self._t_amb = [self._inlet] * n
        self._t_dram = [self._inlet] * n
        if warm_start:
            self._settle_idle()

    # -- configuration accessors -------------------------------------------

    @property
    def cooling(self) -> CoolingConfig:
        """Cooling configuration."""
        return self._cooling

    @property
    def dimms_per_channel(self) -> int:
        """Chain length — :class:`GridMemSpot` cells must share it."""
        return self._dimms

    @property
    def amb_temperatures_c(self) -> list[float]:
        """Per-chain-position AMB temperatures (for tests/ablations)."""
        return list(self._t_amb)

    @property
    def dram_temperatures_c(self) -> list[float]:
        """Per-chain-position DRAM temperatures (for tests/ablations)."""
        return list(self._t_dram)

    # -- lifecycle ---------------------------------------------------------

    def _settle_idle(self) -> None:
        """Start every DIMM at its zero-traffic stable temperature.

        At zero traffic the AMB power is exactly the idle power and the
        DRAM power exactly the static term, so the stable points reduce
        to the same Eq. 3.3/3.4 affine forms the scalar path evaluates.
        """
        inlet = self._inlet
        for i in range(self._dimms):
            amb_w = self._idle_w[i]
            dram_w = self._dram_static
            self._t_amb[i] = inlet + amb_w * self._psi_amb + dram_w * self._psi_dram_amb
            self._t_dram[i] = inlet + amb_w * self._psi_amb_dram + dram_w * self._psi_dram

    def reset(self) -> None:
        """Restart at the initial (idle-stable or inlet) temperatures."""
        self._t_ambient = self._inlet
        if self._warm_start:
            self._settle_idle()
        else:
            self._t_amb = [self._inlet] * self._dimms
            self._t_dram = [self._inlet] * self._dimms

    # -- checkpoint support ------------------------------------------------

    def thermal_state(self) -> dict:
        """Serializable thermal state (same shape as MemSpot's)."""
        return {
            "t_ambient": self._t_ambient,
            "t_amb": list(self._t_amb),
            "t_dram": list(self._t_dram),
        }

    def load_thermal_state(self, state: dict) -> None:
        """Restore temperatures captured by :meth:`thermal_state`.

        The RC gain cache is invalidated so the first step after a
        restore recomputes the same ``1 - exp(-dt/tau)`` gains a fresh
        kernel would — restored trajectories stay bit-identical.
        """
        t_amb = state["t_amb"]
        t_dram = state["t_dram"]
        if len(t_amb) != self._dimms or len(t_dram) != self._dimms:
            raise ConfigurationError(
                f"thermal state has {len(t_amb)} DIMM positions, "
                f"this chain has {self._dimms}"
            )
        self._t_ambient = float(state["t_ambient"])
        self._t_amb = [float(t) for t in t_amb]
        self._t_dram = [float(t) for t in t_dram]
        self._gain_dt = -1.0

    # -- sampling ----------------------------------------------------------

    def _ambient_c(self) -> float:
        if self._interaction == 0.0:
            return self._inlet
        return self._t_ambient

    def idle_power_w(self) -> float:
        """Memory power with zero throughput (static + AMB idle)."""
        total = 0.0
        for i in range(self._dimms):
            total += self._idle_w[i] + self._dram_static
        return self._channels * total

    def sample(self) -> MemSpotSample:
        """Current temperatures with zero-power bookkeeping (no step)."""
        return MemSpotSample(
            amb_c=max(self._t_amb),
            dram_c=max(self._t_dram),
            ambient_c=self._ambient_c(),
            memory_power_w=self.idle_power_w(),
        )

    # -- the hot path ------------------------------------------------------

    def _set_dt(self, dt_s: float) -> None:
        if dt_s < 0:
            raise ThermalModelError(f"time step must be non-negative, got {dt_s}")
        self._gain_dt = dt_s
        self._gain_ambient = 1.0 - math.exp(-dt_s / self._tau_ambient)
        self._gain_amb = 1.0 - math.exp(-dt_s / self._tau_amb)
        self._gain_dram = 1.0 - math.exp(-dt_s / self._tau_dram)

    def step(
        self,
        read_bytes_per_s: float,
        write_bytes_per_s: float,
        cpu_heating_sum: float,
        dt_s: float,
    ) -> MemSpotSample:
        """Advance the thermal state by one window (see MemSpot.step)."""
        if read_bytes_per_s < 0 or write_bytes_per_s < 0:
            raise ConfigurationError("channel throughput must be non-negative")
        if dt_s != self._gain_dt:
            self._set_dt(dt_s)

        # Eq. 3.6 ambient node.
        stable_ambient = self._inlet + self._interaction * cpu_heating_sum
        self._t_ambient += (stable_ambient - self._t_ambient) * self._gain_ambient
        ambient_c = self._inlet if self._interaction == 0.0 else self._t_ambient

        # Per-channel traffic split (all channels interleave identically).
        channels = self._channels
        read_ch = read_bytes_per_s / channels
        write_ch = write_bytes_per_s / channels
        total = read_ch + write_ch
        n = self._dimms
        local = total / n
        local_gbps = local / GB
        dram_w = (
            self._dram_static
            + self._alpha1 * ((read_ch / n) / GB)
            + self._alpha2 * ((write_ch / n) / GB)
        )

        # One flat pass over the chain: Eq. 3.2 power, Eq. 3.3/3.4 stable
        # points, Eq. 3.5 RC update.
        beta = self._beta
        gamma = self._gamma
        psi_amb = self._psi_amb
        psi_dram_amb = self._psi_dram_amb
        psi_dram = self._psi_dram
        psi_amb_dram = self._psi_amb_dram
        gain_amb = self._gain_amb
        gain_dram = self._gain_dram
        t_amb = self._t_amb
        t_dram = self._t_dram
        idle_w = self._idle_w
        hops = self._hops
        amb_c = -273.15
        dram_c = -273.15
        total_power = 0.0
        for i in range(n):
            amb_w = idle_w[i] + beta * ((total * hops[i] / n) / GB) + gamma * local_gbps
            stable_amb = ambient_c + amb_w * psi_amb + dram_w * psi_dram_amb
            stable_dram = ambient_c + amb_w * psi_amb_dram + dram_w * psi_dram
            ta = t_amb[i] + (stable_amb - t_amb[i]) * gain_amb
            td = t_dram[i] + (stable_dram - t_dram[i]) * gain_dram
            t_amb[i] = ta
            t_dram[i] = td
            amb_c = max(amb_c, ta)
            dram_c = max(dram_c, td)
            total_power += amb_w + dram_w
        return MemSpotSample(
            amb_c=amb_c,
            dram_c=dram_c,
            ambient_c=ambient_c,
            memory_power_w=total_power * channels,
        )


class GridMemSpot:
    """N compatible cells' thermal chains stepped as one flat grid.

    A *grid* stacks the RC state of many :class:`BatchedMemSpot` cells
    along an extra cell axis: every cell shares the chain topology (the
    DIMMs-per-channel count fixes the number of RC nodes) while all
    per-cell parameters — cooling resistances, inlet/interaction,
    channel count, power coefficients — broadcast per cell.  One
    :meth:`step_all` advances every cell by one window, which is what
    lets a gang (:mod:`repro.engine.gang`) pay the per-window kernel
    dispatch once for a whole campaign batch.

    Two backends, selected by ``backend``:

    - ``"python"`` — delegates to each cell's own
      :meth:`BatchedMemSpot.step`, so equivalence with per-cell
      stepping holds by construction;
    - ``"numpy"`` — keeps the state in ``(cells, dimms)`` float64
      arrays and replays the scalar kernel's expressions elementwise.
      Only IEEE-correctly-rounded elementwise operations are used (the
      RC gains still come from per-cell :func:`math.exp`, the chain
      power sum still accumulates position by position), so the array
      path is **bit-identical** to the scalar one — the property suite
      enforces this, and the scalar kernels remain the golden
      reference.
    - ``"auto"`` (default) — ``numpy`` when importable, else
      ``python``.  NumPy stays an optional extra, never a dependency.

    The cell kernels are the source of truth between grids: the NumPy
    backend copies their state in at construction and writes it back on
    :meth:`sync` (cheap, and required before reading a cell's
    ``thermal_state()`` — e.g. for an engine checkpoint).  The python
    backend mutates the cells directly, so ``sync`` is a no-op.
    """

    def __init__(
        self, cells: Sequence[BatchedMemSpot], backend: str = "auto"
    ) -> None:
        cells = list(cells)
        if not cells:
            raise ConfigurationError("a grid needs at least one cell")
        for cell in cells:
            if not isinstance(cell, BatchedMemSpot):
                raise ConfigurationError(
                    f"grid cells must be BatchedMemSpot kernels, "
                    f"got {type(cell).__name__}"
                )
        dimms = cells[0].dimms_per_channel
        if any(cell.dimms_per_channel != dimms for cell in cells):
            raise ConfigurationError(
                "grid cells must share the RC topology "
                "(equal dimms_per_channel)"
            )
        if backend == "auto":
            self._np = _import_numpy()
        elif backend == "numpy":
            self._np = _import_numpy()
            if self._np is None:
                raise ConfigurationError(
                    "backend='numpy' requires NumPy (not importable here); "
                    "use backend='auto' or 'python'"
                )
        elif backend == "python":
            self._np = None
        else:
            raise ConfigurationError(
                f"backend must be 'auto', 'numpy' or 'python', got {backend!r}"
            )
        self._cells = cells
        self._dimms = dimms
        if self._np is not None:
            self._pull()

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def cells(self) -> tuple[BatchedMemSpot, ...]:
        """The per-cell kernels, in grid order."""
        return tuple(self._cells)

    @property
    def backend(self) -> str:
        """The resolved backend: ``"numpy"`` or ``"python"``."""
        return "python" if self._np is None else "numpy"

    # -- numpy state management --------------------------------------------

    def _pull(self) -> None:
        """Load every cell's state and constants into stacked arrays."""
        np = self._np
        cells = self._cells

        def rows(name: str):
            return np.asarray([getattr(c, name) for c in cells], dtype=np.float64)

        self._idle_w = rows("_idle_w")                    # (N, n)
        self._t_amb = rows("_t_amb")
        self._t_dram = rows("_t_dram")
        self._t_ambient = rows("_t_ambient")              # (N,)
        self._beta = rows("_beta")
        self._gamma = rows("_gamma")
        self._dram_static = rows("_dram_static")
        self._alpha1 = rows("_alpha1")
        self._alpha2 = rows("_alpha2")
        self._psi_amb = rows("_psi_amb")
        self._psi_dram_amb = rows("_psi_dram_amb")
        self._psi_dram = rows("_psi_dram")
        self._psi_amb_dram = rows("_psi_amb_dram")
        self._inlet = rows("_inlet")
        self._interaction = rows("_interaction")
        self._channels = rows("_channels")
        #: Cells whose ambient model is isolated report the fixed inlet
        #: as their ambient reading (the scalar kernel's ``== 0.0``
        #: branch, as a per-cell select).
        self._isolated = self._interaction == 0.0
        #: Bypass hop counts are topology-shared small ints (see
        #: BatchedMemSpot._hops), stored as a float64 row so the 2-D
        #: bypass expression broadcasts them per position.  The int ->
        #: float64 conversion is exact, so ``total * hops / n`` performs
        #: the scalar path's operations bit for bit.
        self._hops = np.asarray(
            [float(self._dimms - 1 - i) for i in range(self._dimms)]
        )
        #: Per-cell RC time constants, kept as python lists: the gains
        #: ``1 - exp(-dt/tau)`` must come from ``math.exp`` per cell
        #: (np.exp is not guaranteed bit-identical to libm).
        self._taus_ambient = [c._tau_ambient for c in cells]
        self._taus_amb = [c._tau_amb for c in cells]
        self._taus_dram = [c._tau_dram for c in cells]
        self._gain_dt = -1.0

    def sync(self) -> None:
        """Write the stacked state back into the per-cell kernels.

        Call before reading any cell's ``thermal_state()``/``sample()``
        (checkpoints, finalization) and before handing cells to another
        grid.  The python backend steps the cells directly, so there is
        nothing to write back.
        """
        if self._np is None:
            return
        t_amb = self._t_amb.tolist()
        t_dram = self._t_dram.tolist()
        t_ambient = self._t_ambient.tolist()
        for cell, ta, td, tam in zip(self._cells, t_amb, t_dram, t_ambient):
            cell._t_amb = ta
            cell._t_dram = td
            cell._t_ambient = tam
            # Mirror load_thermal_state: force a gain recompute on the
            # cell's next solo step (recomputed gains are identical).
            cell._gain_dt = -1.0

    def _set_dt(self, dt_s: float) -> None:
        if dt_s < 0:
            raise ThermalModelError(
                f"time step must be non-negative, got {dt_s}"
            )
        np = self._np
        self._gain_dt = dt_s
        self._gain_ambient = np.asarray(
            [1.0 - math.exp(-dt_s / tau) for tau in self._taus_ambient]
        )
        self._gain_amb = np.asarray(
            [1.0 - math.exp(-dt_s / tau) for tau in self._taus_amb]
        )
        self._gain_dram = np.asarray(
            [1.0 - math.exp(-dt_s / tau) for tau in self._taus_dram]
        )

    # -- the hot path ------------------------------------------------------

    def step_all(
        self,
        read_bytes_per_s: Sequence[float],
        write_bytes_per_s: Sequence[float],
        cpu_heating_sums: Sequence[float],
        dt_s: float,
    ) -> list[MemSpotSample]:
        """Advance every cell by one window; per-cell samples in order.

        The three traffic sequences give each cell its own window input
        (a lock-step gang passes per-cell outcomes; a leader-broadcast
        gang passes the same value N times).  ``dt_s`` is shared — the
        gang's lock-step cadence is what makes cells compatible.
        """
        count = len(self._cells)
        if (
            len(read_bytes_per_s) != count
            or len(write_bytes_per_s) != count
            or len(cpu_heating_sums) != count
        ):
            raise ConfigurationError(
                f"step_all needs one input per cell ({count}), got "
                f"{len(read_bytes_per_s)}/{len(write_bytes_per_s)}/"
                f"{len(cpu_heating_sums)}"
            )
        if self._np is None:
            return [
                cell.step(read_bps, write_bps, heating, dt_s)
                for cell, read_bps, write_bps, heating in zip(
                    self._cells,
                    read_bytes_per_s,
                    write_bytes_per_s,
                    cpu_heating_sums,
                )
            ]
        return self._step_all_numpy(
            read_bytes_per_s, write_bytes_per_s, cpu_heating_sums, dt_s
        )

    def step_all_uniform(
        self,
        read_bytes_per_s: float,
        write_bytes_per_s: float,
        cpu_heating_sum: float,
        dt_s: float,
    ) -> list[MemSpotSample]:
        """Advance every cell with one *shared* window input.

        The leader-broadcast gang path: all cells receive the same
        traffic and CPU heating, so the per-window inputs are three
        floats instead of three N-element lists.  Bit-identical to
        :meth:`step_all` with the values repeated per cell — NumPy
        broadcasts the python float into every lane, and
        ``float64 op scalar`` is the same IEEE-correctly-rounded
        elementwise operation as ``float64 op float64``.
        """
        if self._np is None:
            return [
                cell.step(
                    read_bytes_per_s, write_bytes_per_s, cpu_heating_sum, dt_s
                )
                for cell in self._cells
            ]
        if read_bytes_per_s < 0 or write_bytes_per_s < 0:
            raise ConfigurationError("channel throughput must be non-negative")
        return self._step_kernel(
            read_bytes_per_s, write_bytes_per_s, cpu_heating_sum, dt_s
        )

    def step_all_raw(
        self,
        read_bytes_per_s: Sequence[float],
        write_bytes_per_s: Sequence[float],
        cpu_heating_sums: Sequence[float],
        dt_s: float,
    ) -> tuple[Any, Any, Any, Any]:
        """:meth:`step_all` without the sample objects.

        Returns ``(amb_peak_c, dram_peak_c, ambient_c, memory_power_w)``
        as four (N,) float64 arrays (NumPy backend) or lists (python
        backend) — the exact values the per-cell
        :class:`~repro.core.memspot.MemSpotSample` fields would carry,
        with no per-cell object construction.  The batched gang apply
        path consumes these directly for its flat-array accounting.
        """
        count = len(self._cells)
        if (
            len(read_bytes_per_s) != count
            or len(write_bytes_per_s) != count
            or len(cpu_heating_sums) != count
        ):
            raise ConfigurationError(
                f"step_all_raw needs one input per cell ({count}), got "
                f"{len(read_bytes_per_s)}/{len(write_bytes_per_s)}/"
                f"{len(cpu_heating_sums)}"
            )
        if self._np is None:
            samples = [
                cell.step(read_bps, write_bps, heating, dt_s)
                for cell, read_bps, write_bps, heating in zip(
                    self._cells,
                    read_bytes_per_s,
                    write_bytes_per_s,
                    cpu_heating_sums,
                )
            ]
            return (
                [s.amb_c for s in samples],
                [s.dram_c for s in samples],
                [s.ambient_c for s in samples],
                [s.memory_power_w for s in samples],
            )
        np = self._np
        if min(read_bytes_per_s) < 0 or min(write_bytes_per_s) < 0:
            raise ConfigurationError("channel throughput must be non-negative")
        return self._step_kernel_raw(
            np.asarray(read_bytes_per_s, dtype=np.float64),
            np.asarray(write_bytes_per_s, dtype=np.float64),
            np.asarray(cpu_heating_sums, dtype=np.float64),
            dt_s,
        )

    def _step_all_numpy(
        self, reads, writes, heats, dt_s: float
    ) -> list[MemSpotSample]:
        np = self._np
        if min(reads) < 0 or min(writes) < 0:
            raise ConfigurationError("channel throughput must be non-negative")
        return self._step_kernel(
            np.asarray(reads, dtype=np.float64),
            np.asarray(writes, dtype=np.float64),
            np.asarray(heats, dtype=np.float64),
            dt_s,
        )

    def _step_kernel(self, reads, writes, heats, dt_s: float):
        """`_step_kernel_raw` wrapped into per-cell samples."""
        amb_peak, dram_peak, ambient_c, power = self._step_kernel_raw(
            reads, writes, heats, dt_s
        )
        return [
            MemSpotSample(
                amb_c=amb, dram_c=dram, ambient_c=ambient, memory_power_w=watts
            )
            for amb, dram, ambient, watts in zip(
                amb_peak.tolist(),
                dram_peak.tolist(),
                ambient_c.tolist(),
                power.tolist(),
            )
        ]

    def _step_kernel_raw(self, reads, writes, heats, dt_s: float):
        """The numpy chain pass; inputs are (N,) arrays or scalars."""
        np = self._np
        if dt_s != self._gain_dt:
            self._set_dt(dt_s)

        # Eq. 3.6 ambient node, one lane per cell.
        stable_ambient = self._inlet + self._interaction * heats
        self._t_ambient = self._t_ambient + (
            stable_ambient - self._t_ambient
        ) * self._gain_ambient
        ambient_c = np.where(self._isolated, self._inlet, self._t_ambient)

        # Per-channel traffic split (per-cell channel counts broadcast).
        read_ch = reads / self._channels
        write_ch = writes / self._channels
        total = read_ch + write_ch
        n = self._dimms
        local = total / n
        local_gbps = local / GB
        dram_w = (
            self._dram_static
            + self._alpha1 * ((read_ch / n) / GB)
            + self._alpha2 * ((write_ch / n) / GB)
        )

        # The whole chain pass on the (cells, dimms) plane at once.
        # Each scalar per-position expression becomes one elementwise
        # op over the full plane — the identical IEEE operations in the
        # identical order, issued once per window instead of once per
        # position (the per-position issue overhead used to dominate
        # the grid step at gang widths).  Only max (exact, no rounding)
        # reduces across positions; the chain power sum stays a
        # sequential column accumulation because np.sum's pairwise
        # reduction would round differently from the scalar kernel's
        # position-by-position additions.
        ambient_col = ambient_c[:, None]
        amb_w = (
            self._idle_w
            + self._beta[:, None] * ((total[:, None] * self._hops / n) / GB)
            + self._gamma[:, None] * local_gbps[:, None]
        )
        dram_col = dram_w[:, None]
        stable_amb = (
            ambient_col
            + amb_w * self._psi_amb[:, None]
            + dram_col * self._psi_dram_amb[:, None]
        )
        stable_dram = (
            ambient_col
            + amb_w * self._psi_amb_dram[:, None]
            + dram_col * self._psi_dram[:, None]
        )
        self._t_amb = self._t_amb + (
            stable_amb - self._t_amb
        ) * self._gain_amb[:, None]
        self._t_dram = self._t_dram + (
            stable_dram - self._t_dram
        ) * self._gain_dram[:, None]
        amb_peak = np.max(self._t_amb, axis=1)
        dram_peak = np.max(self._t_dram, axis=1)
        chain_w = amb_w + dram_col
        total_power = np.zeros(len(self._cells))
        for i in range(n):
            total_power = total_power + chain_w[:, i]
        power = total_power * self._channels
        return amb_peak, dram_peak, ambient_c, power
