"""Batched per-window thermal kernel (the MEMSpot hot path, flattened).

Profile of a batch run: the level-1 window model memoizes, so after the
first few hundred windows the simulators spend most of their time inside
:meth:`repro.core.memspot.MemSpot.step` — which, per 10 ms window, builds
a :class:`ChannelTraffic`, one :class:`DimmPower` per DIMM, one
:class:`DimmTemperatures` per DIMM, and dispatches two
:class:`~repro.thermal.rc.RCNode` method calls per DIMM, each re-checking
its cached gain.  None of that allocation changes between windows.

:class:`BatchedMemSpot` precomputes everything that is constant for a
fixed configuration and time step — per-position AMB idle powers, bypass
hop counts, the Table 3.2 resistances, and the three RC gains
``1 - exp(-dt/tau)`` — and keeps the chain's AMB/DRAM temperatures in
flat lists.  One :meth:`step` is then a single pass of scalar float
arithmetic: no dataclasses, no per-node dispatch, no repeated ``exp()``.

Numerical contract: every expression below reproduces the scalar path's
floating-point operations *in the same order*, so the batched and
per-node kernels are bit-identical, not merely close.  The golden-master
suite and the property tests in ``tests/test_property_invariants.py``
enforce this equivalence.
"""

from __future__ import annotations

import math

from repro.core.memspot import MemSpot, MemSpotSample
from repro.errors import ConfigurationError, ThermalModelError
from repro.params.power_params import AMBPowerParams, DRAMPowerParams
from repro.params.thermal_params import AmbientModelParams, CoolingConfig
from repro.units import GB


def make_memspot(kernel: str = "batched", **kwargs) -> "MemSpot | BatchedMemSpot":
    """Build the level-2 thermal emulator for the requested kernel.

    ``batched`` is the flat-array fast path, ``scalar`` the per-node
    reference implementation; both yield bit-identical trajectories.
    """
    if kernel == "scalar":
        return MemSpot(**kwargs)
    if kernel == "batched":
        return BatchedMemSpot(**kwargs)
    raise ConfigurationError(
        f"kernel must be 'batched' or 'scalar', got {kernel!r}"
    )


class BatchedMemSpot:
    """Drop-in replacement for :class:`~repro.core.memspot.MemSpot`.

    Same constructor, same :meth:`sample`/:meth:`step`/:meth:`reset`
    interface, same numbers — the state just lives in flat per-position
    lists instead of one object tree per DIMM.
    """

    def __init__(
        self,
        cooling: CoolingConfig,
        ambient: AmbientModelParams,
        physical_channels: int = 4,
        dimms_per_channel: int = 4,
        amb_params: AMBPowerParams | None = None,
        dram_params: DRAMPowerParams | None = None,
        warm_start: bool = True,
    ) -> None:
        if physical_channels < 1 or dimms_per_channel < 1:
            raise ConfigurationError("need at least one channel and one DIMM")
        self._cooling = cooling
        self._channels = physical_channels
        self._dimms = dimms_per_channel
        self._warm_start = warm_start
        p = amb_params if amb_params is not None else AMBPowerParams()
        d = dram_params if dram_params is not None else DRAMPowerParams()

        # Power-model constants, flattened per chain position.
        n = dimms_per_channel
        self._idle_w = [p.idle_power_w(i == n - 1) for i in range(n)]
        #: Integer bypass hop counts (n - 1 - i); kept as ints so the
        #: per-window bypass expression ``total * hops / n`` matches the
        #: scalar path's operation order exactly.
        self._hops = [n - 1 - i for i in range(n)]
        self._beta = p.beta_w_per_gbps
        self._gamma = p.gamma_w_per_gbps
        self._dram_static = d.static_w
        self._alpha1 = d.alpha1_w_per_gbps
        self._alpha2 = d.alpha2_w_per_gbps

        # Thermal constants (Table 3.2 column + Eq. 3.6 scalars).
        r = cooling.resistances
        self._psi_amb = r.psi_amb
        self._psi_dram_amb = r.psi_dram_amb
        self._psi_dram = r.psi_dram
        self._psi_amb_dram = r.psi_amb_dram
        self._tau_amb = cooling.tau_amb_s
        self._tau_dram = cooling.tau_dram_s
        self._inlet = ambient.inlet_for(cooling.name)
        self._interaction = ambient.interaction
        self._tau_ambient = ambient.tau_ambient_s

        # RC gains are recomputed only when dt changes (it never does
        # inside one run: the DTM interval is fixed).
        self._gain_dt = -1.0
        self._gain_ambient = 0.0
        self._gain_amb = 0.0
        self._gain_dram = 0.0

        # Flat thermal state.
        self._t_ambient = self._inlet
        self._t_amb = [self._inlet] * n
        self._t_dram = [self._inlet] * n
        if warm_start:
            self._settle_idle()

    # -- configuration accessors -------------------------------------------

    @property
    def cooling(self) -> CoolingConfig:
        """Cooling configuration."""
        return self._cooling

    @property
    def amb_temperatures_c(self) -> list[float]:
        """Per-chain-position AMB temperatures (for tests/ablations)."""
        return list(self._t_amb)

    @property
    def dram_temperatures_c(self) -> list[float]:
        """Per-chain-position DRAM temperatures (for tests/ablations)."""
        return list(self._t_dram)

    # -- lifecycle ---------------------------------------------------------

    def _settle_idle(self) -> None:
        """Start every DIMM at its zero-traffic stable temperature.

        At zero traffic the AMB power is exactly the idle power and the
        DRAM power exactly the static term, so the stable points reduce
        to the same Eq. 3.3/3.4 affine forms the scalar path evaluates.
        """
        inlet = self._inlet
        for i in range(self._dimms):
            amb_w = self._idle_w[i]
            dram_w = self._dram_static
            self._t_amb[i] = inlet + amb_w * self._psi_amb + dram_w * self._psi_dram_amb
            self._t_dram[i] = inlet + amb_w * self._psi_amb_dram + dram_w * self._psi_dram

    def reset(self) -> None:
        """Restart at the initial (idle-stable or inlet) temperatures."""
        self._t_ambient = self._inlet
        if self._warm_start:
            self._settle_idle()
        else:
            self._t_amb = [self._inlet] * self._dimms
            self._t_dram = [self._inlet] * self._dimms

    # -- checkpoint support ------------------------------------------------

    def thermal_state(self) -> dict:
        """Serializable thermal state (same shape as MemSpot's)."""
        return {
            "t_ambient": self._t_ambient,
            "t_amb": list(self._t_amb),
            "t_dram": list(self._t_dram),
        }

    def load_thermal_state(self, state: dict) -> None:
        """Restore temperatures captured by :meth:`thermal_state`.

        The RC gain cache is invalidated so the first step after a
        restore recomputes the same ``1 - exp(-dt/tau)`` gains a fresh
        kernel would — restored trajectories stay bit-identical.
        """
        t_amb = state["t_amb"]
        t_dram = state["t_dram"]
        if len(t_amb) != self._dimms or len(t_dram) != self._dimms:
            raise ConfigurationError(
                f"thermal state has {len(t_amb)} DIMM positions, "
                f"this chain has {self._dimms}"
            )
        self._t_ambient = float(state["t_ambient"])
        self._t_amb = [float(t) for t in t_amb]
        self._t_dram = [float(t) for t in t_dram]
        self._gain_dt = -1.0

    # -- sampling ----------------------------------------------------------

    def _ambient_c(self) -> float:
        if self._interaction == 0.0:
            return self._inlet
        return self._t_ambient

    def idle_power_w(self) -> float:
        """Memory power with zero throughput (static + AMB idle)."""
        total = 0.0
        for i in range(self._dimms):
            total += self._idle_w[i] + self._dram_static
        return self._channels * total

    def sample(self) -> MemSpotSample:
        """Current temperatures with zero-power bookkeeping (no step)."""
        return MemSpotSample(
            amb_c=max(self._t_amb),
            dram_c=max(self._t_dram),
            ambient_c=self._ambient_c(),
            memory_power_w=self.idle_power_w(),
        )

    # -- the hot path ------------------------------------------------------

    def _set_dt(self, dt_s: float) -> None:
        if dt_s < 0:
            raise ThermalModelError(f"time step must be non-negative, got {dt_s}")
        self._gain_dt = dt_s
        self._gain_ambient = 1.0 - math.exp(-dt_s / self._tau_ambient)
        self._gain_amb = 1.0 - math.exp(-dt_s / self._tau_amb)
        self._gain_dram = 1.0 - math.exp(-dt_s / self._tau_dram)

    def step(
        self,
        read_bytes_per_s: float,
        write_bytes_per_s: float,
        cpu_heating_sum: float,
        dt_s: float,
    ) -> MemSpotSample:
        """Advance the thermal state by one window (see MemSpot.step)."""
        if read_bytes_per_s < 0 or write_bytes_per_s < 0:
            raise ConfigurationError("channel throughput must be non-negative")
        if dt_s != self._gain_dt:
            self._set_dt(dt_s)

        # Eq. 3.6 ambient node.
        stable_ambient = self._inlet + self._interaction * cpu_heating_sum
        self._t_ambient += (stable_ambient - self._t_ambient) * self._gain_ambient
        ambient_c = self._inlet if self._interaction == 0.0 else self._t_ambient

        # Per-channel traffic split (all channels interleave identically).
        channels = self._channels
        read_ch = read_bytes_per_s / channels
        write_ch = write_bytes_per_s / channels
        total = read_ch + write_ch
        n = self._dimms
        local = total / n
        local_gbps = local / GB
        dram_w = (
            self._dram_static
            + self._alpha1 * ((read_ch / n) / GB)
            + self._alpha2 * ((write_ch / n) / GB)
        )

        # One flat pass over the chain: Eq. 3.2 power, Eq. 3.3/3.4 stable
        # points, Eq. 3.5 RC update.
        beta = self._beta
        gamma = self._gamma
        psi_amb = self._psi_amb
        psi_dram_amb = self._psi_dram_amb
        psi_dram = self._psi_dram
        psi_amb_dram = self._psi_amb_dram
        gain_amb = self._gain_amb
        gain_dram = self._gain_dram
        t_amb = self._t_amb
        t_dram = self._t_dram
        idle_w = self._idle_w
        hops = self._hops
        amb_c = -273.15
        dram_c = -273.15
        total_power = 0.0
        for i in range(n):
            amb_w = idle_w[i] + beta * ((total * hops[i] / n) / GB) + gamma * local_gbps
            stable_amb = ambient_c + amb_w * psi_amb + dram_w * psi_dram_amb
            stable_dram = ambient_c + amb_w * psi_amb_dram + dram_w * psi_dram
            ta = t_amb[i] + (stable_amb - t_amb[i]) * gain_amb
            td = t_dram[i] + (stable_dram - t_dram[i]) * gain_dram
            t_amb[i] = ta
            t_dram[i] = td
            amb_c = max(amb_c, ta)
            dram_c = max(dram_c, td)
            total_power += amb_w + dram_w
        return MemSpotSample(
            amb_c=amb_c,
            dram_c=dram_c,
            ambient_c=ambient_c,
            memory_power_w=total_power * channels,
        )
