"""Level-1 analytic performance model, evaluated per 10 ms window.

The paper's first-level simulator runs cycle-accurate M5 once per
(workload, design point) to produce windowed performance / throughput
traces (§4.3.1).  We replace the cycle-accurate run with an analytic
multicore model whose outputs live in exactly the same vocabulary —
per-window instructions retired and read/write memory throughput — built
from first-order architecture relations:

1. **Shared cache contention** — each co-runner's effective L2 share and
   miss ratio come from the insertion-rate fixed point of
   :class:`repro.cache.sharing.SharedCacheModel`.
2. **Memory latency under load** — an M/D/1-flavored queueing curve over
   the channel utilization, calibrated against the cycle-level FBDIMM
   simulator (:mod:`repro.core.calibration`).
3. **Core IPC** — ``1 / (CPI_base + MPI * L_cycles / MLP)``: misses
   overlap by the application's memory-level parallelism.
4. **Speculative traffic** — a frequency-proportional surcharge, which is
   why DVFS trims total traffic by a few percent (§4.4.2).

The fixed point couples 1–3 (shares depend on access rates, rates on
IPC, IPC on latency, latency on total demand) and converges in a handful
of damped iterations.  Results are memoized: within a batch run the
(running apps, control state) pair recurs for thousands of windows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.sharing import CacheClient, SharedCacheModel
from repro.errors import ConfigurationError
from repro.units import CACHE_LINE_BYTES
from repro.workloads.profiles import AppProfile


@dataclass(frozen=True)
class MemoryEnvelope:
    """The memory system's latency/bandwidth envelope seen by the cores.

    Defaults match the Table 4.1 platform (4 physical channels of
    FBDIMM-DDR2-667) as calibrated by the cycle-level simulator: ~65 ns
    unloaded latency, and a combined read+write peak of 25.6 GB/s —
    northbound-limited reads (4 x 5.33 GB/s, matching §2.2's "21 GB/s"
    figure) plus extra southbound write capacity (§3.2: "the overall
    bandwidth of a FBDIMM channel is higher than that of a DDR2 channel
    because the write bandwidth is extra"; Table 4.4 lists 25.6 GB/s as
    DTM-BW's unthrottled operating point).
    """

    idle_latency_s: float = 65e-9
    peak_bandwidth_bytes_per_s: float = 25.6e9
    #: Queueing-delay coefficient of the latency curve.
    queue_coefficient: float = 0.35
    #: Utilization ceiling; the fixed point settles just below it.
    rho_max: float = 0.98

    def __post_init__(self) -> None:
        if self.idle_latency_s <= 0 or self.peak_bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("envelope values must be positive")
        if not 0.0 < self.rho_max < 1.0:
            raise ConfigurationError("rho_max must be within (0, 1)")

    def latency_s(self, utilization: float) -> float:
        """Loaded memory latency at a given channel utilization."""
        rho = min(max(utilization, 0.0), self.rho_max)
        queueing = self.queue_coefficient * rho**4 / (1.0 - rho)
        return self.idle_latency_s * (1.0 + queueing)


@dataclass(frozen=True)
class SlotResult:
    """Per-core-slot outputs of one window evaluation."""

    app_name: str
    instructions_per_s: float
    ipc: float
    l2_accesses_per_s: float
    l2_misses_per_s: float
    read_bytes_per_s: float
    write_bytes_per_s: float


@dataclass(frozen=True)
class WindowResult:
    """Aggregate outputs of one window evaluation."""

    slots: tuple[SlotResult, ...]
    read_bytes_per_s: float
    write_bytes_per_s: float
    utilization: float
    latency_s: float

    @property
    def total_bytes_per_s(self) -> float:
        """Read + write throughput."""
        return self.read_bytes_per_s + self.write_bytes_per_s

    @property
    def instructions_per_s(self) -> float:
        """Aggregate instruction rate across slots."""
        return sum(slot.instructions_per_s for slot in self.slots)

    @property
    def l2_misses_per_s(self) -> float:
        """Aggregate L2 miss rate."""
        return sum(slot.l2_misses_per_s for slot in self.slots)


#: Idle window: nothing running (or memory off).
def _idle_result(app_names: tuple[str, ...]) -> WindowResult:
    slots = tuple(
        SlotResult(
            app_name=name,
            instructions_per_s=0.0,
            ipc=0.0,
            l2_accesses_per_s=0.0,
            l2_misses_per_s=0.0,
            read_bytes_per_s=0.0,
            write_bytes_per_s=0.0,
        )
        for name in app_names
    )
    return WindowResult(
        slots=slots,
        read_bytes_per_s=0.0,
        write_bytes_per_s=0.0,
        utilization=0.0,
        latency_s=0.0,
    )


class WindowModel:
    """Evaluates one control state for one set of co-running applications.

    Args:
        l2_capacity_bytes: shared L2 size.
        max_frequency_hz: the platform's top core frequency (reference
            cycles for the ambient model use this).
        envelope: the memory latency/bandwidth envelope.
        iterations: fixed-point iterations.
        memoize: cache results by (apps, control state).  The evaluation
            is deterministic, so this is exact, and it is what makes
            thousand-second batch runs fast.
    """

    def __init__(
        self,
        l2_capacity_bytes: float = 4 * 1024 * 1024,
        max_frequency_hz: float = 3.2e9,
        envelope: MemoryEnvelope | None = None,
        iterations: int = 24,
        memoize: bool = True,
    ) -> None:
        if iterations < 1:
            raise ConfigurationError("need at least one iteration")
        self._l2_capacity = l2_capacity_bytes
        self._max_frequency_hz = max_frequency_hz
        self._envelope = envelope if envelope is not None else MemoryEnvelope()
        self._iterations = iterations
        self._memoize = memoize
        self._cache: dict[tuple, WindowResult] = {}
        self._cache_model = SharedCacheModel(l2_capacity_bytes)

    @property
    def envelope(self) -> MemoryEnvelope:
        """The memory envelope in use."""
        return self._envelope

    @property
    def max_frequency_hz(self) -> float:
        """The top core frequency."""
        return self._max_frequency_hz

    @property
    def cache_entries(self) -> int:
        """Number of memoized window evaluations (for tests)."""
        return len(self._cache)

    def evaluate(
        self,
        apps: list[AppProfile],
        frequency_hz: float,
        bandwidth_cap_bytes_per_s: float | None = None,
        memory_on: bool = True,
        cache_capacity_override_bytes: float | None = None,
    ) -> WindowResult:
        """Evaluate one window.

        Args:
            apps: the applications running this window (one per active
                core slot; duplicates allowed).
            frequency_hz: current core frequency.
            bandwidth_cap_bytes_per_s: DTM-BW traffic ceiling (None = no
                cap; 0 behaves as memory off).
            memory_on: False models thermal shutdown — every core stalls
                on its first miss, so progress and traffic are zero.
            cache_capacity_override_bytes: per-call L2 capacity override
                (the Chapter 5 servers have one L2 per socket).

        Returns:
            The window's :class:`WindowResult`.
        """
        names = tuple(app.name for app in apps)
        off = (
            not memory_on
            or frequency_hz <= 0.0
            or not apps
            or (bandwidth_cap_bytes_per_s is not None and bandwidth_cap_bytes_per_s <= 0.0)
        )
        if off:
            return _idle_result(names)
        key = None
        if self._memoize:
            key = (
                tuple(sorted(names)),
                round(frequency_hz),
                None
                if bandwidth_cap_bytes_per_s is None
                else round(bandwidth_cap_bytes_per_s),
                cache_capacity_override_bytes,
            )
            cached = self._cache.get(key)
            if cached is not None:
                return self._reorder(cached, names)
        result = self._solve(
            apps, frequency_hz, bandwidth_cap_bytes_per_s, cache_capacity_override_bytes
        )
        if key is not None:
            self._cache[key] = result
        return self._reorder(result, names)

    @staticmethod
    def _reorder(result: WindowResult, names: tuple[str, ...]) -> WindowResult:
        """Return a result whose slots follow the caller's app order."""
        current = tuple(slot.app_name for slot in result.slots)
        if current == names:
            return result
        pool: dict[str, list[SlotResult]] = {}
        for slot in result.slots:
            pool.setdefault(slot.app_name, []).append(slot)
        ordered = tuple(pool[name].pop() for name in names)
        return WindowResult(
            slots=ordered,
            read_bytes_per_s=result.read_bytes_per_s,
            write_bytes_per_s=result.write_bytes_per_s,
            utilization=result.utilization,
            latency_s=result.latency_s,
        )

    def _rates_at_latency(
        self,
        apps: list[AppProfile],
        frequency_hz: float,
        latency_s: float,
        cache_model: SharedCacheModel,
        frequency_scale: float,
    ) -> tuple[list[float], list[float], float]:
        """IPC and miss ratios at a fixed memory latency.

        With the latency pinned, the only remaining coupling is between
        cache shares and access rates, which converges quickly under
        damping.  Returns (ipc, miss_ratio, total demand in bytes/s).
        """
        count = len(apps)
        ipc = [1.0 / app.cpi_base for app in apps]
        miss_ratio = [app.mrc.miss_ratio(cache_model.capacity_bytes / count) for app in apps]
        latency_cycles = latency_s * frequency_hz
        for _ in range(8):
            clients = [
                CacheClient(
                    name=f"{app.name}#{index}",
                    access_rate_per_s=frequency_hz * ipc[index] * app.apki / 1000.0,
                    mrc=app.mrc,
                )
                for index, app in enumerate(apps)
            ]
            shares = cache_model.solve(clients)
            miss_ratio = [share.miss_ratio for share in shares]
            for index, app in enumerate(apps):
                mpi = app.apki / 1000.0 * miss_ratio[index]
                stall_cpi = mpi * latency_cycles / app.mlp
                target_ipc = 1.0 / (app.cpi_base + stall_cpi)
                ipc[index] += (target_ipc - ipc[index]) * 0.6
        demand = 0.0
        for index, app in enumerate(apps):
            mpi = app.apki / 1000.0 * miss_ratio[index]
            spec = 1.0 + app.spec_traffic_frac * frequency_scale
            bytes_per_instr = mpi * CACHE_LINE_BYTES * (spec + app.write_frac)
            demand += frequency_hz * ipc[index] * bytes_per_instr
        return ipc, miss_ratio, demand

    def _solve(
        self,
        apps: list[AppProfile],
        frequency_hz: float,
        cap: float | None,
        cache_override: float | None,
    ) -> WindowResult:
        """Bisection on channel utilization (see module docstring).

        ``demand(L(u))`` decreases in u while served capacity ``u * B``
        increases, so the operating point is the unique crossing.  When
        demand exceeds capacity even at the saturated latency (tight
        caps), all rates scale down uniformly — admission control at the
        memory controller.
        """
        envelope = self._envelope
        effective_peak = envelope.peak_bandwidth_bytes_per_s
        if cap is not None:
            effective_peak = min(effective_peak, cap)
        frequency_scale = frequency_hz / self._max_frequency_hz
        cache_model = (
            self._cache_model
            if cache_override is None
            else SharedCacheModel(cache_override)
        )
        rho_max = envelope.rho_max
        scale = 1.0
        ipc, miss_ratio, demand = self._rates_at_latency(
            apps, frequency_hz, envelope.latency_s(rho_max), cache_model, frequency_scale
        )
        if demand >= rho_max * effective_peak:
            utilization = rho_max
            latency = envelope.latency_s(rho_max)
            if demand > 0:
                scale = rho_max * effective_peak / demand
        else:
            lo, hi = 0.0, rho_max
            for _ in range(self._iterations):
                mid = (lo + hi) / 2.0
                _, _, demand_mid = self._rates_at_latency(
                    apps, frequency_hz, envelope.latency_s(mid), cache_model, frequency_scale
                )
                if demand_mid > mid * effective_peak:
                    lo = mid
                else:
                    hi = mid
            utilization = (lo + hi) / 2.0
            latency = envelope.latency_s(utilization)
            ipc, miss_ratio, _ = self._rates_at_latency(
                apps, frequency_hz, latency, cache_model, frequency_scale
            )
        slots = []
        total_read = 0.0
        total_write = 0.0
        for index, app in enumerate(apps):
            ips = frequency_hz * ipc[index] * scale
            accesses = ips * app.apki / 1000.0
            misses = accesses * miss_ratio[index]
            spec = 1.0 + app.spec_traffic_frac * frequency_scale
            read_bps = misses * CACHE_LINE_BYTES * spec
            write_bps = misses * CACHE_LINE_BYTES * app.write_frac
            total_read += read_bps
            total_write += write_bps
            slots.append(
                SlotResult(
                    app_name=app.name,
                    instructions_per_s=ips,
                    ipc=ipc[index] * scale,
                    l2_accesses_per_s=accesses,
                    l2_misses_per_s=misses,
                    read_bytes_per_s=read_bps,
                    write_bytes_per_s=write_bps,
                )
            )
        return WindowResult(
            slots=tuple(slots),
            read_bytes_per_s=total_read,
            write_bytes_per_s=total_write,
            utilization=min(utilization, 1.0),
            latency_s=latency,
        )

    def clear_cache(self) -> None:
        """Drop memoized results (e.g. after changing the envelope)."""
        self._cache.clear()
