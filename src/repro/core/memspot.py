"""MEMSpot: the second-level power/thermal simulator (§4.3.1).

MEMSpot consumes windowed memory throughput (from the level-1 model or
from measurement) and emulates the power and thermal behaviour of every
DIMM: Eq. 3.1/3.2 power from the local/bypass traffic split, Eqs. 3.3–3.5
DIMM temperatures, and the Eq. 3.6 ambient model.  The DTM policy reads
its temperatures and steers the processor; MEMSpot never decides anything
itself.

All channels carry identical interleaved traffic, so one representative
channel's DIMM chain is simulated and memory power is scaled by the
channel count.  Within the chain each position gets its own thermal
state — the nearest DIMM carries the most bypass traffic and runs
hottest, and the reported reading is the chain maximum (what a DTM
policy polling every sensor would act on).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.params.power_params import AMBPowerParams, DRAMPowerParams
from repro.params.thermal_params import AmbientModelParams, CoolingConfig
from repro.power.dimm_power import ChannelTraffic, channel_dimm_powers
from repro.thermal.integrated import AmbientModel
from repro.thermal.isolated import DimmThermalModel


@dataclass(frozen=True)
class MemSpotSample:
    """One MEMSpot step's outputs."""

    #: Hottest AMB temperature across the chain, degC.
    amb_c: float
    #: Hottest DRAM temperature across the chain, degC.
    dram_c: float
    #: DRAM ambient (memory inlet) temperature, degC.
    ambient_c: float
    #: Total memory subsystem power (all channels), watts.
    memory_power_w: float


class MemSpot:
    """The level-2 power/thermal emulator.

    Args:
        cooling: heat spreader + air velocity (Table 3.2 column).
        ambient: ambient-model parameters (Table 3.3 row) — isolated or
            integrated.
        physical_channels: FBDIMM channels in the system.
        dimms_per_channel: DIMMs per channel chain.
        amb_params / dram_params: power-model constants.
    """

    def __init__(
        self,
        cooling: CoolingConfig,
        ambient: AmbientModelParams,
        physical_channels: int = 4,
        dimms_per_channel: int = 4,
        amb_params: AMBPowerParams | None = None,
        dram_params: DRAMPowerParams | None = None,
        warm_start: bool = True,
    ) -> None:
        if physical_channels < 1 or dimms_per_channel < 1:
            raise ConfigurationError("need at least one channel and one DIMM")
        self._cooling = cooling
        self._channels = physical_channels
        self._dimms_per_channel = dimms_per_channel
        self._amb_params = amb_params if amb_params is not None else AMBPowerParams()
        self._dram_params = dram_params if dram_params is not None else DRAMPowerParams()
        self._warm_start = warm_start
        self._ambient = AmbientModel(ambient, cooling.name)
        inlet = self._ambient.inlet_c
        self._dimm_models = [
            DimmThermalModel(cooling, inlet) for _ in range(dimms_per_channel)
        ]
        if warm_start:
            self._settle_idle()

    def _settle_idle(self) -> None:
        """Start every DIMM at its zero-traffic stable temperature.

        The paper's experiments begin after "the machine is idle for a
        sufficiently long time for the AMB temperature to stabilize"
        (§5.4.1) — the DIMMs idle well above the inlet temperature because
        AMB idle power alone is several watts.
        """
        from repro.thermal.isolated import stable_temperatures

        inlet = self._ambient.inlet_c
        idle_traffic = ChannelTraffic(0.0, 0.0)
        powers = channel_dimm_powers(
            idle_traffic, self._dimms_per_channel, self._amb_params, self._dram_params
        )
        for model, power in zip(self._dimm_models, powers):
            stable = stable_temperatures(inlet, power.amb_w, power.dram_w, self._cooling)
            model.reset_to(stable.amb_c, stable.dram_c)

    @property
    def cooling(self) -> CoolingConfig:
        """Cooling configuration."""
        return self._cooling

    @property
    def ambient_model(self) -> AmbientModel:
        """The ambient node (for tests)."""
        return self._ambient

    @property
    def dimm_models(self) -> list[DimmThermalModel]:
        """Per-chain-position thermal models (for tests / ablations)."""
        return self._dimm_models

    def sample(self) -> MemSpotSample:
        """Current temperatures with zero-power bookkeeping (no step)."""
        amb_c = max(m.temperatures.amb_c for m in self._dimm_models)
        dram_c = max(m.temperatures.dram_c for m in self._dimm_models)
        return MemSpotSample(
            amb_c=amb_c,
            dram_c=dram_c,
            ambient_c=self._ambient.ambient_c,
            memory_power_w=self.idle_power_w(),
        )

    def idle_power_w(self) -> float:
        """Memory power with zero throughput (static + AMB idle)."""
        traffic = ChannelTraffic(0.0, 0.0)
        powers = channel_dimm_powers(
            traffic, self._dimms_per_channel, self._amb_params, self._dram_params
        )
        return self._channels * sum(p.total_w for p in powers)

    def step(
        self,
        read_bytes_per_s: float,
        write_bytes_per_s: float,
        cpu_heating_sum: float,
        dt_s: float,
    ) -> MemSpotSample:
        """Advance the thermal state by one window.

        Args:
            read_bytes_per_s: system-wide read throughput.
            write_bytes_per_s: system-wide write throughput.
            cpu_heating_sum: sum over cores of V_i * reference_IPC_i for
                the Eq. 3.6 ambient model (ignored by the isolated model).
            dt_s: window length.

        Returns:
            The end-of-window :class:`MemSpotSample`.
        """
        ambient_c = self._ambient.step_heating(cpu_heating_sum, dt_s)
        traffic = ChannelTraffic(
            read_bytes_per_s / self._channels, write_bytes_per_s / self._channels
        )
        powers = channel_dimm_powers(
            traffic, self._dimms_per_channel, self._amb_params, self._dram_params
        )
        amb_c = -273.15
        dram_c = -273.15
        total_power = 0.0
        for model, power in zip(self._dimm_models, powers):
            temps = model.step(ambient_c, power.amb_w, power.dram_w, dt_s)
            amb_c = max(amb_c, temps.amb_c)
            dram_c = max(dram_c, temps.dram_c)
            total_power += power.total_w
        return MemSpotSample(
            amb_c=amb_c,
            dram_c=dram_c,
            ambient_c=ambient_c,
            memory_power_w=total_power * self._channels,
        )

    def reset(self) -> None:
        """Restart at the initial (idle-stable or inlet) temperatures."""
        self._ambient.reset()
        if self._warm_start:
            self._settle_idle()
        else:
            inlet = self._ambient.inlet_c
            for model in self._dimm_models:
                model.reset(inlet)

    # -- checkpoint support ------------------------------------------------

    def thermal_state(self) -> dict:
        """Serializable thermal state (the engine checkpoint payload).

        The shape is shared with :class:`~repro.core.kernel.BatchedMemSpot`
        — the two kernels are bit-identical, so a checkpoint taken under
        one restores into the other.
        """
        return {
            "t_ambient": self._ambient.node_temperature_c,
            "t_amb": [m.temperatures.amb_c for m in self._dimm_models],
            "t_dram": [m.temperatures.dram_c for m in self._dimm_models],
        }

    def load_thermal_state(self, state: dict) -> None:
        """Restore temperatures captured by :meth:`thermal_state`."""
        t_amb = state["t_amb"]
        t_dram = state["t_dram"]
        if len(t_amb) != len(self._dimm_models) or len(t_dram) != len(
            self._dimm_models
        ):
            raise ConfigurationError(
                f"thermal state has {len(t_amb)} DIMM positions, "
                f"this chain has {len(self._dimm_models)}"
            )
        self._ambient.restore_node(state["t_ambient"])
        for model, amb_c, dram_c in zip(self._dimm_models, t_amb, t_dram):
            model.reset_to(float(amb_c), float(dram_c))
