"""Calibrating the analytic window model against the cycle-level simulator.

The window model's :class:`repro.core.windowmodel.MemoryEnvelope` has two
first-order parameters — unloaded latency and peak bandwidth — that the
cycle-level FBDIMM simulator can measure directly.  This module runs the
measurements:

- *unloaded latency*: a sparse random read stream (no queueing) through
  the full system; the mean completion latency is the envelope's
  ``idle_latency_s``.
- *peak bandwidth*: a saturating sequential stream; the sustained
  throughput is ``peak_bandwidth_bytes_per_s``.

Tests assert the defaults sit near the measured values, closing the loop
between the two levels without paying cycle-level cost inside the
thermal experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.windowmodel import MemoryEnvelope
from repro.dram.system import MemorySystem
from repro.dram.trafficgen import poisson_trace, stream_trace
from repro.errors import SimulationError
from repro.params.dram_timing import SimulatedSystemParams


@dataclass(frozen=True)
class CalibrationReport:
    """Measured envelope parameters and the runs behind them."""

    idle_latency_s: float
    peak_bandwidth_bytes_per_s: float
    idle_requests: int
    stream_requests: int

    def to_envelope(
        self, queue_coefficient: float = 0.35, rho_max: float = 0.98
    ) -> MemoryEnvelope:
        """Build a :class:`MemoryEnvelope` from the measured values."""
        return MemoryEnvelope(
            idle_latency_s=self.idle_latency_s,
            peak_bandwidth_bytes_per_s=self.peak_bandwidth_bytes_per_s,
            queue_coefficient=queue_coefficient,
            rho_max=rho_max,
        )


def measure_idle_latency_s(
    params: SimulatedSystemParams | None = None,
    requests: int = 400,
    seed: int = 7,
) -> float:
    """Mean read latency of a sparse (unloaded) random stream."""
    system = MemorySystem(params)
    trace = poisson_trace(
        count=requests,
        address_space_bytes=min(system.mapper.capacity_bytes, 1 << 30),
        mean_interarrival_s=2e-6,  # ~0.5 M req/s: far below saturation.
        seed=seed,
    )
    completions = system.run(trace)
    if not completions:
        raise SimulationError("calibration run produced no completions")
    return sum(c.latency_s for c in completions) / len(completions)


def measure_peak_bandwidth_bytes_per_s(
    params: SimulatedSystemParams | None = None,
    requests: int = 8000,
    write_fraction: float = 0.0,
) -> float:
    """Sustained throughput of a saturating sequential stream."""
    system = MemorySystem(params)
    trace = stream_trace(
        count=requests,
        interarrival_s=0.0,  # all requests available at time zero.
        write_fraction=write_fraction,
    )
    completions = system.run(trace)
    if not completions:
        raise SimulationError("calibration run produced no completions")
    elapsed = completions[-1].completion_s
    total_bytes = sum(c.request.bytes for c in completions)
    if elapsed <= 0:
        raise SimulationError("calibration stream finished in zero time")
    return total_bytes / elapsed


def calibrate_envelope(
    params: SimulatedSystemParams | None = None,
    idle_requests: int = 400,
    stream_requests: int = 8000,
) -> CalibrationReport:
    """Run both measurements and report the envelope parameters."""
    idle = measure_idle_latency_s(params, requests=idle_requests)
    peak = measure_peak_bandwidth_bytes_per_s(params, requests=stream_requests)
    return CalibrationReport(
        idle_latency_s=idle,
        peak_bandwidth_bytes_per_s=peak,
        idle_requests=idle_requests,
        stream_requests=stream_requests,
    )
