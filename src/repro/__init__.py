"""repro — Thermal Modeling and Management of DRAM Memory Systems.

A from-scratch Python reproduction of Lin et al.'s ISCA 2007 paper (and
its dissertation/SIGMETRICS 2008 extensions): FBDIMM power and thermal
models, the two-level thermal simulator, the DTM schemes (TS, BW, ACG,
CDVFS, COMB, with and without PID control), and the real-system testbed
emulation.

Quickstart::

    from repro import SimulationConfig, TwoLevelSimulator
    from repro.dtm import DTMACG

    config = SimulationConfig(mix_name="W1", copies=1)
    result = TwoLevelSimulator(config, DTMACG()).run()
    print(result.runtime_s, result.peak_amb_c)

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from repro.core.memspot import MemSpot, MemSpotSample
from repro.core.results import RunResult, TemperatureTrace
from repro.core.simulator import SimulationConfig, TwoLevelSimulator
from repro.core.windowmodel import MemoryEnvelope, WindowModel, WindowResult
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    SchedulingError,
    SimulationError,
    ThermalModelError,
    TimingViolationError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "MemSpot",
    "MemSpotSample",
    "RunResult",
    "TemperatureTrace",
    "SimulationConfig",
    "TwoLevelSimulator",
    "MemoryEnvelope",
    "WindowModel",
    "WindowResult",
    "ReproError",
    "ConfigurationError",
    "TimingViolationError",
    "ProtocolError",
    "SchedulingError",
    "ThermalModelError",
    "SimulationError",
    "WorkloadError",
    "__version__",
]
