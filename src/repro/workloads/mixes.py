"""Workload mixes (Table 4.2 and Table 5.2).

Eight four-program mixes drawn from the twelve memory-intensive SPEC
CPU2000 selections, plus the two SPEC CPU2006 mixes used in Chapter 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.workloads.profiles import AppProfile, get_app


@dataclass(frozen=True)
class WorkloadMix:
    """A named multiprogramming mix of applications."""

    name: str
    app_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.app_names:
            raise WorkloadError(f"mix {self.name} has no applications")

    @property
    def apps(self) -> list[AppProfile]:
        """The application profiles of this mix, in slot order."""
        return [get_app(name) for name in self.app_names]


#: Table 4.2 / Table 5.2 — the paper's workload mixes.
WORKLOAD_MIXES: dict[str, WorkloadMix] = {
    mix.name: mix
    for mix in (
        WorkloadMix("W1", ("swim", "mgrid", "applu", "galgel")),
        WorkloadMix("W2", ("art", "equake", "lucas", "fma3d")),
        WorkloadMix("W3", ("swim", "applu", "art", "lucas")),
        WorkloadMix("W4", ("mgrid", "galgel", "equake", "fma3d")),
        WorkloadMix("W5", ("swim", "art", "wupwise", "vpr")),
        WorkloadMix("W6", ("mgrid", "equake", "mcf", "apsi")),
        WorkloadMix("W7", ("applu", "lucas", "wupwise", "mcf")),
        WorkloadMix("W8", ("galgel", "fma3d", "vpr", "apsi")),
        WorkloadMix("W11", ("milc", "leslie3d", "soplex", "GemsFDTD")),
        WorkloadMix("W12", ("libquantum", "lbm", "omnetpp", "wrf")),
    )
}

#: The Chapter 4 (simulation) mixes, in presentation order.
SIMULATION_MIXES = ("W1", "W2", "W3", "W4", "W5", "W6", "W7", "W8")

#: The Chapter 5 SPEC CPU2006 mixes.
CPU2006_MIXES = ("W11", "W12")


def get_mix(name: str) -> WorkloadMix:
    """Look up a workload mix by name.

    Raises:
        WorkloadError: if the mix does not exist.
    """
    try:
        return WORKLOAD_MIXES[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOAD_MIXES))
        raise WorkloadError(f"unknown workload mix {name!r}; known: {known}") from None
