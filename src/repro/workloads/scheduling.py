"""Cache-aware job scheduling (the paper's §6 future-work direction).

"Third, we can study shared cache-aware OS job scheduling to reduce
total memory traffic and DRAM heat generation."

The baseline batch scheduler refills a freed core with the next waiting
job round-robin.  :class:`CacheAwareScheduler` instead picks the waiting
job that minimizes the *predicted aggregate miss rate* of the resulting
co-running set, using the same shared-cache contention model the window
model uses.  Pairing cache-friendly programs with cache-hungry ones
lowers total traffic, which under a thermal limit converts directly into
performance.
"""

from __future__ import annotations

from repro.cache.sharing import CacheClient, SharedCacheModel
from repro.errors import SchedulingError
from repro.workloads.batch import BatchJob, BatchScheduler
from repro.workloads.mixes import WorkloadMix
from repro.workloads.profiles import AppProfile


def predicted_miss_rate(
    apps: list[AppProfile],
    cache_capacity_bytes: float,
    frequency_hz: float = 3.2e9,
) -> float:
    """Predicted aggregate L2 miss rate (misses/s) of a co-running set.

    Uses a nominal per-app IPC of 1/CPI_base for the access rates — the
    scheduler needs a ranking, not an absolute number.
    """
    if not apps:
        return 0.0
    model = SharedCacheModel(cache_capacity_bytes)
    clients = [
        CacheClient(
            name=f"{app.name}#{index}",
            access_rate_per_s=frequency_hz / app.cpi_base * app.apki / 1000.0,
            mrc=app.mrc,
        )
        for index, app in enumerate(apps)
    ]
    return model.total_miss_rate_per_s(clients)


class CacheAwareScheduler(BatchScheduler):
    """Batch scheduler whose refill step minimizes predicted miss rate.

    Drop-in replacement for :class:`repro.workloads.batch.BatchScheduler`:
    same slots/advance interface, different choice of which waiting job
    fills a freed core.
    """

    def __init__(
        self,
        mix: WorkloadMix,
        copies: int,
        cores: int,
        cache_capacity_bytes: float = 4 * 1024 * 1024,
    ) -> None:
        if cache_capacity_bytes <= 0:
            raise SchedulingError("cache capacity must be positive")
        self._cache_capacity = cache_capacity_bytes
        self._initialized = False
        super().__init__(mix, copies, cores)
        self._initialized = True

    def _fill_slots(self) -> None:
        """Greedy refill: per empty slot, pick the waiting job whose app
        minimizes the predicted aggregate miss rate with the residents.

        The *initial* fill stays round-robin (one copy of each mix
        application, the paper's §4.3.2 intent); awareness applies only
        when a finished job frees a core mid-batch.
        """
        if not self._initialized:
            super()._fill_slots()
            return
        for index in range(self._cores):
            if self._slots[index] is not None or not self._queue:
                continue
            residents = [job.app for job in self._slots if job is not None]
            best_queue_index = 0
            best_rate = float("inf")
            seen_apps: set[str] = set()
            for queue_index, candidate in enumerate(self._queue):
                if candidate.app.name in seen_apps:
                    continue  # identical apps predict identically
                seen_apps.add(candidate.app.name)
                rate = predicted_miss_rate(
                    residents + [candidate.app], self._cache_capacity
                )
                if rate < best_rate:
                    best_rate = rate
                    best_queue_index = queue_index
            self._slots[index] = self._queue.pop(best_queue_index)
