"""Synthetic SPEC-like workloads.

The paper drives its experiments with SPEC CPU2000/CPU2006 programs.  We
cannot ship or execute SPEC, so each program is replaced by a *profile* —
the small set of architectural traits the two-level simulator actually
consumes: base CPI, L2 access rate, miss-ratio curve, write fraction,
memory-level parallelism and dynamic instruction count.  The profiles are
calibrated so the derived behaviours match the paper's reported classes
(which programs exceed 10 GB/s of memory throughput with four copies,
which sit between 5 and 10 GB/s, which idle below — §4.3.2 / §5.4.1).

- :mod:`repro.workloads.profiles` — the application profiles.
- :mod:`repro.workloads.mixes` — workload mixes W1..W8 (Table 4.2) and
  W11/W12 (Table 5.2).
- :mod:`repro.workloads.batch` — the batch-job model: N copies of every
  application in the mix, assigned to cores round-robin as jobs finish.
"""

from repro.workloads.profiles import AppProfile, get_app, all_apps, SPEC2000_HIGH, SPEC2000_MODERATE
from repro.workloads.mixes import WORKLOAD_MIXES, get_mix
from repro.workloads.batch import BatchJob, BatchScheduler

__all__ = [
    "AppProfile",
    "get_app",
    "all_apps",
    "SPEC2000_HIGH",
    "SPEC2000_MODERATE",
    "WORKLOAD_MIXES",
    "get_mix",
    "BatchJob",
    "BatchScheduler",
]
