"""Synthetic application profiles standing in for SPEC programs.

Each profile captures the traits the analytic window model consumes:

- ``cpi_base``: cycles per instruction with an ideal memory system.
- ``apki``: L2 accesses per kilo-instruction.
- ``mrc``: miss-ratio curve versus effective L2 share.
- ``write_frac``: writeback bytes per miss byte (dirty-line fraction).
- ``mlp``: memory-level parallelism — how many misses overlap.
- ``spec_traffic_frac``: extra speculative/prefetch traffic at the top
  frequency; it scales down with core frequency, which is why DTM-CDVFS
  trims total traffic by a few percent (§4.4.2).
- ``instructions``: dynamic instruction count of one copy.

Calibration targets (checked by tests):

- With four copies sharing the simulated platform, the eight "high"
  SPEC2000 programs demand > 10 GB/s and the four "moderate" ones fall
  between 5 and 10 GB/s (§4.3.2).
- On the Chapter 5 servers, ten programs average > 80 degC AMB, four sit
  between 70 and 80 degC and the rest stay below 70 degC (§5.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.mrc import MissRatioCurve
from repro.errors import WorkloadError

MB = 1024 * 1024


@dataclass(frozen=True)
class AppProfile:
    """Architectural profile of one application."""

    name: str
    suite: str
    cpi_base: float
    apki: float
    mrc: MissRatioCurve
    write_frac: float
    mlp: float
    instructions: float
    spec_traffic_frac: float = 0.09

    def __post_init__(self) -> None:
        if self.cpi_base <= 0:
            raise WorkloadError(f"{self.name}: cpi_base must be positive")
        if self.apki < 0:
            raise WorkloadError(f"{self.name}: apki must be non-negative")
        if not 0.0 <= self.write_frac <= 1.0:
            raise WorkloadError(f"{self.name}: write_frac must be in [0, 1]")
        if self.mlp <= 0:
            raise WorkloadError(f"{self.name}: mlp must be positive")
        if self.instructions <= 0:
            raise WorkloadError(f"{self.name}: instructions must be positive")
        if self.spec_traffic_frac < 0:
            raise WorkloadError(f"{self.name}: spec_traffic_frac must be >= 0")

    def misses_per_instruction(self, cache_share_bytes: float) -> float:
        """L2 misses per instruction at a given effective cache share."""
        return self.apki / 1000.0 * self.mrc.miss_ratio(cache_share_bytes)


def _app(
    name: str,
    suite: str,
    cpi: float,
    apki: float,
    m_peak: float,
    m_floor: float,
    c_half_mb: float,
    alpha: float,
    write_frac: float,
    mlp: float,
    instructions_e11: float,
) -> AppProfile:
    """Compact profile constructor used by the tables below."""
    return AppProfile(
        name=name,
        suite=suite,
        cpi_base=cpi,
        apki=apki,
        mrc=MissRatioCurve(
            m_peak=m_peak, m_floor=m_floor, c_half_bytes=c_half_mb * MB, alpha=alpha
        ),
        write_frac=write_frac,
        mlp=mlp,
        instructions=instructions_e11 * 1e11,
    )


#: SPEC CPU2000 programs with > 10 GB/s four-copy memory demand (§4.3.2).
SPEC2000_HIGH = (
    "swim", "mgrid", "applu", "galgel", "art", "equake", "lucas", "fma3d",
)

#: SPEC CPU2000 programs with 5–10 GB/s four-copy memory demand (§4.3.2).
SPEC2000_MODERATE = ("wupwise", "vpr", "mcf", "apsi")

_PROFILES: dict[str, AppProfile] = {}

for profile in (
    # --- SPEC CPU2000, high memory intensity ------------------------------
    #     name       suite   cpi  apki  mpk  mfl  c_half alpha  wf   mlp  instr
    _app("swim",    "cpu2000", 0.45, 32.0, 0.8, 0.3, 1.5, 1.3, 0.45, 7.0, 3.4),
    _app("mgrid",   "cpu2000", 0.50, 28.0, 0.82, 0.32, 1.4, 1.2, 0.35, 6.5, 3.0),
    _app("applu",   "cpu2000", 0.50, 26.0, 0.75, 0.26, 1.3, 1.2, 0.40, 6.5, 3.2),
    _app("galgel",  "cpu2000", 0.40, 22.0, 0.68, 0.20, 1.2, 1.5, 0.25, 5.5, 2.8),
    _app("art",     "cpu2000", 0.35, 40.0, 0.9, 0.25, 1.1, 1.8, 0.15, 7.5, 2.6),
    _app("equake",  "cpu2000", 0.55, 24.0, 0.75, 0.28, 1.2, 1.3, 0.30, 6.0, 2.9),
    _app("lucas",   "cpu2000", 0.50, 25.0, 0.78, 0.32, 1.3, 1.2, 0.35, 7.0, 3.0),
    _app("fma3d",   "cpu2000", 0.55, 21.0, 0.66, 0.25, 1.2, 1.3, 0.35, 5.5, 3.1),
    # --- SPEC CPU2000, moderate memory intensity --------------------------
    _app("wupwise", "cpu2000", 0.45, 13.0, 0.60, 0.32, 1.0, 1.3, 0.30, 4.5, 3.3),
    _app("vpr",     "cpu2000", 0.60, 14.0, 0.55, 0.16, 1.5, 1.6, 0.20, 3.0, 2.7),
    _app("mcf",     "cpu2000", 0.70, 36.0, 0.85, 0.46, 2.0, 1.0, 0.10, 2.4, 2.5),
    _app("apsi",    "cpu2000", 0.50, 13.0, 0.52, 0.22, 1.2, 1.4, 0.30, 3.5, 3.0),
    # --- SPEC CPU2000, lower intensity (Fig. 5.5 homogeneous sweep) -------
    _app("facerec", "cpu2000", 0.55, 16.0, 0.62, 0.38, 0.8, 1.3, 0.25, 4.5, 2.8),
    _app("gap",     "cpu2000", 0.60, 10.0, 0.50, 0.18, 1.0, 1.4, 0.25, 3.0, 2.6),
    _app("bzip2",   "cpu2000", 0.55,  9.0, 0.45, 0.12, 1.0, 1.5, 0.30, 3.0, 2.7),
    _app("gzip",    "cpu2000", 0.50,  5.0, 0.35, 0.05, 0.6, 1.5, 0.25, 2.0, 2.4),
    _app("crafty",  "cpu2000", 0.45,  3.0, 0.20, 0.02, 0.4, 1.5, 0.15, 2.0, 2.5),
    _app("mesa",    "cpu2000", 0.50,  3.5, 0.25, 0.03, 0.5, 1.5, 0.20, 2.0, 2.4),
    _app("parser",  "cpu2000", 0.60,  6.0, 0.40, 0.08, 0.8, 1.4, 0.20, 2.0, 2.3),
    _app("perlbmk", "cpu2000", 0.50,  4.0, 0.30, 0.04, 0.6, 1.5, 0.20, 2.0, 2.4),
    _app("twolf",   "cpu2000", 0.65,  7.0, 0.45, 0.06, 1.0, 1.5, 0.15, 2.0, 2.3),
    _app("vortex",  "cpu2000", 0.55,  6.5, 0.42, 0.07, 0.9, 1.4, 0.25, 2.2, 2.5),
    _app("eon",     "cpu2000", 0.45,  2.0, 0.15, 0.01, 0.3, 1.5, 0.10, 2.0, 2.4),
    _app("gcc",     "cpu2000", 0.55,  7.5, 0.42, 0.08, 0.9, 1.4, 0.25, 2.4, 2.4),
    _app("ammp",    "cpu2000", 0.60,  8.0, 0.48, 0.14, 1.1, 1.3, 0.20, 2.3, 2.5),
    _app("sixtrack","cpu2000", 0.45,  2.5, 0.18, 0.02, 0.4, 1.5, 0.15, 2.0, 2.5),
    # --- SPEC CPU2006 (Table 5.2 selections) ------------------------------
    _app("milc",      "cpu2006", 0.55, 26.0, 0.78, 0.34, 1.2, 1.2, 0.35, 6.5, 3.2),
    _app("leslie3d",  "cpu2006", 0.50, 24.0, 0.75, 0.3, 1.2, 1.2, 0.35, 6.2, 3.1),
    _app("soplex",    "cpu2006", 0.60, 28.0, 0.8, 0.28, 1.6, 1.2, 0.25, 5.0, 2.9),
    _app("GemsFDTD",  "cpu2006", 0.55, 27.0, 0.78, 0.32, 1.2, 1.2, 0.35, 6.2, 3.1),
    _app("libquantum","cpu2006", 0.45, 30.0, 0.85, 0.70, 0.4, 1.2, 0.25, 8.0, 3.3),
    _app("lbm",       "cpu2006", 0.50, 29.0, 0.80, 0.60, 0.6, 1.2, 0.45, 7.5, 3.2),
    _app("omnetpp",   "cpu2006", 0.65, 22.0, 0.70, 0.30, 1.8, 1.1, 0.20, 2.6, 2.7),
    _app("wrf",       "cpu2006", 0.55, 18.0, 0.64, 0.24, 1.2, 1.3, 0.30, 5.0, 3.0),
):
    _PROFILES[profile.name] = profile


def get_app(name: str) -> AppProfile:
    """Look up an application profile by name.

    Raises:
        WorkloadError: if no profile with that name exists.
    """
    try:
        return _PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise WorkloadError(f"unknown application {name!r}; known: {known}") from None


def all_apps(suite: str | None = None) -> list[AppProfile]:
    """All profiles, optionally filtered by suite ('cpu2000' / 'cpu2006')."""
    profiles = sorted(_PROFILES.values(), key=lambda p: p.name)
    if suite is None:
        return profiles
    return [p for p in profiles if p.suite == suite]
