"""Batch-job model of the paper's long-running experiments.

"For each workload W, its corresponding batch job J mixes multiple copies
(fifty in our experiments) of every application Ai contained in the
workload.  When one application finishes its execution and releases its
occupied processor core, a waiting application is assigned to the core in
a round-robin way." (§4.3.2)

:class:`BatchScheduler` implements exactly that: a queue interleaving the
copies round-robin over the mix's applications, core slots that hold one
job each, and slot refill on completion.  The number of *simulated* copies
is a parameter (the benchmark suite defaults to a scaled-down count so it
finishes on a laptop; shapes are scale-invariant).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.workloads.mixes import WorkloadMix
from repro.workloads.profiles import AppProfile


@dataclass
class BatchJob:
    """One copy of an application inside a batch job."""

    app: AppProfile
    copy_index: int
    remaining_instructions: float = field(init=False)

    def __post_init__(self) -> None:
        self.remaining_instructions = self.app.instructions

    @property
    def done(self) -> bool:
        """Whether this copy has retired all its instructions."""
        return self.remaining_instructions <= 0.0

    def advance(self, instructions: float) -> float:
        """Retire instructions; returns the unused surplus (>= 0)."""
        if instructions < 0:
            raise SchedulingError("cannot advance by negative instructions")
        surplus = max(0.0, instructions - self.remaining_instructions)
        self.remaining_instructions = max(0.0, self.remaining_instructions - instructions)
        return surplus


class BatchScheduler:
    """Round-robin batch scheduler over a fixed number of core slots.

    Args:
        mix: the workload mix.
        copies: copies of every application in the batch.
        cores: number of core slots.
    """

    def __init__(self, mix: WorkloadMix, copies: int, cores: int) -> None:
        if copies < 1:
            raise SchedulingError("need at least one copy of each application")
        if cores < 1:
            raise SchedulingError("need at least one core slot")
        self._mix = mix
        self._cores = cores
        # Interleave copies round-robin over applications:
        # A1#0, A2#0, ..., An#0, A1#1, A2#1, ...
        self._queue: list[BatchJob] = [
            BatchJob(app=app, copy_index=copy)
            for copy in range(copies)
            for app in mix.apps
        ]
        self._total_jobs = len(self._queue)
        self._slots: list[BatchJob | None] = [None] * cores
        self._finished: list[BatchJob] = []
        self._fill_slots()

    def _fill_slots(self) -> None:
        for index in range(self._cores):
            if self._slots[index] is None and self._queue:
                self._slots[index] = self._queue.pop(0)

    @property
    def cores(self) -> int:
        """Number of core slots."""
        return self._cores

    @property
    def total_jobs(self) -> int:
        """Total job copies in the batch."""
        return self._total_jobs

    @property
    def finished_jobs(self) -> int:
        """Jobs completed so far."""
        return len(self._finished)

    @property
    def waiting_jobs(self) -> int:
        """Jobs not yet assigned to any slot."""
        return len(self._queue)

    @property
    def done(self) -> bool:
        """Whether every job has completed."""
        return len(self._finished) == self._total_jobs

    def job_at(self, slot: int) -> BatchJob | None:
        """The job currently occupying a slot (None when drained)."""
        return self._slots[slot]

    def occupied_slots(self) -> list[int]:
        """Slots currently holding a job."""
        return [i for i, job in enumerate(self._slots) if job is not None]

    def running_apps(self, active_slots: list[int]) -> dict[int, AppProfile]:
        """Map of slot -> application for the slots that execute now."""
        result: dict[int, AppProfile] = {}
        for slot in active_slots:
            if not 0 <= slot < self._cores:
                raise SchedulingError(f"slot {slot} out of range")
            job = self._slots[slot]
            if job is not None:
                result[slot] = job.app
        return result

    def advance(self, progress: dict[int, float]) -> list[BatchJob]:
        """Retire per-slot instruction progress; refill emptied slots.

        Args:
            progress: slot -> instructions retired this interval.

        Returns:
            Jobs that finished during the interval.
        """
        newly_finished: list[BatchJob] = []
        for slot, instructions in progress.items():
            job = self._slots[slot]
            if job is None:
                if instructions > 0:
                    raise SchedulingError(f"progress reported for empty slot {slot}")
                continue
            job.advance(instructions)
            if job.done:
                newly_finished.append(job)
                self._finished.append(job)
                self._slots[slot] = None
        if newly_finished:
            self._fill_slots()
        return newly_finished

    def remaining_instructions(self) -> float:
        """Instructions left across slots and queue (progress metric)."""
        in_slots = sum(
            job.remaining_instructions for job in self._slots if job is not None
        )
        in_queue = sum(job.remaining_instructions for job in self._queue)
        return in_slots + in_queue

    # -- checkpoint support ------------------------------------------------

    def _job_ref(self, job: BatchJob) -> list:
        """Serializable job identity: (mix app index, copy, remaining)."""
        index = next(
            i for i, app in enumerate(self._mix.apps) if app is job.app
        )
        return [index, job.copy_index, job.remaining_instructions]

    def state_dict(self) -> dict:
        """Serializable scheduler state (for engine checkpoints).

        Jobs are identified by their application's index in the mix and
        their copy index, so the state crosses process boundaries
        without serializing :class:`AppProfile` objects.
        """
        return {
            "queue": [self._job_ref(job) for job in self._queue],
            "slots": [
                None if job is None else self._job_ref(job)
                for job in self._slots
            ],
            "finished": [self._job_ref(job) for job in self._finished],
        }

    def _job_from_ref(self, ref) -> BatchJob:
        index, copy_index, remaining = ref
        job = BatchJob(app=self._mix.apps[int(index)], copy_index=int(copy_index))
        job.remaining_instructions = float(remaining)
        return job

    def load_state_dict(self, state) -> None:
        """Restore scheduler state captured by :meth:`state_dict`.

        The scheduler must have been constructed with the same (mix,
        copies, cores) as the one that produced the state.
        """
        queue = [self._job_from_ref(ref) for ref in state["queue"]]
        slots = [
            None if ref is None else self._job_from_ref(ref)
            for ref in state["slots"]
        ]
        finished = [self._job_from_ref(ref) for ref in state["finished"]]
        if len(slots) != self._cores:
            raise SchedulingError(
                f"checkpoint has {len(slots)} core slots, "
                f"scheduler has {self._cores}"
            )
        if len(queue) + len(finished) + sum(
            1 for job in slots if job is not None
        ) != self._total_jobs:
            raise SchedulingError(
                "checkpoint job count does not match this batch "
                f"({self._total_jobs} jobs expected)"
            )
        self._queue = queue
        self._slots = slots
        self._finished = finished
