"""Time-series helpers for the temperature-trace figures."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def downsample(values: list[float], target_points: int) -> list[float]:
    """Pick ~``target_points`` evenly spaced samples."""
    if target_points < 1:
        raise ConfigurationError("need at least one point")
    if len(values) <= target_points:
        return list(values)
    stride = len(values) / target_points
    return [values[int(i * stride)] for i in range(target_points)]


@dataclass(frozen=True)
class SeriesSummary:
    """Summary statistics of one temperature series."""

    minimum: float
    maximum: float
    mean: float
    #: Fraction of samples at or above the threshold (overshoot metric).
    overshoot_fraction: float


def summarize_series(values: list[float], threshold: float) -> SeriesSummary:
    """Min / max / mean / threshold-overshoot of a series."""
    if not values:
        raise ConfigurationError("cannot summarize an empty series")
    over = sum(1 for v in values if v >= threshold)
    return SeriesSummary(
        minimum=min(values),
        maximum=max(values),
        mean=sum(values) / len(values),
        overshoot_fraction=over / len(values),
    )


def time_above(times_s: list[float], values: list[float], threshold: float) -> float:
    """Total time (seconds) the series spends at or above a threshold."""
    if len(times_s) != len(values):
        raise ConfigurationError("times and values must align")
    if len(times_s) < 2:
        return 0.0
    total = 0.0
    for index in range(1, len(times_s)):
        if values[index] >= threshold:
            total += times_s[index] - times_s[index - 1]
    return total
