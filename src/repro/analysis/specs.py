"""Chapter 4/5 run specs and runners for the campaign engine.

(Formerly ``repro.analysis.experiments``; that import path still works
but warns — programmatic users should prefer the stable client API in
:mod:`repro.api`.)

Every figure bench needs the same underlying runs (e.g. the no-limit
baseline of every workload).  This module defines the two spec kinds —
``ch4`` (two-level simulation) and ``ch5`` (server measurement) — and
registers their runners with :mod:`repro.campaign`, which provides the
caching, grid expansion, and parallel execution:

- a process-wide **memory memo** so one pytest session never repeats a
  run, and
- a sharded **on-disk JSON cache** under ``.exp_cache/`` keyed by the
  spec hash, so tests and benches across sessions reuse results.
  Temperature traces are persisted alongside the scalars.

``REPRO_BENCH_SCALE`` scales the batch length (copies of each app; the
paper uses 50, the default here is 2 — shapes are scale-invariant).
``REPRO_CACHE=0`` disables the disk cache; ``REPRO_CACHE_DIR`` moves it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import ClassVar

from repro.campaign import register_rewriter, register_runner, run, spec_key
from repro.campaign.spec import CACHE_VERSION  # noqa: F401  (compat re-export)
from repro.core.results import RunResult, TemperatureTrace
from repro.core.simulator import SimulationConfig, TwoLevelSimulator
from repro.core.windowmodel import MemoryEnvelope, WindowModel
from repro.dtm.acg import DTMACG
from repro.dtm.base import DTMPolicy, NoLimitPolicy
from repro.dtm.bw import DTMBW
from repro.dtm.cdvfs import DTMCDVFS
from repro.dtm.comb import DTMCOMB
from repro.dtm.pid_policies import PIDPolicy
from repro.dtm.ts import DTMTS
from repro.errors import ConfigurationError
from repro.params.emergency import EmergencyLevels, SIMULATION_LEVELS
from repro.params.thermal_params import (
    COOLING_CONFIGS,
    INTEGRATED_AMBIENT,
    ISOLATED_AMBIENT,
)
from repro.testbed.performance import ServerWindowModel
from repro.testbed.platforms import PLATFORMS, ServerPlatform
from repro.testbed.runner import ServerRunResult, ServerSimulator

__all__ = [
    "CACHE_VERSION",
    "CHAPTER4_POLICIES",
    "CHAPTER4_POLICY_CHOICES",
    "CHAPTER5_POLICIES",
    "Chapter4Spec",
    "Chapter5Spec",
    "bench_copies",
    "make_chapter4_policy",
    "make_chapter5_policy",
    "run_chapter4",
    "run_chapter5",
    "run_result_from_dict",
    "run_result_to_dict",
    "server_result_from_dict",
    "server_result_to_dict",
    "trace_from_dict",
    "trace_to_dict",
]


def bench_copies(default: int = 2) -> int:
    """Batch copies per application, from ``REPRO_BENCH_SCALE``."""
    raw = os.environ.get("REPRO_BENCH_SCALE", str(default))
    try:
        copies = int(raw)
    except ValueError:
        raise ConfigurationError(f"REPRO_BENCH_SCALE must be an integer, got {raw!r}")
    if copies < 1:
        raise ConfigurationError("REPRO_BENCH_SCALE must be >= 1")
    return copies


# ---------------------------------------------------------------------------
# Chapter 4 (simulation) experiments
# ---------------------------------------------------------------------------

#: Paper presentation order of the simulation schemes.
CHAPTER4_POLICIES = (
    "no-limit",
    "ts",
    "bw",
    "acg",
    "cdvfs",
    "bw+pid",
    "acg+pid",
    "cdvfs+pid",
)

#: Every policy name ``make_chapter4_policy`` accepts (CLI choices).
CHAPTER4_POLICY_CHOICES = CHAPTER4_POLICIES + ("comb",)


@dataclass(frozen=True)
class Chapter4Spec:
    """One Chapter 4 simulation run."""

    kind: ClassVar[str] = "ch4"
    #: Presentation-only fields left out of the cache key: the same
    #: physical run under different scenario labels shares one entry.
    KEY_EXCLUDED_FIELDS: ClassVar[tuple[str, ...]] = ("scenario",)

    mix: str = "W1"
    policy: str = "ts"
    cooling: str = "AOHS_1.5"
    #: "isolated" or "integrated" (Table 3.3 row).
    ambient: str = "isolated"
    copies: int = 2
    dtm_interval_s: float = 0.010
    #: CPU-memory interaction override (§4.5.2 sweeps 1.0 / 1.5 / 2.0).
    interaction: float | None = None
    #: DTM-TS release point overrides (Fig. 4.2 sweeps).
    amb_trp_c: float | None = None
    dram_trp_c: float | None = None
    record_trace: bool = False
    #: Name of the scenario that produced this spec (None for ad-hoc runs).
    scenario: str | None = None
    #: Machine-room inlet shift, degC (scenario knob; 0 = Table 3.3).
    inlet_delta_c: float = 0.0
    #: Platform shape overrides (Table 4.1 uses 4 channels x 4 DIMMs).
    channels: int = 4
    dimms_per_channel: int = 4
    #: Traffic shape: the cores run ``duty_cycle`` of each period.
    duty_cycle: float = 1.0
    duty_period_s: float = 0.1
    #: Scales the memory envelope's peak bandwidth (narrow/wide pipes).
    bandwidth_scale: float = 1.0

    def key(self) -> str:
        """Stable hash key of this spec."""
        return spec_key(self)


def make_chapter4_policy(
    name: str,
    levels: EmergencyLevels = SIMULATION_LEVELS,
    amb_trp_c: float | None = None,
    dram_trp_c: float | None = None,
) -> DTMPolicy:
    """Construct a Chapter 4 policy by short name."""
    if name == "no-limit":
        return NoLimitPolicy()
    if name == "ts":
        return DTMTS(levels, amb_trp_c=amb_trp_c, dram_trp_c=dram_trp_c)
    if name == "bw":
        return DTMBW(levels)
    if name == "acg":
        return DTMACG(levels)
    if name == "cdvfs":
        return DTMCDVFS(levels)
    if name == "comb":
        return DTMCOMB(levels, min_active=1)
    if name.endswith("+pid"):
        scheme = name.removesuffix("+pid")
        return PIDPolicy(scheme, levels=levels)
    raise ConfigurationError(f"unknown Chapter 4 policy {name!r}")


#: Shared window models (memoized level-1 evaluations), per process,
#: keyed by the memory envelope they were built for (None = default).
_window_models: dict[MemoryEnvelope | None, WindowModel] = {}
_server_models: dict[str, ServerWindowModel] = {}


def _shared_window_model(envelope: MemoryEnvelope | None = None) -> WindowModel:
    model = _window_models.get(envelope)
    if model is None:
        model = WindowModel(envelope=envelope)
        _window_models[envelope] = model
    return model


def _chapter4_engine(spec: Chapter4Spec, extra_observers: tuple = ()):
    """A stepping engine for one Chapter 4 spec (checkpoint/slice surface)."""
    if spec.cooling not in COOLING_CONFIGS:
        raise ConfigurationError(f"unknown cooling {spec.cooling!r}")
    ambient = ISOLATED_AMBIENT if spec.ambient == "isolated" else INTEGRATED_AMBIENT
    if spec.interaction is not None:
        ambient = ambient.with_interaction(spec.interaction)
    if spec.inlet_delta_c != 0.0:
        ambient = ambient.with_inlet_delta(spec.inlet_delta_c)
    envelope: MemoryEnvelope | None = None
    if spec.bandwidth_scale != 1.0:
        if spec.bandwidth_scale <= 0:
            raise ConfigurationError("bandwidth_scale must be positive")
        base = MemoryEnvelope()
        envelope = replace(
            base,
            peak_bandwidth_bytes_per_s=(
                base.peak_bandwidth_bytes_per_s * spec.bandwidth_scale
            ),
        )
    config = SimulationConfig(
        mix_name=spec.mix,
        copies=spec.copies,
        cooling=COOLING_CONFIGS[spec.cooling],
        ambient=ambient,
        dtm_interval_s=spec.dtm_interval_s,
        record_trace=spec.record_trace,
        physical_channels=spec.channels,
        dimms_per_channel=spec.dimms_per_channel,
        duty_cycle=spec.duty_cycle,
        duty_period_s=spec.duty_period_s,
        envelope=envelope if envelope is not None else MemoryEnvelope(),
    )
    policy = make_chapter4_policy(
        spec.policy, amb_trp_c=spec.amb_trp_c, dram_trp_c=spec.dram_trp_c
    )
    simulator = TwoLevelSimulator(
        config, policy, window_model=_shared_window_model(envelope)
    )
    return simulator.engine(extra_observers=extra_observers)


def _execute_chapter4(spec: Chapter4Spec) -> RunResult:
    """Simulate one Chapter 4 spec (no caching — the engine provides it)."""
    return _chapter4_engine(spec).run_to_completion()


def run_chapter4(spec: Chapter4Spec) -> RunResult:
    """Run (or recall) one Chapter 4 experiment through the engine."""
    return run(spec)


# ---------------------------------------------------------------------------
# Chapter 5 (testbed) experiments
# ---------------------------------------------------------------------------

#: Paper presentation order of the measured policies.
CHAPTER5_POLICIES = ("no-limit", "bw", "acg", "cdvfs", "comb")


@dataclass(frozen=True)
class Chapter5Spec:
    """One Chapter 5 server measurement."""

    kind: ClassVar[str] = "ch5"
    #: Presentation-only fields left out of the cache key (see ch4).
    KEY_EXCLUDED_FIELDS: ClassVar[tuple[str, ...]] = ("scenario",)

    platform: str = "PE1950"
    mix: str = "W1"
    policy: str = "bw"
    copies: int = 2
    time_slice_s: float | None = None
    ambient_override_c: float | None = None
    amb_tdp_c: float | None = None
    base_frequency_level: int = 0
    #: Name of the scenario that produced this spec (None for ad-hoc runs).
    scenario: str | None = None

    def key(self) -> str:
        """Stable hash key of this spec."""
        return spec_key(self)


def _platform_for(spec: Chapter5Spec) -> ServerPlatform:
    base = PLATFORMS.get(spec.platform)
    if base is None:
        raise ConfigurationError(f"unknown platform {spec.platform!r}")
    if spec.amb_tdp_c is not None:
        return base.with_levels(base.levels.with_amb_tdp(spec.amb_tdp_c))
    return base


def make_chapter5_policy(name: str, platform: ServerPlatform) -> DTMPolicy:
    """Construct a Chapter 5 policy by short name (min one core/socket)."""
    if name == "no-limit":
        return NoLimitPolicy(cores=platform.total_cores)
    if name == "bw":
        return DTMBW(platform.levels, cores=platform.total_cores)
    if name == "acg":
        return DTMACG(platform.levels, cores=platform.total_cores, min_active=2)
    if name == "cdvfs":
        return DTMCDVFS(platform.levels, cores=platform.total_cores, stopped_level=4)
    if name == "comb":
        return DTMCOMB(platform.levels, cores=platform.total_cores, min_active=2)
    raise ConfigurationError(f"unknown Chapter 5 policy {name!r}")


def _chapter5_engine(spec: Chapter5Spec, extra_observers: tuple = ()):
    """A stepping engine for one Chapter 5 spec (checkpoint/slice surface)."""
    platform = _platform_for(spec)
    model_key = f"{spec.platform}|{spec.amb_tdp_c}"
    model = _server_models.get(model_key)
    if model is None:
        model = ServerWindowModel(platform)
        _server_models[model_key] = model
    policy = make_chapter5_policy(spec.policy, platform)
    simulator = ServerSimulator(
        platform,
        policy,
        spec.mix,
        copies=spec.copies,
        time_slice_s=spec.time_slice_s,
        ambient_override_c=spec.ambient_override_c,
        window_model=model,
        base_frequency_level=spec.base_frequency_level,
    )
    return simulator.engine(extra_observers=extra_observers)


def _execute_chapter5(spec: Chapter5Spec) -> ServerRunResult:
    """Measure one Chapter 5 spec (no caching — the engine provides it)."""
    return _chapter5_engine(spec).run_to_completion()


def run_chapter5(spec: Chapter5Spec) -> ServerRunResult:
    """Run (or recall) one Chapter 5 experiment through the engine."""
    return run(spec)


# ---------------------------------------------------------------------------
# Result codecs (JSON payloads for the ResultStore layers)
# ---------------------------------------------------------------------------


def trace_to_dict(trace: TemperatureTrace) -> dict:
    """Serialize a temperature trace."""
    return {
        "times_s": trace.times_s,
        "amb_c": trace.amb_c,
        "dram_c": trace.dram_c,
        "ambient_c": trace.ambient_c,
    }


def trace_from_dict(raw: dict) -> TemperatureTrace:
    """Rebuild a temperature trace from its payload."""
    trace = TemperatureTrace()
    for t, a, d, amb in zip(
        raw.get("times_s", []),
        raw.get("amb_c", []),
        raw.get("dram_c", []),
        raw.get("ambient_c", []),
    ):
        trace.append(t, a, d, amb)
    return trace


def run_result_to_dict(result: RunResult) -> dict:
    """Serialize a :class:`RunResult` (trace included)."""
    payload = {k: v for k, v in result.__dict__.items() if k != "trace"}
    payload["trace"] = trace_to_dict(result.trace)
    return payload


def run_result_from_dict(raw: dict) -> RunResult:
    """Rebuild a :class:`RunResult` from its payload."""
    raw = dict(raw)
    trace = trace_from_dict(raw.pop("trace", {}))
    return RunResult(trace=trace, **raw)


def server_result_to_dict(result: ServerRunResult) -> dict:
    """Serialize a :class:`ServerRunResult` (trace included)."""
    payload = {k: v for k, v in result.__dict__.items() if k != "trace"}
    payload["trace"] = trace_to_dict(result.trace)
    return payload


def server_result_from_dict(raw: dict) -> ServerRunResult:
    """Rebuild a :class:`ServerRunResult` from its payload."""
    raw = dict(raw)
    trace = trace_from_dict(raw.pop("trace", {}))
    return ServerRunResult(trace=trace, **raw)


register_runner(
    "ch4",
    _execute_chapter4,
    encode=run_result_to_dict,
    decode=run_result_from_dict,
    spec_type=Chapter4Spec,
    make_engine=_chapter4_engine,
)
register_runner(
    "ch5",
    _execute_chapter5,
    encode=server_result_to_dict,
    decode=server_result_from_dict,
    spec_type=Chapter5Spec,
    make_engine=_chapter5_engine,
)


# ---------------------------------------------------------------------------
# Cache-schema rewriters
# ---------------------------------------------------------------------------
#
# CACHE_VERSION v1 -> v2 happened when the scenario knobs landed:
# Chapter4Spec gained inlet_delta_c / channels / dimms_per_channel /
# duty_cycle / duty_period_s / bandwidth_scale (all at defaults that
# reproduce the v1 physics), Chapter5Spec gained only the key-excluded
# scenario label.  A v1 entry therefore names the same physical run as
# the v2 spec with those fields at their defaults, so migration is
# "add the defaults, re-key" — the payload moves verbatim.

def _ch4_v1_to_v2(fields: dict, payload: dict) -> tuple[dict, dict]:
    upgraded = dict(fields)
    upgraded.setdefault("inlet_delta_c", 0.0)
    upgraded.setdefault("channels", 4)
    upgraded.setdefault("dimms_per_channel", 4)
    upgraded.setdefault("duty_cycle", 1.0)
    upgraded.setdefault("duty_period_s", 0.1)
    upgraded.setdefault("bandwidth_scale", 1.0)
    return upgraded, payload


def _ch5_v1_to_v2(fields: dict, payload: dict) -> tuple[dict, dict]:
    # v2 added no key-relevant ch5 fields; only the version string in
    # the key hash changed.
    return dict(fields), payload


register_rewriter("ch4", "v1", "v2", _ch4_v1_to_v2)
register_rewriter("ch5", "v1", "v2", _ch5_v1_to_v2)
