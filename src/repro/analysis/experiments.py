"""Deprecated alias of :mod:`repro.analysis.specs`.

This module kept the Chapter 4/5 run specs and runners through PR 2;
they now live in :mod:`repro.analysis.specs`, and the supported
programmatic entry point is the stable client API in :mod:`repro.api`
(:class:`~repro.api.ReproClient` plus typed request objects and
versioned :class:`~repro.api.ResultEnvelope` results).

Importing this module keeps old scripts working unchanged but emits a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.analysis.specs import *  # noqa: F401,F403
from repro.analysis.specs import __all__  # noqa: F401

warnings.warn(
    "repro.analysis.experiments is deprecated: use the stable client API "
    "in repro.api (ReproClient + typed requests), or repro.analysis.specs "
    "for the raw Chapter 4/5 run specs",
    DeprecationWarning,
    stacklevel=2,
)
