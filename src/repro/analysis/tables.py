"""Table rendering: fixed-width terminal output, CSV export, sparklines."""

from __future__ import annotations

from repro.errors import ConfigurationError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _render_cells(
    headers: list[str], rows: list[list[object]], float_format: str
) -> list[list[str]]:
    """Validate row widths and stringify every cell.

    Floats format with ``float_format``; everything else with ``str``.
    """
    if any(len(row) != len(headers) for row in rows):
        raise ConfigurationError("every row must match the header width")
    return [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]


def format_table(
    headers: list[str],
    rows: list[list[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render a fixed-width ASCII table."""
    rendered = _render_cells(headers, rows, float_format)
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_csv(
    headers: list[str],
    rows: list[list[object]],
    float_format: str = "{:.6g}",
) -> str:
    """Render a table as minimal CSV (no quoting; cells must be delimiter-free).

    Campaign exports go through this, so floats use a round-trippable
    general format rather than the fixed display precision.
    """
    cells = _render_cells(headers, rows, float_format)
    for row in [list(headers)] + cells:
        for cell in row:
            if "," in cell or "\n" in cell:
                raise ConfigurationError(
                    f"CSV cell may not contain a comma or newline: {cell!r}"
                )
    lines = [",".join(headers)]
    lines.extend(",".join(row) for row in cells)
    return "\n".join(lines)


def sparkline(values: list[float], width: int = 60) -> str:
    """A one-line unicode sparkline of a series (downsampled to ``width``)."""
    if not values:
        return ""
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    low = min(values)
    high = max(values)
    if high == low:
        return _SPARK_LEVELS[0] * len(values)
    span = high - low
    chars = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def format_series(
    label: str, values: list[float], low: float | None = None, high: float | None = None
) -> str:
    """Label + min/max annotation + sparkline, for temperature traces."""
    if not values:
        return f"{label}: (empty)"
    lo = min(values) if low is None else low
    hi = max(values) if high is None else high
    return f"{label}: [{lo:7.2f} .. {hi:7.2f}] {sparkline(values)}"
