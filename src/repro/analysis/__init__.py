"""Analysis utilities: normalization, ASCII tables, experiment harness.

- :mod:`repro.analysis.normalize` — normalization helpers used by every
  figure (the paper reports runtimes/traffic/energy relative to either
  the no-limit baseline or DTM-TS/DTM-BW).
- :mod:`repro.analysis.tables` — fixed-width table and sparkline
  rendering so benches print figures legibly in a terminal.
- :mod:`repro.analysis.series` — time-series helpers for the temperature
  trace figures.
- :mod:`repro.analysis.experiments` — the shared experiment runner with
  in-process and on-disk caching, so the 25+ benches don't recompute the
  same (workload, policy, cooling) runs.
"""

from repro.analysis.normalize import geometric_mean, normalize_map
from repro.analysis.tables import format_table, sparkline
from repro.analysis.series import downsample, summarize_series
from repro.analysis.experiments import (
    Chapter4Spec,
    Chapter5Spec,
    bench_copies,
    run_chapter4,
    run_chapter5,
)

__all__ = [
    "geometric_mean",
    "normalize_map",
    "format_table",
    "sparkline",
    "downsample",
    "summarize_series",
    "Chapter4Spec",
    "Chapter5Spec",
    "bench_copies",
    "run_chapter4",
    "run_chapter5",
]
