"""Analysis utilities: normalization, tables, experiment specs, campaigns.

- :mod:`repro.analysis.normalize` — normalization helpers used by every
  figure (the paper reports runtimes/traffic/energy relative to either
  the no-limit baseline or DTM-TS/DTM-BW).
- :mod:`repro.analysis.tables` — fixed-width table, CSV, and sparkline
  rendering so benches print figures legibly in a terminal.
- :mod:`repro.analysis.series` — time-series helpers for the temperature
  trace figures.
- :mod:`repro.analysis.specs` — the Chapter 4/5 run specs and
  runners, registered with the :mod:`repro.campaign` engine, which
  caches them in memory and on disk so the 25+ benches don't recompute
  the same (workload, policy, cooling) runs.  (The old
  ``repro.analysis.experiments`` path still works but warns.)
- :mod:`repro.analysis.campaigns` — named parameter grids for the
  ``python -m repro campaign`` subcommand.
"""

from repro.analysis.normalize import geometric_mean, normalize_map
from repro.analysis.tables import format_csv, format_table, sparkline
from repro.analysis.series import downsample, summarize_series
from repro.analysis.specs import (
    Chapter4Spec,
    Chapter5Spec,
    bench_copies,
    run_chapter4,
    run_chapter5,
)
from repro.analysis.campaigns import CAMPAIGN_GRIDS, run_campaign

__all__ = [
    "geometric_mean",
    "normalize_map",
    "format_csv",
    "format_table",
    "sparkline",
    "downsample",
    "summarize_series",
    "Chapter4Spec",
    "Chapter5Spec",
    "bench_copies",
    "run_chapter4",
    "run_chapter5",
    "CAMPAIGN_GRIDS",
    "run_campaign",
]
