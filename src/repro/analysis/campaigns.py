"""Named campaign grids: declarative (mix x policy x ...) sweeps.

The CLI's ``campaign`` subcommand — and anything else that wants a
full results table instead of a single run — goes through here.  A
named grid pairs a spec sweep with the metric columns its table
reports; the campaign engine handles expansion, caching, parallelism,
and deterministic ordering, so the same grid run with any ``--jobs``
value produces an identical table.

Every grid cell is composed through the scenario engine
(:mod:`repro.scenarios`): the ``ch4``/``ch5`` grids lower canonical
:func:`~repro.scenarios.scenario.grid_scenario` cells, and the
``scenarios`` grid sweeps the registered scenario library itself,
optionally crossed with extra mixes or policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.analysis.specs import (
    CHAPTER4_POLICY_CHOICES,
    CHAPTER5_POLICIES,
    Chapter4Spec,
    Chapter5Spec,
)
from repro.campaign import Campaign, ResultStore
from repro.errors import ConfigurationError
from repro.scenarios import get_scenario, grid_scenario, scenario_names


@dataclass(frozen=True)
class NamedGrid:
    """One named sweep: spec expansion plus table columns."""

    name: str
    description: str
    #: Policy names this grid accepts.
    policy_choices: tuple[str, ...]
    #: CLI flag selecting this grid's third axis (e.g. "--coolings").
    variant_flag: str
    #: Variant used when the flag is not given.
    variant_default: str
    #: (mixes, policies, variants, copies) -> specs.
    expand: Callable[
        [Sequence[str], Sequence[str], Sequence[str], int], list[Any]
    ]
    headers: list[str]
    #: (spec, result) -> one table row.
    row: Callable[[Any, Any], list[Any]]
    #: Mixes used when ``--mixes`` is not given; empty means "keep each
    #: scenario's own mix" (only meaningful for the scenarios grid).
    mixes_default: tuple[str, ...] = ("W1",)
    #: Policies used when ``--policies`` is not given; empty means "keep
    #: each scenario's own policy".
    policies_default: tuple[str, ...] | None = None

    def default_policies(self) -> list[str]:
        """The policy sweep when the user gives no ``--policies``."""
        if self.policies_default is None:
            return list(self.policy_choices)
        return list(self.policies_default)


def _expand_ch4(
    mixes: Sequence[str],
    policies: Sequence[str],
    coolings: Sequence[str],
    copies: int,
) -> list[Chapter4Spec]:
    return [
        grid_scenario("ch4", mix, policy, cooling=cooling).spec(copies=copies)
        for cooling in coolings
        for mix in mixes
        for policy in policies
    ]


def _ch4_row(spec: Chapter4Spec, result: Any) -> list[Any]:
    return [
        spec.cooling,
        spec.mix,
        spec.policy,
        result.runtime_s,
        result.traffic_bytes / 1e12,
        result.cpu_energy_j / 1e3,
        result.memory_energy_j / 1e3,
        result.peak_amb_c,
        result.peak_dram_c,
        result.shutdown_fraction,
    ]


def _expand_ch5(
    mixes: Sequence[str],
    policies: Sequence[str],
    platforms: Sequence[str],
    copies: int,
) -> list[Chapter5Spec]:
    return [
        grid_scenario("ch5", mix, policy, platform=platform).spec(copies=copies)
        for platform in platforms
        for mix in mixes
        for policy in policies
    ]


def _ch5_row(spec: Chapter5Spec, result: Any) -> list[Any]:
    return [
        spec.platform,
        spec.mix,
        spec.policy,
        result.runtime_s,
        result.l2_misses / 1e9,
        result.average_cpu_power_w,
        result.mean_inlet_c,
        result.peak_amb_c,
    ]


def _expand_scenarios(
    mixes: Sequence[str],
    policies: Sequence[str],
    names: Sequence[str],
    copies: int,
) -> list[Any]:
    expanded: list[str] = []
    for token in names:
        if token == "all":
            expanded.extend(scenario_names())
        else:
            expanded.append(token)
    specs = []
    for name in expanded:
        scenario = get_scenario(name)
        for mix in (mixes or [None]):
            for policy in (policies or [None]):
                specs.append(scenario.spec(copies=copies, mix=mix, policy=policy))
    return specs


def _scenario_row(spec: Any, result: Any) -> list[Any]:
    return [
        spec.scenario or "-",
        spec.kind,
        spec.mix,
        spec.policy,
        result.runtime_s,
        result.traffic_bytes / 1e12,
        result.cpu_energy_j / 1e3,
        result.memory_energy_j / 1e3,
        result.peak_amb_c,
    ]


CAMPAIGN_GRIDS: dict[str, NamedGrid] = {
    "ch4": NamedGrid(
        name="ch4",
        description="Chapter 4 two-level simulation sweep "
        "(cooling x mix x policy)",
        policy_choices=CHAPTER4_POLICY_CHOICES,
        variant_flag="--coolings",
        variant_default="AOHS_1.5",
        expand=_expand_ch4,
        headers=[
            "cooling", "mix", "policy", "runtime(s)", "traffic(TB)",
            "cpuE(kJ)", "memE(kJ)", "peak AMB", "peak DRAM", "shutdown",
        ],
        row=_ch4_row,
    ),
    "ch5": NamedGrid(
        name="ch5",
        description="Chapter 5 server measurement sweep "
        "(platform x mix x policy)",
        policy_choices=CHAPTER5_POLICIES,
        variant_flag="--platforms",
        variant_default="PE1950",
        expand=_expand_ch5,
        headers=[
            "platform", "mix", "policy", "runtime(s)", "L2 misses(G)",
            "avg CPU(W)", "mean inlet", "peak AMB",
        ],
        row=_ch5_row,
    ),
    "scenarios": NamedGrid(
        name="scenarios",
        description="registered scenario library "
        "(scenario [x mix] [x policy])",
        policy_choices=tuple(
            dict.fromkeys(CHAPTER4_POLICY_CHOICES + CHAPTER5_POLICIES)
        ),
        variant_flag="--scenarios",
        variant_default="all",
        expand=_expand_scenarios,
        headers=[
            "scenario", "kind", "mix", "policy", "runtime(s)",
            "traffic(TB)", "cpuE(kJ)", "memE(kJ)", "peak AMB",
        ],
        row=_scenario_row,
        mixes_default=(),
        policies_default=(),
    ),
}


def expand_campaign(
    grid_name: str,
    *,
    mixes: Sequence[str] | None = None,
    policies: Sequence[str] | None = None,
    variants: Sequence[str] | None = None,
    copies: int = 2,
) -> tuple[NamedGrid, list[Any]]:
    """Resolve a named grid's axes and expand them into run specs.

    ``None`` axes take the grid's defaults (every policy, the default
    mix/variant); explicit empty sequences stay empty — on the ch4/ch5
    grids (and for ``variants`` everywhere) that fails with "zero
    runs", while the scenarios grid reads an empty mix/policy axis as
    "keep each scenario's own".  This is the one expansion path shared
    by :func:`run_campaign`, the CLI, and the :mod:`repro.api` client,
    so an HTTP campaign and a CLI campaign always name the same cells.
    """
    grid = CAMPAIGN_GRIDS.get(grid_name)
    if grid is None:
        raise ConfigurationError(
            f"unknown campaign grid {grid_name!r} (have: {sorted(CAMPAIGN_GRIDS)})"
        )
    mixes = list(grid.mixes_default) if mixes is None else list(mixes)
    policies = grid.default_policies() if policies is None else list(policies)
    variants = [grid.variant_default] if variants is None else list(variants)
    unknown = [p for p in policies if p not in grid.policy_choices]
    if unknown:
        raise ConfigurationError(
            f"unknown {grid_name} policies {unknown} "
            f"(choices: {list(grid.policy_choices)})"
        )
    specs = grid.expand(mixes, policies, variants, copies)
    if not specs:
        raise ConfigurationError("campaign expanded to zero runs")
    return grid, specs


def run_campaign(
    grid_name: str,
    *,
    mixes: Sequence[str] | None = None,
    policies: Sequence[str] | None = None,
    variants: Sequence[str] | None = None,
    copies: int = 2,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> tuple[list[str], list[list[Any]]]:
    """Run a named grid and return its (headers, rows) table.

    ``variants`` selects the grid's third axis — cooling configurations
    for ``ch4``, server platforms for ``ch5``, scenario names (or
    ``all``) for ``scenarios``.  Rows come back in deterministic sweep
    order regardless of ``jobs``.
    """
    grid, specs = expand_campaign(
        grid_name, mixes=mixes, policies=policies, variants=variants, copies=copies
    )
    results = Campaign(specs, jobs=jobs, store=store).run()
    rows = [grid.row(spec, result) for spec, result in zip(specs, results)]
    return list(grid.headers), rows
