"""Normalization helpers for the figure benches."""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def normalize_map(values: dict[str, float], baseline_key: str) -> dict[str, float]:
    """Divide every value by the baseline entry's value."""
    if baseline_key not in values:
        raise ConfigurationError(f"baseline {baseline_key!r} missing from values")
    base = values[baseline_key]
    if base == 0:
        raise ConfigurationError("baseline value must be non-zero")
    return {key: value / base for key, value in values.items()}


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (the right average for normalized ratios)."""
    if not values:
        raise ConfigurationError("geometric mean of empty list")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: list[float]) -> float:
    """Plain average."""
    if not values:
        raise ConfigurationError("mean of empty list")
    return sum(values) / len(values)


def improvement_percent(baseline: float, improved: float) -> float:
    """Percentage improvement of ``improved`` over ``baseline``.

    Runtime semantics: smaller is better, so a drop from 1.80 to 1.50
    reports +16.7%.
    """
    if baseline <= 0:
        raise ConfigurationError("baseline must be positive")
    return (baseline - improved) / baseline * 100.0
