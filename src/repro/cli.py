"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``simulate`` — run one (mix, policy, cooling) pair through the
  two-level simulator and print the result summary.
- ``server`` — run one (platform, mix, policy) measurement on a
  Chapter 5 server model.
- ``compare`` — run every Chapter 4 scheme on one mix and print the
  normalized table (the Fig. 4.3 view).
- ``homogeneous`` — the §5.4.1 warm-up experiment for one program.
- ``campaign`` — expand a named (mix x policy x cooling/platform) grid
  through the parallel campaign engine and print or export the table.
- ``scenarios`` — list the registered scenario library, or run named
  scenarios through the campaign engine.

Every run — ad-hoc or named — is composed by the scenario engine
(:mod:`repro.scenarios`) and executed through the campaign engine, so
results are cached, deduplicated, and identical across entry points.

Examples::

    python -m repro simulate --mix W1 --policy acg
    python -m repro simulate --mix W2 --policy cdvfs+pid --cooling FDHS_1.0
    python -m repro compare --mix W3 --copies 1
    python -m repro server --platform SR1500AL --mix W1 --policy comb
    python -m repro homogeneous --platform SR1500AL --app swim
    python -m repro campaign --mixes W1,W2 --policies ts,acg --jobs 4
    python -m repro campaign --grid ch5 --mixes W1 --policies bw,comb \\
        --platforms PE1950,SR1500AL --export results/campaign.csv
    python -m repro scenarios list --kind ch4
    python -m repro scenarios run hot-ambient throttle-storm --copies 1
    python -m repro campaign --grid scenarios --scenarios idle-burst,narrow-pipe
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.campaigns import CAMPAIGN_GRIDS, run_campaign
from repro.analysis.experiments import (
    CHAPTER4_POLICIES,
    CHAPTER4_POLICY_CHOICES,
    CHAPTER5_POLICIES,
)
from repro.analysis.tables import format_csv, format_series, format_table
from repro.campaign import Campaign, run as campaign_run
from repro.errors import ReproError
from repro.params.thermal_params import COOLING_CONFIGS
from repro.scenarios import get_scenario, grid_scenario, iter_scenarios
from repro.testbed.platforms import PE1950, SR1500AL
from repro.testbed.runner import run_homogeneous

_PLATFORMS = {"PE1950": PE1950, "SR1500AL": SR1500AL}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thermal modeling and management of DRAM memory systems "
        "(ISCA 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="one Chapter 4 simulation run")
    simulate.add_argument("--mix", default="W1")
    simulate.add_argument("--policy", default="acg", choices=CHAPTER4_POLICY_CHOICES)
    simulate.add_argument("--cooling", default="AOHS_1.5", choices=sorted(COOLING_CONFIGS))
    simulate.add_argument("--ambient", default="isolated", choices=("isolated", "integrated"))
    simulate.add_argument("--copies", type=int, default=2)

    compare = sub.add_parser("compare", help="all Chapter 4 schemes on one mix")
    compare.add_argument("--mix", default="W1")
    compare.add_argument("--cooling", default="AOHS_1.5", choices=sorted(COOLING_CONFIGS))
    compare.add_argument("--copies", type=int, default=2)

    server = sub.add_parser("server", help="one Chapter 5 server measurement")
    server.add_argument("--platform", default="PE1950", choices=sorted(_PLATFORMS))
    server.add_argument("--mix", default="W1")
    server.add_argument("--policy", default="acg", choices=CHAPTER5_POLICIES)
    server.add_argument("--copies", type=int, default=2)

    homogeneous = sub.add_parser("homogeneous", help="§5.4.1 warm-up experiment")
    homogeneous.add_argument("--platform", default="SR1500AL", choices=sorted(_PLATFORMS))
    homogeneous.add_argument("--app", default="swim")
    homogeneous.add_argument("--duration", type=float, default=500.0)

    campaign = sub.add_parser(
        "campaign", help="run a named experiment grid through the campaign engine"
    )
    campaign.add_argument(
        "--grid", default="ch4", choices=sorted(CAMPAIGN_GRIDS),
        help="named grid: ch4 (simulation), ch5 (server measurement), "
        "or scenarios (the registered library)",
    )
    campaign.add_argument(
        "--mixes", default=None,
        help="comma-separated workload mixes (default: W1, or each "
        "scenario's own mix for the scenarios grid)",
    )
    campaign.add_argument(
        "--policies", default=None,
        help="comma-separated policies (default: every policy of the grid, "
        "or each scenario's own policy for the scenarios grid)",
    )
    campaign.add_argument(
        "--coolings", default=None,
        help="comma-separated cooling configs (ch4 grid only; "
        "default AOHS_1.5)",
    )
    campaign.add_argument(
        "--platforms", default=None,
        help="comma-separated server platforms (ch5 grid only; "
        "default PE1950)",
    )
    campaign.add_argument(
        "--scenarios", default=None,
        help="comma-separated scenario names, or 'all' "
        "(scenarios grid only; default all)",
    )
    campaign.add_argument("--copies", type=int, default=2)
    campaign.add_argument(
        "--jobs", type=int, default=1,
        help="parallel worker processes (results are order-deterministic)",
    )
    campaign.add_argument(
        "--export", default=None, metavar="PATH",
        help="also write the table as CSV to PATH",
    )

    scenarios = sub.add_parser(
        "scenarios", help="list or run the registered scenario library"
    )
    action = scenarios.add_subparsers(dest="action", required=True)
    s_list = action.add_parser("list", help="show every registered scenario")
    s_list.add_argument("--kind", default=None, choices=("ch4", "ch5"))
    s_list.add_argument("--tag", default=None, help="filter by scenario tag")
    s_run = action.add_parser("run", help="run one or more scenarios by name")
    s_run.add_argument("names", nargs="+", metavar="NAME")
    s_run.add_argument("--copies", type=int, default=2)
    s_run.add_argument(
        "--jobs", type=int, default=1,
        help="parallel worker processes (results are order-deterministic)",
    )
    s_run.add_argument(
        "--export", default=None, metavar="PATH",
        help="also write the table as CSV to PATH",
    )
    return parser


def _export_csv(path_arg: str | None, headers: list[str], rows: list[list]) -> None:
    if not path_arg:
        return
    path = Path(path_arg)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(format_csv(headers, rows) + "\n")
    print(f"\nexported {path}")


def _cmd_simulate(args: argparse.Namespace) -> int:
    scenario = grid_scenario(
        "ch4", args.mix, args.policy, cooling=args.cooling, ambient=args.ambient
    )
    result = campaign_run(scenario.spec(copies=args.copies))
    rows = [
        ["runtime (s)", result.runtime_s],
        ["traffic (TB)", result.traffic_bytes / 1e12],
        ["L2 misses (G)", result.l2_misses / 1e9],
        ["CPU energy (kJ)", result.cpu_energy_j / 1e3],
        ["memory energy (kJ)", result.memory_energy_j / 1e3],
        ["peak AMB (degC)", result.peak_amb_c],
        ["peak DRAM (degC)", result.peak_dram_c],
        ["shutdown fraction", result.shutdown_fraction],
    ]
    print(f"{result.policy} on {args.mix} @ {args.cooling} ({args.ambient} model):\n")
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    specs = [
        grid_scenario("ch4", args.mix, policy, cooling=args.cooling).spec(
            copies=args.copies
        )
        for policy in CHAPTER4_POLICIES
    ]
    results = Campaign(specs).run()
    baseline = results[0]
    rows = [
        [result.policy,
         result.runtime_s / baseline.runtime_s,
         result.traffic_bytes / baseline.traffic_bytes,
         result.cpu_energy_j / baseline.cpu_energy_j,
         result.peak_amb_c]
        for result in results
    ]
    print(f"{args.mix} @ {args.cooling}, normalized to No-limit:\n")
    print(format_table(["scheme", "runtime", "traffic", "cpu E", "peak AMB"], rows))
    return 0


def _cmd_server(args: argparse.Namespace) -> int:
    scenario = grid_scenario(
        "ch5", args.mix, args.policy, platform=args.platform
    )
    result = campaign_run(scenario.spec(copies=args.copies))
    rows = [
        ["runtime (s)", result.runtime_s],
        ["L2 misses (G)", result.l2_misses / 1e9],
        ["avg CPU power (W)", result.average_cpu_power_w],
        ["mean inlet (degC)", result.mean_inlet_c],
        ["peak AMB (degC)", result.peak_amb_c],
    ]
    print(f"{result.policy} on {args.mix} @ {args.platform}:\n")
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_homogeneous(args: argparse.Namespace) -> int:
    platform = _PLATFORMS[args.platform]
    trace, _ = run_homogeneous(platform, args.app, duration_s=args.duration)
    print(f"4x {args.app} on {platform.name}, {args.duration:.0f} s from idle:\n")
    print(format_series("AMB", trace.amb_c))
    crossed = next(
        (t for t, a in zip(trace.times_s, trace.amb_c) if a >= 100.0), None
    )
    print(f"\nstart {trace.amb_c[0]:.1f} degC, max {max(trace.amb_c):.1f} degC, "
          f"100 degC reached: {'never' if crossed is None else f'{crossed:.0f} s'}")
    return 0


def _split_csv_arg(raw: str) -> list[str]:
    return [item.strip() for item in raw.split(",") if item.strip()]


def _cmd_campaign(args: argparse.Namespace) -> int:
    grid = CAMPAIGN_GRIDS[args.grid]
    mixes = (
        _split_csv_arg(args.mixes)
        if args.mixes is not None
        else list(grid.mixes_default)
    )
    policies = (
        _split_csv_arg(args.policies)
        if args.policies is not None
        else grid.default_policies()
    )
    all_variant_flags = {g.variant_flag for g in CAMPAIGN_GRIDS.values()}
    for flag in sorted(all_variant_flags - {grid.variant_flag}):
        if getattr(args, flag.lstrip("-")) is not None:
            print(
                f"error: {flag} does not apply to the {args.grid} grid",
                file=sys.stderr,
            )
            return 2
    raw_variants = getattr(args, grid.variant_flag.lstrip("-"))
    variants = _split_csv_arg(
        raw_variants if raw_variants is not None else grid.variant_default
    )
    headers, rows = run_campaign(
        args.grid,
        mixes=mixes,
        policies=policies,
        variants=variants,
        copies=args.copies,
        jobs=args.jobs,
    )
    print(f"campaign {args.grid}: {len(rows)} runs\n")
    print(format_table(headers, rows))
    _export_csv(args.export, headers, rows)
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    if args.action == "list":
        rows = [
            [s.name, s.kind, s.mix, s.policy, ",".join(s.tags), s.description]
            for s in iter_scenarios(kind=args.kind, tag=args.tag)
        ]
        if not rows:
            print("no scenarios match the filter", file=sys.stderr)
            return 1
        print(format_table(
            ["name", "kind", "mix", "policy", "tags", "description"], rows
        ))
        return 0
    # action == "run" — same columns as `campaign --grid scenarios`.
    grid = CAMPAIGN_GRIDS["scenarios"]
    scenarios = [get_scenario(name) for name in args.names]
    specs = [scenario.spec(copies=args.copies) for scenario in scenarios]
    results = Campaign(specs, jobs=args.jobs).run()
    rows = [grid.row(spec, result) for spec, result in zip(specs, results)]
    print(f"scenarios: {len(rows)} runs\n")
    print(format_table(grid.headers, rows))
    _export_csv(args.export, grid.headers, rows)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "compare": _cmd_compare,
        "server": _cmd_server,
        "homogeneous": _cmd_homogeneous,
        "campaign": _cmd_campaign,
        "scenarios": _cmd_scenarios,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        # Every library failure surfaces as one clean line, never a
        # traceback: unknown scenarios, bad grid axes, unknown mixes, ...
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
