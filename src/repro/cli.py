"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``simulate`` — run one (mix, policy, cooling) pair through the
  two-level simulator and print the result summary.
- ``server`` — run one (platform, mix, policy) measurement on a
  Chapter 5 server model.
- ``compare`` — run every Chapter 4 scheme on one mix and print the
  normalized table (the Fig. 4.3 view).
- ``homogeneous`` — the §5.4.1 warm-up experiment for one program.
- ``campaign`` — expand a named (mix x policy x cooling/platform) grid
  through the parallel campaign engine and print or export the table.

Examples::

    python -m repro simulate --mix W1 --policy acg
    python -m repro simulate --mix W2 --policy cdvfs+pid --cooling FDHS_1.0
    python -m repro compare --mix W3 --copies 1
    python -m repro server --platform SR1500AL --mix W1 --policy comb
    python -m repro homogeneous --platform SR1500AL --app swim
    python -m repro campaign --mixes W1,W2 --policies ts,acg --jobs 4
    python -m repro campaign --grid ch5 --mixes W1 --policies bw,comb \\
        --platforms PE1950,SR1500AL --export results/campaign.csv
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.campaigns import CAMPAIGN_GRIDS, run_campaign
from repro.analysis.experiments import (
    CHAPTER4_POLICIES,
    CHAPTER4_POLICY_CHOICES,
    CHAPTER5_POLICIES,
    make_chapter4_policy,
    make_chapter5_policy,
)
from repro.analysis.tables import format_csv, format_series, format_table
from repro.errors import ConfigurationError
from repro.core.simulator import SimulationConfig, TwoLevelSimulator
from repro.core.windowmodel import WindowModel
from repro.params.thermal_params import (
    COOLING_CONFIGS,
    INTEGRATED_AMBIENT,
    ISOLATED_AMBIENT,
)
from repro.testbed.platforms import PE1950, SR1500AL
from repro.testbed.runner import ServerSimulator, run_homogeneous

_PLATFORMS = {"PE1950": PE1950, "SR1500AL": SR1500AL}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thermal modeling and management of DRAM memory systems "
        "(ISCA 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="one Chapter 4 simulation run")
    simulate.add_argument("--mix", default="W1")
    simulate.add_argument("--policy", default="acg", choices=CHAPTER4_POLICY_CHOICES)
    simulate.add_argument("--cooling", default="AOHS_1.5", choices=sorted(COOLING_CONFIGS))
    simulate.add_argument("--ambient", default="isolated", choices=("isolated", "integrated"))
    simulate.add_argument("--copies", type=int, default=2)

    compare = sub.add_parser("compare", help="all Chapter 4 schemes on one mix")
    compare.add_argument("--mix", default="W1")
    compare.add_argument("--cooling", default="AOHS_1.5", choices=sorted(COOLING_CONFIGS))
    compare.add_argument("--copies", type=int, default=2)

    server = sub.add_parser("server", help="one Chapter 5 server measurement")
    server.add_argument("--platform", default="PE1950", choices=sorted(_PLATFORMS))
    server.add_argument("--mix", default="W1")
    server.add_argument("--policy", default="acg", choices=CHAPTER5_POLICIES)
    server.add_argument("--copies", type=int, default=2)

    homogeneous = sub.add_parser("homogeneous", help="§5.4.1 warm-up experiment")
    homogeneous.add_argument("--platform", default="SR1500AL", choices=sorted(_PLATFORMS))
    homogeneous.add_argument("--app", default="swim")
    homogeneous.add_argument("--duration", type=float, default=500.0)

    campaign = sub.add_parser(
        "campaign", help="run a named experiment grid through the campaign engine"
    )
    campaign.add_argument(
        "--grid", default="ch4", choices=sorted(CAMPAIGN_GRIDS),
        help="named grid: ch4 (simulation) or ch5 (server measurement)",
    )
    campaign.add_argument(
        "--mixes", default="W1", help="comma-separated workload mixes"
    )
    campaign.add_argument(
        "--policies", default=None,
        help="comma-separated policies (default: every policy of the grid)",
    )
    campaign.add_argument(
        "--coolings", default=None,
        help="comma-separated cooling configs (ch4 grid only; "
        "default AOHS_1.5)",
    )
    campaign.add_argument(
        "--platforms", default=None,
        help="comma-separated server platforms (ch5 grid only; "
        "default PE1950)",
    )
    campaign.add_argument("--copies", type=int, default=2)
    campaign.add_argument(
        "--jobs", type=int, default=1,
        help="parallel worker processes (results are order-deterministic)",
    )
    campaign.add_argument(
        "--export", default=None, metavar="PATH",
        help="also write the table as CSV to PATH",
    )
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    ambient = ISOLATED_AMBIENT if args.ambient == "isolated" else INTEGRATED_AMBIENT
    config = SimulationConfig(
        mix_name=args.mix,
        copies=args.copies,
        cooling=COOLING_CONFIGS[args.cooling],
        ambient=ambient,
    )
    policy = make_chapter4_policy(args.policy)
    result = TwoLevelSimulator(config, policy).run()
    rows = [
        ["runtime (s)", result.runtime_s],
        ["traffic (TB)", result.traffic_bytes / 1e12],
        ["L2 misses (G)", result.l2_misses / 1e9],
        ["CPU energy (kJ)", result.cpu_energy_j / 1e3],
        ["memory energy (kJ)", result.memory_energy_j / 1e3],
        ["peak AMB (degC)", result.peak_amb_c],
        ["peak DRAM (degC)", result.peak_dram_c],
        ["shutdown fraction", result.shutdown_fraction],
    ]
    print(f"{policy.name} on {args.mix} @ {args.cooling} ({args.ambient} model):\n")
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    window_model = WindowModel()
    config = SimulationConfig(
        mix_name=args.mix, copies=args.copies, cooling=COOLING_CONFIGS[args.cooling]
    )
    baseline = None
    rows = []
    for name in CHAPTER4_POLICIES:
        policy = make_chapter4_policy(name)
        result = TwoLevelSimulator(config, policy, window_model=window_model).run()
        if baseline is None:
            baseline = result
        rows.append(
            [policy.name,
             result.runtime_s / baseline.runtime_s,
             result.traffic_bytes / baseline.traffic_bytes,
             result.cpu_energy_j / baseline.cpu_energy_j,
             result.peak_amb_c]
        )
    print(f"{args.mix} @ {args.cooling}, normalized to No-limit:\n")
    print(format_table(["scheme", "runtime", "traffic", "cpu E", "peak AMB"], rows))
    return 0


def _cmd_server(args: argparse.Namespace) -> int:
    platform = _PLATFORMS[args.platform]
    policy = make_chapter5_policy(args.policy, platform)
    result = ServerSimulator(platform, policy, args.mix, copies=args.copies).run()
    rows = [
        ["runtime (s)", result.runtime_s],
        ["L2 misses (G)", result.l2_misses / 1e9],
        ["avg CPU power (W)", result.average_cpu_power_w],
        ["mean inlet (degC)", result.mean_inlet_c],
        ["peak AMB (degC)", result.peak_amb_c],
    ]
    print(f"{policy.name} on {args.mix} @ {platform.name}:\n")
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_homogeneous(args: argparse.Namespace) -> int:
    platform = _PLATFORMS[args.platform]
    trace, _ = run_homogeneous(platform, args.app, duration_s=args.duration)
    print(f"4x {args.app} on {platform.name}, {args.duration:.0f} s from idle:\n")
    print(format_series("AMB", trace.amb_c))
    crossed = next(
        (t for t, a in zip(trace.times_s, trace.amb_c) if a >= 100.0), None
    )
    print(f"\nstart {trace.amb_c[0]:.1f} degC, max {max(trace.amb_c):.1f} degC, "
          f"100 degC reached: {'never' if crossed is None else f'{crossed:.0f} s'}")
    return 0


def _split_csv_arg(raw: str) -> list[str]:
    return [item.strip() for item in raw.split(",") if item.strip()]


def _cmd_campaign(args: argparse.Namespace) -> int:
    grid = CAMPAIGN_GRIDS[args.grid]
    policies = (
        _split_csv_arg(args.policies)
        if args.policies is not None
        else list(grid.policy_choices)
    )
    all_variant_flags = {g.variant_flag for g in CAMPAIGN_GRIDS.values()}
    for flag in sorted(all_variant_flags - {grid.variant_flag}):
        if getattr(args, flag.lstrip("-")) is not None:
            print(
                f"error: {flag} does not apply to the {args.grid} grid",
                file=sys.stderr,
            )
            return 2
    raw_variants = getattr(args, grid.variant_flag.lstrip("-"))
    variants = _split_csv_arg(
        raw_variants if raw_variants is not None else grid.variant_default
    )
    try:
        headers, rows = run_campaign(
            args.grid,
            mixes=_split_csv_arg(args.mixes),
            policies=policies,
            variants=variants,
            copies=args.copies,
            jobs=args.jobs,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"campaign {args.grid}: {len(rows)} runs\n")
    print(format_table(headers, rows))
    if args.export:
        path = Path(args.export)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(format_csv(headers, rows) + "\n")
        print(f"\nexported {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "compare": _cmd_compare,
        "server": _cmd_server,
        "homogeneous": _cmd_homogeneous,
        "campaign": _cmd_campaign,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
