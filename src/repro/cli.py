"""Command-line interface: ``python -m repro <command>``.

The CLI is a thin shell over the stable client API (:mod:`repro.api`):
every subcommand lowers its flags to a typed request object, executes
it through one :class:`~repro.api.ReproClient`, and renders either the
human table (default) or the versioned JSON envelope (``--json``).
Because the HTTP service (``serve``) drives the same request objects
through the same client, a warm CLI ``--json`` call and a ``curl`` of
the matching ``/v1/...`` route return byte-identical documents.

Commands:

- ``simulate`` — run one (mix, policy, cooling) pair through the
  two-level simulator and print the result summary.
- ``server`` — run one (platform, mix, policy) measurement on a
  Chapter 5 server model.
- ``compare`` — run every Chapter 4 scheme on one mix and print the
  normalized table (the Fig. 4.3 view).
- ``homogeneous`` — the §5.4.1 warm-up experiment for one program.
- ``campaign`` — expand a named (mix x policy x cooling/platform) grid
  through the parallel campaign engine and print or export the table.
- ``scenarios`` — list the registered scenario library, or run named
  scenarios through the campaign engine.
- ``cache`` — inspect or maintain the on-disk result cache:
  ``stats`` (census with per-version counts), ``prune`` (evict oldest
  entries, sweep stale tmp files), ``migrate`` (re-key
  old-``CACHE_VERSION`` entries through the registered rewriters).
- ``serve`` — expose the API over HTTP (``/v1/simulate``,
  ``/v1/scenarios``, ``/v1/campaign``, ...).
- ``worker`` — run a fleet worker: the same HTTP service, started for
  the ``/v1/worker/{run,health}`` routes an
  :class:`~repro.cluster.HttpWorkerBackend` coordinator dispatches to.

``campaign`` and ``scenarios run`` accept ``--backend
{local,serial,http}``; ``--backend http --workers URL,URL`` shards the
grid across a worker fleet and merges the results into this process's
result store, so a later local run is all cache hits.

``simulate`` and ``server`` accept ``--checkpoint-dir DIR``
(``--checkpoint-every N`` windows, atomic files, removed on
completion) and ``--resume`` — an interrupted long run finishes from
its last checkpoint with bit-identical results.

Every run — ad-hoc or named — is composed by the scenario engine
(:mod:`repro.scenarios`) and executed through the campaign engine, so
results are cached, deduplicated, and identical across entry points.

Examples::

    python -m repro simulate --mix W1 --policy acg
    python -m repro simulate --mix W1 --policy acg --json
    python -m repro compare --mix W3 --copies 1
    python -m repro server --platform SR1500AL --mix W1 --policy comb
    python -m repro homogeneous --platform SR1500AL --app swim
    python -m repro campaign --mixes W1,W2 --policies ts,acg --jobs 4
    python -m repro campaign --grid ch5 --mixes W1 --policies bw,comb \\
        --platforms PE1950,SR1500AL --export results/campaign.csv
    python -m repro scenarios list --kind ch4
    python -m repro scenarios run hot-ambient throttle-storm --copies 1
    python -m repro cache stats --json
    python -m repro cache prune --max-entries 500
    REPRO_CACHE_SHARDS=4 python -m repro cache migrate --dry-run
    python -m repro serve --port 8765
    python -m repro worker --port 9001
    python -m repro campaign --mixes W1,W2 --backend http \\
        --workers http://127.0.0.1:9001,http://127.0.0.1:9002
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import urllib.error
import urllib.request
from pathlib import Path

from repro.analysis.campaigns import CAMPAIGN_GRIDS
from repro.analysis.specs import CHAPTER4_POLICY_CHOICES, CHAPTER5_POLICIES
from repro.analysis.tables import format_csv, format_series, format_table
from repro.api import (
    REQUEST_TYPES,
    SCHEMA_VERSION,
    CampaignRequest,
    CompareRequest,
    ReproClient,
    ScenarioRequest,
    ServerRequest,
    SimulateRequest,
    dumps_canonical,
    results_document,
    scenarios_document,
    serve,
)
from repro.campaign import (
    CACHE_VERSION,
    default_disk_store,
    disk_cache_enabled,
    migrate,
)
from repro.cluster import BACKEND_CHOICES, HttpWorkerBackend, backend_for
from repro.jobs import (
    JobsClient,
    JobsManager,
    QuotaManager,
    TenantPolicy,
)
from repro.errors import ConfigurationError, ReproError
from repro.obs import (
    DEFAULT_SLOS,
    LOG,
    TRACER,
    chrome_trace,
    read_jsonl,
    render_alert_rules,
    with_overrides,
)
from repro.obs.slo import BREACH, NO_DATA, parse_overrides
from repro.params.thermal_params import COOLING_CONFIGS
from repro.testbed.platforms import PLATFORMS
from repro.testbed.runner import run_homogeneous


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thermal modeling and management of DRAM memory systems "
        "(ISCA 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_json_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--json", action="store_true",
            help="emit the versioned result envelope(s) as JSON",
        )

    def add_checkpoint_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--checkpoint-dir", default=None, metavar="DIR",
            help="write an atomic engine checkpoint to DIR every "
            "--checkpoint-every windows (removed when the run "
            "completes), enabling --resume after an interruption",
        )
        command.add_argument(
            "--checkpoint-every", type=int, default=2000, metavar="N",
            help="DTM windows between checkpoints (default 2000)",
        )
        command.add_argument(
            "--resume", action="store_true",
            help="resume from the checkpoint in --checkpoint-dir if one "
            "exists; the result is bit-identical to an uninterrupted run",
        )

    simulate = sub.add_parser("simulate", help="one Chapter 4 simulation run")
    simulate.add_argument("--mix", default="W1")
    simulate.add_argument("--policy", default="acg", choices=CHAPTER4_POLICY_CHOICES)
    simulate.add_argument("--cooling", default="AOHS_1.5", choices=sorted(COOLING_CONFIGS))
    simulate.add_argument("--ambient", default="isolated", choices=("isolated", "integrated"))
    simulate.add_argument("--copies", type=int, default=2)
    add_checkpoint_flags(simulate)
    add_json_flag(simulate)

    compare = sub.add_parser("compare", help="all Chapter 4 schemes on one mix")
    compare.add_argument("--mix", default="W1")
    compare.add_argument("--cooling", default="AOHS_1.5", choices=sorted(COOLING_CONFIGS))
    compare.add_argument("--copies", type=int, default=2)
    add_json_flag(compare)

    server = sub.add_parser("server", help="one Chapter 5 server measurement")
    server.add_argument("--platform", default="PE1950", choices=sorted(PLATFORMS))
    server.add_argument("--mix", default="W1")
    server.add_argument("--policy", default="acg", choices=CHAPTER5_POLICIES)
    server.add_argument("--copies", type=int, default=2)
    add_checkpoint_flags(server)
    add_json_flag(server)

    homogeneous = sub.add_parser("homogeneous", help="§5.4.1 warm-up experiment")
    homogeneous.add_argument("--platform", default="SR1500AL", choices=sorted(PLATFORMS))
    homogeneous.add_argument("--app", default="swim")
    homogeneous.add_argument("--duration", type=float, default=500.0)
    add_json_flag(homogeneous)

    campaign = sub.add_parser(
        "campaign", help="run a named experiment grid through the campaign engine"
    )
    campaign.add_argument(
        "--grid", default="ch4", choices=sorted(CAMPAIGN_GRIDS),
        help="named grid: ch4 (simulation), ch5 (server measurement), "
        "or scenarios (the registered library)",
    )
    campaign.add_argument(
        "--mixes", default=None,
        help="comma-separated workload mixes (default: W1, or each "
        "scenario's own mix for the scenarios grid)",
    )
    campaign.add_argument(
        "--policies", default=None,
        help="comma-separated policies (default: every policy of the grid, "
        "or each scenario's own policy for the scenarios grid)",
    )
    campaign.add_argument(
        "--coolings", default=None,
        help="comma-separated cooling configs (ch4 grid only; "
        "default AOHS_1.5)",
    )
    campaign.add_argument(
        "--platforms", default=None,
        help="comma-separated server platforms (ch5 grid only; "
        "default PE1950)",
    )
    campaign.add_argument(
        "--scenarios", default=None,
        help="comma-separated scenario names, or 'all' "
        "(scenarios grid only; default all)",
    )
    campaign.add_argument("--copies", type=int, default=2)
    campaign.add_argument(
        "--jobs", type=int, default=1,
        help="parallel worker processes (results are order-deterministic)",
    )
    _add_backend_flags(campaign)
    campaign.add_argument(
        "--export", default=None, metavar="PATH",
        help="also write the table as CSV to PATH",
    )
    add_json_flag(campaign)

    scenarios = sub.add_parser(
        "scenarios", help="list or run the registered scenario library"
    )
    action = scenarios.add_subparsers(dest="action", required=True)
    s_list = action.add_parser("list", help="show every registered scenario")
    s_list.add_argument("--kind", default=None, choices=("ch4", "ch5"))
    s_list.add_argument("--tag", default=None, help="filter by scenario tag")
    add_json_flag(s_list)
    s_run = action.add_parser("run", help="run one or more scenarios by name")
    s_run.add_argument("names", nargs="+", metavar="NAME")
    s_run.add_argument("--copies", type=int, default=2)
    s_run.add_argument(
        "--jobs", type=int, default=1,
        help="parallel worker processes (results are order-deterministic)",
    )
    _add_backend_flags(s_run)
    s_run.add_argument(
        "--export", default=None, metavar="PATH",
        help="also write the table as CSV to PATH",
    )
    add_json_flag(s_run)

    def add_serve_flags(command: argparse.ArgumentParser, default_port: int) -> None:
        command.add_argument("--host", default="127.0.0.1")
        command.add_argument(
            "--port", type=int, default=default_port,
            help="TCP port (0 binds an ephemeral port; see --port-file)",
        )
        command.add_argument(
            "--port-file", default=None, metavar="PATH",
            help="write the bound port to PATH once listening",
        )
        command.add_argument(
            "--verbose", action="store_true", help="log each HTTP request"
        )
        command.add_argument(
            "--trace", action="store_true",
            help="record spans for every request/campaign window "
            "(also REPRO_TRACE=1); export with 'repro trace export' "
            "or GET /v1/trace/<trace_id>",
        )
        command.add_argument(
            "--log-json", action="store_true",
            help="emit one-line JSON logs (ts/level/event/trace_id) on "
            "stderr instead of plain text (also REPRO_LOG_JSON=1)",
        )

    cache = sub.add_parser(
        "cache",
        help="inspect or maintain the on-disk result cache "
        "(REPRO_CACHE_DIR / REPRO_CACHE_SHARDS select the store)",
    )
    cache_action = cache.add_subparsers(dest="action", required=True)
    c_stats = cache_action.add_parser(
        "stats",
        help="cache census: entries, bytes, per-version counts, "
        "per-shard breakdown, leftover tmp files",
    )
    add_json_flag(c_stats)
    c_prune = cache_action.add_parser(
        "prune", help="evict oldest entries and sweep stale tmp files"
    )
    c_prune.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="evict oldest entries (by mtime, globally across shards) "
        "down to N; without it only stale tmp files are swept",
    )
    c_prune.add_argument(
        "--tmp-grace-s", type=float, default=None, metavar="SECONDS",
        help="sweep tmp files older than this (default 3600); younger "
        "ones may belong to an in-flight writer",
    )
    add_json_flag(c_prune)
    c_migrate = cache_action.add_parser(
        "migrate",
        help=f"re-key old-CACHE_VERSION entries to {CACHE_VERSION} via "
        "the registered rewriters (payloads move verbatim); on a "
        "sharded store, also move entries the ring no longer places "
        "where they sit",
    )
    c_migrate.add_argument(
        "--dry-run", action="store_true",
        help="report what would migrate without writing",
    )
    add_json_flag(c_migrate)

    serve_cmd = sub.add_parser(
        "serve", help="serve the API over HTTP (see repro.api.service)"
    )
    add_serve_flags(serve_cmd, default_port=8765)
    serve_cmd.add_argument(
        "--jobs", action="store_true",
        help="mount the multi-tenant job service (/v1/jobs): persistent "
        "priority queue, per-tenant quotas, preemptive scheduling",
    )
    serve_cmd.add_argument(
        "--jobs-dir", default=".repro_jobs", metavar="DIR",
        help="directory for persistent job records (default .repro_jobs); "
        "queued and running jobs found here are resumed on start",
    )
    serve_cmd.add_argument(
        "--jobs-backend", default=None, choices=("vector", "http"),
        help="where job cells execute; default runs them in-process, "
        "time-sliced and preemptible at window-slice boundaries",
    )
    serve_cmd.add_argument(
        "--jobs-workers", default=None, metavar="URL[,URL...]",
        help="worker base URLs for --jobs-backend http",
    )
    serve_cmd.add_argument(
        "--jobs-batch-cells", default=None, type=int, metavar="N",
        help="gang width cap for --jobs-backend vector",
    )
    serve_cmd.add_argument(
        "--window-slice", type=int, default=500, metavar="N",
        help="DTM windows per scheduling slice (default 500): the "
        "preemption/cancel/checkpoint granularity of running jobs",
    )
    serve_cmd.add_argument(
        "--quota-max-active", type=int, default=8, metavar="N",
        help="default per-tenant cap on queued+running jobs (default 8)",
    )
    serve_cmd.add_argument(
        "--quota-rate", type=float, default=5.0, metavar="R",
        help="default per-tenant sustained submits/second (default 5)",
    )
    serve_cmd.add_argument(
        "--quota-burst", type=int, default=10, metavar="N",
        help="default per-tenant submit burst headroom (default 10)",
    )
    serve_cmd.add_argument(
        "--tenant-quota", action="append", default=[],
        metavar="NAME=MAX_ACTIVE,RATE,BURST",
        help="override the quota for one tenant (repeatable), e.g. "
        "--tenant-quota batch=2,1,2",
    )
    serve_cmd.add_argument(
        "--max-concurrent-runs", type=int, default=None, metavar="N",
        help="bound on simultaneously executing compute requests "
        "(default: CPU count); excess requests get a structured 429",
    )

    jobs_cmd = sub.add_parser(
        "jobs",
        help="submit and manage jobs on a 'repro serve --jobs' instance",
    )
    jobs_action = jobs_cmd.add_subparsers(dest="action", required=True)

    def add_url_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--url", required=True, metavar="URL",
            help="base URL of a jobs-enabled service "
            "(e.g. http://127.0.0.1:8765)",
        )

    j_submit = jobs_action.add_parser(
        "submit", help="submit one typed request as a job"
    )
    add_url_flag(j_submit)
    j_submit.add_argument(
        "--type", default="simulate", choices=sorted(REQUEST_TYPES),
        dest="request_type", help="request type (default simulate)",
    )
    j_submit.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        dest="fields",
        help="request field (repeatable); list axes are comma-separated, "
        "e.g. --set mixes=W1,W2 --set policies=ts,acg",
    )
    j_submit.add_argument("--tenant", default="default")
    j_submit.add_argument(
        "--priority", type=int, default=0,
        help="higher preempts lower at window-slice boundaries",
    )
    j_submit.add_argument(
        "--wait", action="store_true",
        help="block until the job is terminal and print its result "
        "document (byte-identical to the equivalent warm --json run)",
    )
    j_submit.add_argument("--timeout", type=float, default=600.0, metavar="S")
    add_json_flag(j_submit)
    for action_name, action_help in (
        ("status", "job status with live per-cell progress"),
        ("result", "the completed job's result document"),
        ("cancel", "cancel a queued or running job"),
    ):
        action_cmd = jobs_action.add_parser(action_name, help=action_help)
        action_cmd.add_argument("job_id", metavar="JOB_ID")
        add_url_flag(action_cmd)
        add_json_flag(action_cmd)
    j_list = jobs_action.add_parser("list", help="list known jobs")
    add_url_flag(j_list)
    j_list.add_argument("--tenant", default=None, help="filter by tenant")
    add_json_flag(j_list)

    worker_cmd = sub.add_parser(
        "worker",
        help="run a campaign fleet worker (the /v1/worker HTTP routes an "
        "HttpWorkerBackend coordinator dispatches cells to)",
    )
    add_serve_flags(worker_cmd, default_port=9001)

    trace_cmd = sub.add_parser(
        "trace", help="export recorded traces (Chrome trace-event JSON)"
    )
    trace_action = trace_cmd.add_subparsers(dest="action", required=True)
    t_export = trace_action.add_parser(
        "export",
        help="convert a span source to Chrome trace JSON "
        "(open in Perfetto / chrome://tracing)",
    )
    t_export.add_argument(
        "--input", default=None, metavar="PATH",
        help="JSONL span sink written under REPRO_TRACE_JSONL",
    )
    t_export.add_argument(
        "--url", default=None, metavar="URL",
        help="base URL of a traced service; fetches /v1/trace/<trace-id>",
    )
    t_export.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="trace to export (required with --url; filters --input)",
    )
    t_export.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the Chrome trace here (default stdout)",
    )

    slo_cmd = sub.add_parser(
        "slo", help="evaluate service-level objectives against a service"
    )
    slo_action = slo_cmd.add_subparsers(dest="action", required=True)
    s_check = slo_action.add_parser(
        "check",
        help="fetch /v1/slo and exit nonzero on any breach (CI gate)",
    )
    s_check.add_argument(
        "--url", required=True, metavar="URL",
        help="base URL of a running service (e.g. http://127.0.0.1:8765)",
    )
    s_check.add_argument(
        "--override", action="append", default=[], metavar="NAME=THRESHOLD",
        dest="overrides",
        help="tighten/loosen one SLO threshold client-side (repeatable), "
        "e.g. --override warm_hit_ratio=0.9",
    )
    add_json_flag(s_check)
    s_rules = slo_action.add_parser(
        "rules",
        help="print the SLO set as a Prometheus alerting-rules file "
        "(multi-window burn-rate alerts)",
    )
    s_rules.add_argument(
        "--override", action="append", default=[], metavar="NAME=THRESHOLD",
        dest="overrides", help="per-SLO threshold override (repeatable)",
    )
    return parser


def _add_backend_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--backend", default=None, choices=BACKEND_CHOICES,
        help="where cells execute: local process pool (sized by --jobs), "
        "serial (in-process), vector (in-process, compatible cells "
        "lock-stepped in gangs — bit-identical to serial), or http (a "
        "worker fleet); without the flag, runs are serial unless "
        "--jobs > 1 builds a pool",
    )
    command.add_argument(
        "--workers", default=None, metavar="URL[,URL...]",
        help="comma-separated worker base URLs for --backend http "
        "(start workers with 'python -m repro worker')",
    )
    command.add_argument(
        "--batch-cells", default=None, type=int, metavar="N",
        help="gang width cap for --backend vector (default 16), or "
        "gang dispatch-unit size for --backend http (at least 2)",
    )


def _backend_from_args(args: argparse.Namespace):
    """Build the borrowed execution backend the flags describe (or None)."""
    workers = tuple(_split_csv_arg(args.workers)) if args.workers else ()
    batch_cells = getattr(args, "batch_cells", None)
    if args.backend is None:
        if workers:
            raise ConfigurationError("--workers requires --backend http")
        if batch_cells is not None:
            raise ConfigurationError(
                "--batch-cells requires --backend vector or http"
            )
        return None
    return backend_for(
        args.backend,
        jobs=args.jobs,
        workers=workers,
        batch_cells=batch_cells,
    )


def _print_json(document) -> None:
    print(dumps_canonical(document))


def _export_csv(
    path_arg: str | None,
    headers: list[str],
    rows: list[list],
    quiet: bool = False,
) -> None:
    if not path_arg:
        return
    path = Path(path_arg)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(format_csv(headers, rows) + "\n")
    if quiet:
        # Under --json stdout must stay one parseable document, so the
        # note goes to stderr instead.
        print(f"exported {path}", file=sys.stderr)
    else:
        print(f"\nexported {path}")


def _checkpoint_kwargs(args: argparse.Namespace) -> dict | None:
    """The resumable-run kwargs, or None for a plain run."""
    if args.checkpoint_dir is None:
        if args.resume:
            raise ConfigurationError("--resume requires --checkpoint-dir")
        return None
    if args.checkpoint_every < 1:
        raise ConfigurationError("--checkpoint-every must be >= 1")
    return {
        "checkpoint_dir": args.checkpoint_dir,
        "checkpoint_every": args.checkpoint_every,
        "resume": args.resume,
    }


def _cmd_simulate(args: argparse.Namespace) -> int:
    request = SimulateRequest(
        mix=args.mix, policy=args.policy, cooling=args.cooling,
        ambient=args.ambient, copies=args.copies,
    )
    client = ReproClient()
    checkpointing = _checkpoint_kwargs(args)
    if checkpointing is None:
        envelope = client.simulate(request)
    else:
        envelope = client.simulate_resumable(request, **checkpointing)
    if args.json:
        print(envelope.to_json())
        return 0
    metrics = envelope.metrics
    rows = [
        ["runtime (s)", metrics["runtime_s"]],
        ["traffic (TB)", metrics["traffic_bytes"] / 1e12],
        ["L2 misses (G)", metrics["l2_misses"] / 1e9],
        ["CPU energy (kJ)", metrics["cpu_energy_j"] / 1e3],
        ["memory energy (kJ)", metrics["memory_energy_j"] / 1e3],
        ["peak AMB (degC)", metrics["peak_amb_c"]],
        ["peak DRAM (degC)", metrics["peak_dram_c"]],
        ["shutdown fraction", metrics["shutdown_fraction"]],
    ]
    print(f"{metrics['policy']} on {args.mix} @ {args.cooling} ({args.ambient} model):\n")
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    request = CompareRequest(mix=args.mix, cooling=args.cooling, copies=args.copies)
    envelopes = ReproClient().compare(request)
    if args.json:
        _print_json(results_document(envelopes))
        return 0
    baseline = envelopes[0].metrics
    rows = [
        [metrics["policy"],
         metrics["runtime_s"] / baseline["runtime_s"],
         metrics["traffic_bytes"] / baseline["traffic_bytes"],
         metrics["cpu_energy_j"] / baseline["cpu_energy_j"],
         metrics["peak_amb_c"]]
        for metrics in (envelope.metrics for envelope in envelopes)
    ]
    print(f"{args.mix} @ {args.cooling}, normalized to No-limit:\n")
    print(format_table(["scheme", "runtime", "traffic", "cpu E", "peak AMB"], rows))
    return 0


def _cmd_server(args: argparse.Namespace) -> int:
    request = ServerRequest(
        platform=args.platform, mix=args.mix, policy=args.policy,
        copies=args.copies,
    )
    client = ReproClient()
    checkpointing = _checkpoint_kwargs(args)
    if checkpointing is None:
        envelope = client.server(request)
    else:
        envelope = client.server_resumable(request, **checkpointing)
    if args.json:
        print(envelope.to_json())
        return 0
    metrics = envelope.metrics
    rows = [
        ["runtime (s)", metrics["runtime_s"]],
        ["L2 misses (G)", metrics["l2_misses"] / 1e9],
        ["avg CPU power (W)", metrics["average_cpu_power_w"]],
        ["mean inlet (degC)", metrics["mean_inlet_c"]],
        ["peak AMB (degC)", metrics["peak_amb_c"]],
    ]
    print(f"{metrics['policy']} on {args.mix} @ {args.platform}:\n")
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_homogeneous(args: argparse.Namespace) -> int:
    platform = PLATFORMS[args.platform]
    trace, _ = run_homogeneous(platform, args.app, duration_s=args.duration)
    crossed = next(
        (t for t, a in zip(trace.times_s, trace.amb_c) if a >= 100.0), None
    )
    if args.json:
        _print_json({
            "schema_version": SCHEMA_VERSION,
            "kind": "homogeneous",
            "request": {
                "type": "homogeneous",
                "platform": args.platform,
                "app": args.app,
                "duration_s": args.duration,
            },
            "metrics": {
                "samples": len(trace),
                "start_amb_c": trace.amb_c[0],
                "max_amb_c": max(trace.amb_c),
                "crossed_100c_s": crossed,
            },
        })
        return 0
    print(f"4x {args.app} on {platform.name}, {args.duration:.0f} s from idle:\n")
    print(format_series("AMB", trace.amb_c))
    print(f"\nstart {trace.amb_c[0]:.1f} degC, max {max(trace.amb_c):.1f} degC, "
          f"100 degC reached: {'never' if crossed is None else f'{crossed:.0f} s'}")
    return 0


def _split_csv_arg(raw: str) -> list[str]:
    return [item.strip() for item in raw.split(",") if item.strip()]


def _cmd_campaign(args: argparse.Namespace) -> int:
    grid = CAMPAIGN_GRIDS[args.grid]
    all_variant_flags = {g.variant_flag for g in CAMPAIGN_GRIDS.values()}
    for flag in sorted(all_variant_flags - {grid.variant_flag}):
        if getattr(args, flag.lstrip("-")) is not None:
            print(
                f"error: {flag} does not apply to the {args.grid} grid",
                file=sys.stderr,
            )
            return 2
    raw_variants = getattr(args, grid.variant_flag.lstrip("-"))
    request = CampaignRequest(
        grid=args.grid,
        mixes=(
            tuple(_split_csv_arg(args.mixes)) if args.mixes is not None else None
        ),
        policies=(
            tuple(_split_csv_arg(args.policies))
            if args.policies is not None
            else None
        ),
        variants=(
            tuple(_split_csv_arg(raw_variants))
            if raw_variants is not None
            else None
        ),
        copies=args.copies,
        jobs=args.jobs,
    )
    return _run_grid_command(
        args, request, run="run_campaign", table="campaign_table",
        label=f"campaign {args.grid}",
    )


def _run_grid_command(
    args: argparse.Namespace,
    request,
    *,
    run: str,
    table: str,
    label: str,
) -> int:
    """Shared campaign/scenarios execution: backend wiring, JSON/table."""
    with contextlib.ExitStack() as stack:
        backend = _backend_from_args(args)
        if backend is not None:
            stack.enter_context(backend)
        client = ReproClient(backend=backend)
        if args.json:
            _print_json(results_document(list(getattr(client, run)(request))))
            if args.export:
                # The cells are warm now, so the table pass is all hits
                # served from the local store (no re-dispatch).
                headers, rows = getattr(client, table)(request)
                _export_csv(args.export, headers, rows, quiet=True)
            return 0
        headers, rows = getattr(client, table)(request)
    print(f"{label}: {len(rows)} runs\n")
    print(format_table(headers, rows))
    _export_csv(args.export, headers, rows)
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    client = ReproClient()
    if args.action == "list":
        descriptors = client.list_scenarios(kind=args.kind, tag=args.tag)
        if args.json:
            _print_json(scenarios_document(descriptors))
            return 0
        rows = [
            [d["name"], d["kind"], d["mix"], d["policy"],
             ",".join(d["tags"]), d["description"]]
            for d in descriptors
        ]
        if not rows:
            print("no scenarios match the filter", file=sys.stderr)
            return 1
        print(format_table(
            ["name", "kind", "mix", "policy", "tags", "description"], rows
        ))
        return 0
    # action == "run" — same columns as `campaign --grid scenarios`.
    request = ScenarioRequest(
        names=tuple(args.names), copies=args.copies, jobs=args.jobs
    )
    return _run_grid_command(
        args, request, run="run_scenarios", table="scenarios_table",
        label="scenarios",
    )


def _disk_store_or_fail():
    if not disk_cache_enabled():
        raise ConfigurationError(
            "the disk cache is disabled (REPRO_CACHE=0); nothing to manage"
        )
    return default_disk_store()


def _cmd_cache(args: argparse.Namespace) -> int:
    store = _disk_store_or_fail()
    if args.action == "stats":
        stats = store.stats()
        if args.json:
            _print_json(stats)
            return 0
        print(f"cache root: {stats['root']}")
        print(f"entries:    {stats['entries']} ({stats['bytes']} bytes)")
        print(f"shards:     {stats['shards']}")
        versions = stats["versions"] or {}
        rendered = ", ".join(
            f"{label}={count}" for label, count in sorted(versions.items())
        )
        print(f"versions:   {rendered or 'none'} (current: {CACHE_VERSION})")
        print(f"tmp files:  {stats['tmp_files']}")
        for shard in stats.get("per_shard", ()):
            print(
                f"  shard {Path(shard['root']).name}: "
                f"{shard['entries']} entries, {shard['bytes']} bytes"
            )
        return 0
    if args.action == "prune":
        kwargs = {}
        if args.tmp_grace_s is not None:
            kwargs["tmp_grace_s"] = args.tmp_grace_s
        removed = store.prune(args.max_entries, **kwargs)
        if args.json:
            _print_json({"removed": removed, "root": store.stats()["root"]})
        else:
            print(f"removed {removed} file(s)")
        return 0
    # action == "migrate"
    report = migrate(store, dry_run=args.dry_run)
    moved = None
    if hasattr(store, "rebalance") and not args.dry_run:
        moved = store.rebalance()["moved"]
    document = report.to_dict()
    if moved is not None:
        document["rebalanced"] = moved
    if args.json:
        _print_json(document)
        return 0
    verb = "would migrate" if args.dry_run else "migrated"
    print(
        f"{verb} {report.migrated} of {report.scanned} entries to "
        f"{report.target} (current: {report.current}, "
        f"unrecorded: {report.unrecorded}, "
        f"unmigratable: {report.unmigratable}, failed: {report.failed})"
    )
    if moved is not None:
        print(f"rebalanced {moved} misplaced entr{'y' if moved == 1 else 'ies'}")
    return 0


#: Request fields whose ``--set`` value is a comma-separated name list.
_LIST_FIELDS = {"mixes", "policies", "variants", "names"}


def _parse_field_value(key: str, raw: str):
    """Lower one ``--set KEY=VALUE`` value to its JSON-shaped form.

    JSON literals pass through (``copies=2``, ``jobs=4``); bare names
    stay strings; list axes split on commas (``mixes=W1,W2``).
    """
    try:
        return json.loads(raw)
    except ValueError:
        pass
    if key in _LIST_FIELDS:
        return [part.strip() for part in raw.split(",") if part.strip()]
    return raw


def _job_request_from_flags(args: argparse.Namespace) -> dict:
    request: dict = {"type": args.request_type}
    for item in args.fields:
        key, eq, value = item.partition("=")
        if not eq or not key:
            raise ConfigurationError(
                f"--set expects KEY=VALUE, got {item!r}"
            )
        request[key] = _parse_field_value(key, value)
    return request


def _print_job_line(job: dict) -> None:
    print(
        f"{job['id']}  {job['status']:<9}  tenant={job['tenant']}  "
        f"priority={job['priority']}  "
        f"cells={job['cells_done']}/{job['cells_total']}"
    )


def _cmd_jobs(args: argparse.Namespace) -> int:
    client = JobsClient(args.url)
    if args.action == "submit":
        document = client.submit(
            _job_request_from_flags(args),
            tenant=args.tenant,
            priority=args.priority,
        )
        job = document["job"]
        if args.wait:
            try:
                result = client.wait(job["id"], timeout_s=args.timeout)
            except TimeoutError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            if args.json:
                _print_json(result)
            else:
                _print_job_line(client.status(job["id"])["job"])
            return 0
        if args.json:
            _print_json(document)
        else:
            _print_job_line(job)
        return 0
    if args.action == "list":
        document = client.list(args.tenant)
        if args.json:
            _print_json(document)
        else:
            for job in document["jobs"]:
                _print_job_line(job)
            if not document["jobs"]:
                print("no jobs")
        return 0
    # status / result / cancel take one job_id
    call = {
        "status": client.status,
        "result": client.result,
        "cancel": client.cancel,
    }[args.action]
    document = call(args.job_id)
    if args.json:
        _print_json(document)
        return 0
    if args.action == "result":
        # The result document has no single job line; print it as JSON
        # (it is the same canonical text --json would emit).
        _print_json(document)
        return 0
    _print_job_line(document["job"])
    if args.action == "status":
        for key, done in sorted((document.get("progress") or {}).items()):
            print(f"  {key}: {done}")
    return 0


def _parse_tenant_quota(item: str) -> tuple[str, TenantPolicy]:
    name, eq, spec = item.partition("=")
    parts = spec.split(",")
    if not eq or not name or len(parts) != 3:
        raise ConfigurationError(
            "--tenant-quota expects NAME=MAX_ACTIVE,RATE,BURST, "
            f"got {item!r}"
        )
    try:
        return name, TenantPolicy(
            max_active=int(parts[0]),
            rate_per_s=float(parts[1]),
            burst=int(parts[2]),
        )
    except ValueError as error:
        raise ConfigurationError(f"bad --tenant-quota {item!r}: {error}")


def _jobs_manager_from_flags(args: argparse.Namespace) -> JobsManager:
    backend = None
    if args.jobs_backend == "vector":
        backend = backend_for("vector", batch_cells=args.jobs_batch_cells)
    elif args.jobs_backend == "http":
        workers = [
            url.strip()
            for url in (args.jobs_workers or "").split(",")
            if url.strip()
        ]
        if not workers:
            raise ConfigurationError(
                "--jobs-backend http needs --jobs-workers URL[,URL...]"
            )
        backend = HttpWorkerBackend(workers)
    elif args.jobs_workers or args.jobs_batch_cells is not None:
        raise ConfigurationError(
            "--jobs-workers / --jobs-batch-cells need a matching "
            "--jobs-backend"
        )
    quotas = QuotaManager(
        default=TenantPolicy(
            max_active=args.quota_max_active,
            rate_per_s=args.quota_rate,
            burst=args.quota_burst,
        ),
        overrides=dict(
            _parse_tenant_quota(item) for item in args.tenant_quota
        ),
    )
    return JobsManager(
        args.jobs_dir,
        backend=backend,
        window_slice=args.window_slice,
        quotas=quotas,
    )


def _apply_obs_flags(args: argparse.Namespace) -> None:
    """Honor --trace / --log-json before the service starts."""
    if args.trace:
        TRACER.configure(enabled=True)
    if args.log_json:
        LOG.configure(json_mode=True)


def _fetch_json(url: str) -> dict:
    """GET ``url`` and parse the JSON body (ReproError on failure)."""
    try:
        with urllib.request.urlopen(url, timeout=30.0) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        raise ConfigurationError(
            f"GET {url} failed: HTTP {error.code}"
        ) from None
    except (urllib.error.URLError, OSError, ValueError) as error:
        raise ConfigurationError(f"GET {url} failed: {error}") from None


def _cmd_trace(args: argparse.Namespace) -> int:
    if (args.input is None) == (args.url is None):
        raise ConfigurationError(
            "trace export needs exactly one span source: --input JSONL "
            "or --url (with --trace-id)"
        )
    if args.url is not None:
        if not args.trace_id:
            raise ConfigurationError("--url requires --trace-id")
        base = args.url.rstrip("/")
        document = _fetch_json(
            f"{base}/v1/trace/{args.trace_id}?format=chrome"
        )
    else:
        spans = list(read_jsonl(args.input))
        if args.trace_id:
            spans = [s for s in spans if s.trace_id == args.trace_id]
        if not spans:
            raise ConfigurationError(
                f"no spans in {args.input!r}"
                + (f" for trace {args.trace_id}" if args.trace_id else "")
            )
        document = chrome_trace(spans)
    text = json.dumps(document, sort_keys=True)
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n")
        print(
            f"exported {len(document['traceEvents'])} event(s) to {path}",
            file=sys.stderr,
        )
    else:
        print(text)
    return 0


def _override_results(slos: list[dict], overrides: dict[str, float]) -> None:
    """Re-verdict fetched SLO results against client-side thresholds.

    The service reported each objective's measured value; overriding a
    threshold is therefore a pure client-side re-check — no second
    scrape, and a deliberate way to gate CI tighter than the deployed
    defaults (or synthesize a breach to test the gate itself).
    """
    known = {entry["name"] for entry in slos}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown SLO name(s) {unknown}; known: {sorted(known)}"
        )
    for entry in slos:
        if entry["name"] not in overrides:
            continue
        threshold = overrides[entry["name"]]
        entry["threshold"] = threshold
        if entry["status"] == NO_DATA or entry["value"] is None:
            continue
        if entry["direction"] == "le":
            satisfied = entry["value"] <= threshold
        else:
            satisfied = entry["value"] >= threshold
        entry["status"] = "ok" if satisfied else BREACH


def _cmd_slo(args: argparse.Namespace) -> int:
    overrides = parse_overrides(args.overrides)
    if args.action == "rules":
        print(render_alert_rules(with_overrides(DEFAULT_SLOS, overrides)), end="")
        return 0
    document = _fetch_json(args.url.rstrip("/") + "/v1/slo")
    slos = document.get("slos", [])
    _override_results(slos, overrides)
    breaches = sum(1 for entry in slos if entry["status"] == BREACH)
    document["breaches"] = breaches
    document["status"] = BREACH if breaches else "ok"
    if args.json:
        _print_json(document)
    else:
        rows = [
            [
                entry["name"],
                entry["status"],
                "-" if entry["value"] is None else round(entry["value"], 4),
                f"{'<=' if entry['direction'] == 'le' else '>='} "
                f"{entry['threshold']}",
                entry["detail"],
            ]
            for entry in slos
        ]
        print(format_table(
            ["slo", "status", "value", "objective", "detail"], rows
        ))
        print(f"\noverall: {document['status']} ({breaches} breach(es))")
    return 1 if breaches else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    _apply_obs_flags(args)
    jobs = _jobs_manager_from_flags(args) if args.jobs else None
    if not args.jobs and (
        args.jobs_backend or args.jobs_workers or args.tenant_quota
    ):
        raise ConfigurationError(
            "--jobs-* and --tenant-quota flags need --jobs"
        )
    return serve(
        host=args.host,
        port=args.port,
        port_file=args.port_file,
        verbose=args.verbose,
        jobs=jobs,
        max_concurrent_runs=args.max_concurrent_runs,
    )


def _cmd_worker(args: argparse.Namespace) -> int:
    _apply_obs_flags(args)
    return serve(
        host=args.host,
        port=args.port,
        port_file=args.port_file,
        verbose=args.verbose,
        role="worker",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "compare": _cmd_compare,
        "server": _cmd_server,
        "homogeneous": _cmd_homogeneous,
        "campaign": _cmd_campaign,
        "scenarios": _cmd_scenarios,
        "cache": _cmd_cache,
        "jobs": _cmd_jobs,
        "serve": _cmd_serve,
        "worker": _cmd_worker,
        "trace": _cmd_trace,
        "slo": _cmd_slo,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        # Every library failure surfaces as one clean line, never a
        # traceback: unknown scenarios, bad grid axes, unknown mixes, ...
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
