"""Statistics collection for the cycle-level memory system."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import to_gbps


@dataclass
class ChannelStats:
    """Aggregate statistics of one channel over a simulated run."""

    read_requests: int = 0
    write_requests: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    activations: int = 0
    latencies_s: list[float] = field(default_factory=list)
    last_completion_s: float = 0.0

    @property
    def total_requests(self) -> int:
        """Reads plus writes."""
        return self.read_requests + self.write_requests

    @property
    def total_bytes(self) -> int:
        """Read plus write bytes."""
        return self.read_bytes + self.write_bytes

    def record(
        self,
        is_write: bool,
        bytes_moved: int,
        latency_s: float,
        completion_s: float,
    ) -> None:
        """Record one completed request."""
        if is_write:
            self.write_requests += 1
            self.write_bytes += bytes_moved
        else:
            self.read_requests += 1
            self.read_bytes += bytes_moved
        self.activations += 1
        self.latencies_s.append(latency_s)
        self.last_completion_s = max(self.last_completion_s, completion_s)

    def average_latency_s(self) -> float:
        """Mean request latency (0 when nothing completed)."""
        if not self.latencies_s:
            return 0.0
        return sum(self.latencies_s) / len(self.latencies_s)

    def percentile_latency_s(self, fraction: float) -> float:
        """Latency percentile, fraction in [0, 1]."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def throughput_gbps(self, elapsed_s: float | None = None) -> float:
        """Served throughput in GB/s over the run."""
        elapsed = elapsed_s if elapsed_s is not None else self.last_completion_s
        if elapsed <= 0:
            return 0.0
        return to_gbps(self.total_bytes / elapsed)

    def merge(self, other: "ChannelStats") -> "ChannelStats":
        """Combine two stats objects (for multi-channel totals)."""
        merged = ChannelStats(
            read_requests=self.read_requests + other.read_requests,
            write_requests=self.write_requests + other.write_requests,
            read_bytes=self.read_bytes + other.read_bytes,
            write_bytes=self.write_bytes + other.write_bytes,
            activations=self.activations + other.activations,
            latencies_s=self.latencies_s + other.latencies_s,
            last_completion_s=max(self.last_completion_s, other.last_completion_s),
        )
        return merged
