"""DRAM commands and memory requests.

With the close-page / auto-precharge policy used throughout the paper,
each memory request expands to exactly three DRAM operations — row
activation (RAS), column access (CAS) and precharge (PRE) — and the
precharge is implicit in the CAS-with-auto-precharge command (§3.3).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class DRAMCommand(enum.Enum):
    """DDR2 command types issued on the DIMM-internal bus."""

    ACTIVATE = "ACT"
    READ_AP = "RDA"
    WRITE_AP = "WRA"
    PRECHARGE = "PRE"
    REFRESH = "REF"


class RequestKind(enum.Enum):
    """Memory request direction."""

    READ = "read"
    WRITE = "write"


_request_ids = itertools.count()


@dataclass
class MemoryRequest:
    """A memory-controller request for one cache-line transfer.

    A 64 B line is striped over two physical channels, so one request on
    one channel moves 32 B (a burst of four on a x8 rank, §3.3).
    """

    kind: RequestKind
    address: int
    arrival_s: float
    bytes: int = 32
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ConfigurationError("address must be non-negative")
        if self.arrival_s < 0:
            raise ConfigurationError("arrival time must be non-negative")
        if self.bytes <= 0:
            raise ConfigurationError("request size must be positive")

    @property
    def is_write(self) -> bool:
        """Whether this request carries write data."""
        return self.kind is RequestKind.WRITE
