"""Physical address decomposition for the FBDIMM memory system.

The mapping is the close-page-friendly interleaving the paper implies:
consecutive cache lines rotate across physical channels first, then DIMMs,
then banks, so streaming traffic spreads evenly over every bank in the
system and the row buffer hit rate is irrelevant (close page + auto
precharge makes it zero anyway, §3.3).

Layout of a line-aligned physical address, from least significant:

``| line offset | channel | dimm | bank | column group | row |``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class DecodedAddress:
    """The (channel, dimm, bank, row, column) coordinates of one line."""

    channel: int
    dimm: int
    bank: int
    row: int
    column: int


class AddressMapper:
    """Decomposes line addresses into channel/DIMM/bank/row/column fields.

    Args:
        channels: physical channels (power of two).
        dimms_per_channel: DIMMs per channel (power of two).
        banks_per_dimm: banks per DIMM (power of two).
        rows: rows per bank (power of two).
        columns: line-sized column groups per row (power of two).
        line_bytes: cache line size in bytes.
    """

    def __init__(
        self,
        channels: int = 4,
        dimms_per_channel: int = 4,
        banks_per_dimm: int = 8,
        rows: int = 16384,
        columns: int = 128,
        line_bytes: int = 64,
    ) -> None:
        for name, value in (
            ("channels", channels),
            ("dimms_per_channel", dimms_per_channel),
            ("banks_per_dimm", banks_per_dimm),
            ("rows", rows),
            ("columns", columns),
            ("line_bytes", line_bytes),
        ):
            if not _is_power_of_two(value):
                raise ConfigurationError(f"{name} must be a power of two, got {value}")
        self._channels = channels
        self._dimms = dimms_per_channel
        self._banks = banks_per_dimm
        self._rows = rows
        self._columns = columns
        self._line_bytes = line_bytes

    @property
    def capacity_bytes(self) -> int:
        """Total addressable capacity."""
        return (
            self._channels
            * self._dimms
            * self._banks
            * self._rows
            * self._columns
            * self._line_bytes
        )

    @property
    def lines(self) -> int:
        """Total number of cache lines in the system."""
        return self.capacity_bytes // self._line_bytes

    def decode(self, address: int) -> DecodedAddress:
        """Decode a byte address into its coordinates."""
        if address < 0:
            raise ConfigurationError("address must be non-negative")
        line = (address // self._line_bytes) % self.lines
        channel = line % self._channels
        line //= self._channels
        dimm = line % self._dimms
        line //= self._dimms
        bank = line % self._banks
        line //= self._banks
        column = line % self._columns
        line //= self._columns
        row = line % self._rows
        return DecodedAddress(channel=channel, dimm=dimm, bank=bank, row=row, column=column)

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode`; returns a line-aligned byte address."""
        for name, value, limit in (
            ("channel", decoded.channel, self._channels),
            ("dimm", decoded.dimm, self._dimms),
            ("bank", decoded.bank, self._banks),
            ("row", decoded.row, self._rows),
            ("column", decoded.column, self._columns),
        ):
            if not 0 <= value < limit:
                raise ConfigurationError(f"{name} {value} out of range [0, {limit})")
        line = decoded.row
        line = line * self._columns + decoded.column
        line = line * self._banks + decoded.bank
        line = line * self._dimms + decoded.dimm
        line = line * self._channels + decoded.channel
        return line * self._line_bytes
