"""The Advanced Memory Buffer (AMB).

Each DIMM's AMB sits between the FBDIMM channel and the DIMM's DRAM
chips (§3.2).  It translates channel frames into DDR2 commands for local
requests and forwards frames for requests addressed past it.  The AMB is
also where the power model's traffic accounting happens: Fig. 3.2's four
traffic categories (local read/write, bypassed read/write) are tallied
here and consumed by Eq. 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params.dram_timing import FBDIMMChannelParams
from repro.units import ns_to_s


@dataclass
class AMBTraffic:
    """Byte counters for the four Fig. 3.2 traffic categories."""

    local_read_bytes: int = 0
    local_write_bytes: int = 0
    bypass_read_bytes: int = 0
    bypass_write_bytes: int = 0

    @property
    def local_bytes(self) -> int:
        """Local read + write bytes."""
        return self.local_read_bytes + self.local_write_bytes

    @property
    def bypass_bytes(self) -> int:
        """Bypassed read + write bytes."""
        return self.bypass_read_bytes + self.bypass_write_bytes


class AMB:
    """One Advanced Memory Buffer on the daisy chain.

    Args:
        position: chain position, 0 = nearest the memory controller.
        chain_length: number of DIMMs on the channel.
        params: channel parameters (hop and translation latencies).
    """

    def __init__(self, position: int, chain_length: int, params: FBDIMMChannelParams) -> None:
        self._position = position
        self._chain_length = chain_length
        self._params = params
        self.traffic = AMBTraffic()

    @property
    def position(self) -> int:
        """Daisy-chain position (0 = closest to the controller)."""
        return self._position

    @property
    def is_last(self) -> bool:
        """Whether this AMB terminates the chain (4.0 W idle, Table 3.1)."""
        return self._position == self._chain_length - 1

    def southbound_delay_s(self) -> float:
        """Time for a southbound frame to reach this AMB and be translated.

        The frame passes through ``position`` upstream AMBs, then this
        AMB decodes it and converts it to DDR2 format.
        """
        hops = self._position * ns_to_s(self._params.amb_hop_ns)
        return hops + ns_to_s(self._params.amb_translate_ns)

    def northbound_delay_s(self) -> float:
        """Time for read data from this DIMM to reach the controller.

        With variable read latency (VRL) enabled, the delay depends on the
        chain position; with VRL disabled every DIMM pays the worst-case
        (farthest-DIMM) delay so the controller sees a fixed latency (§3.2).
        """
        if self._params.variable_read_latency:
            hops = self._position
        else:
            hops = self._chain_length - 1
        return hops * ns_to_s(self._params.amb_hop_ns)

    def record_local(self, bytes_moved: int, is_write: bool) -> None:
        """Account traffic served by this DIMM's own DRAM chips."""
        if is_write:
            self.traffic.local_write_bytes += bytes_moved
        else:
            self.traffic.local_read_bytes += bytes_moved

    def record_bypass(self, bytes_moved: int, is_write: bool) -> None:
        """Account traffic forwarded past this AMB to a farther DIMM."""
        if is_write:
            self.traffic.bypass_write_bytes += bytes_moved
        else:
            self.traffic.bypass_read_bytes += bytes_moved

    def reset_traffic(self) -> None:
        """Zero the traffic counters (per measurement window)."""
        self.traffic = AMBTraffic()
