"""FBDIMM channel links: southbound commands/writes, northbound reads.

The two unidirectional links operate independently (§3.2).  Per frame
period the southbound link carries three commands, or one command plus
16 B of write data; the northbound link carries 32 B of read data.  We
model each link as a sequence of frame slots: a user books the earliest
free slot at or after a requested time.  This captures link serialization
(the real bandwidth ceiling) without simulating individual bits.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.params.dram_timing import DDR2Timing, FBDIMMChannelParams
from repro.units import ns_to_s


class FrameLink:
    """One unidirectional frame link with single-slot occupancy."""

    def __init__(self, frame_period_s: float) -> None:
        if frame_period_s <= 0:
            raise ConfigurationError("frame period must be positive")
        self._frame_period_s = frame_period_s
        self._next_free_s = 0.0
        self._frames_sent = 0

    @property
    def frame_period_s(self) -> float:
        """Duration of one frame slot, seconds."""
        return self._frame_period_s

    @property
    def frames_sent(self) -> int:
        """Number of frames booked so far."""
        return self._frames_sent

    @property
    def next_free_s(self) -> float:
        """When the link can accept another frame."""
        return self._next_free_s

    def book(self, earliest_s: float, frames: int = 1) -> float:
        """Reserve ``frames`` consecutive slots at or after ``earliest_s``.

        Returns the start time of the first reserved slot.
        """
        if frames < 1:
            raise ConfigurationError("must book at least one frame")
        start = max(earliest_s, self._next_free_s)
        self._next_free_s = start + frames * self._frame_period_s
        self._frames_sent += frames
        return start

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of elapsed time the link spent carrying frames."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, self._frames_sent * self._frame_period_s / elapsed_s)

    def reset(self) -> None:
        """Clear bookings (per measurement window)."""
        self._next_free_s = 0.0
        self._frames_sent = 0


class FBDIMMChannel:
    """The paired southbound/northbound links of one FBDIMM channel."""

    def __init__(self, timing: DDR2Timing, params: FBDIMMChannelParams) -> None:
        self._timing = timing
        self._params = params
        period_s = ns_to_s(params.frame_period_ns(timing))
        self.southbound = FrameLink(period_s)
        self.northbound = FrameLink(period_s)

    @property
    def params(self) -> FBDIMMChannelParams:
        """Channel parameters."""
        return self._params

    def send_command(self, earliest_s: float) -> float:
        """Book a southbound frame carrying the ACT + CAS command pair.

        Close-page auto-precharge needs two commands per request; a frame
        carries up to three, so one frame suffices.  Returns departure time.
        """
        return self.southbound.book(earliest_s, frames=1)

    def send_write(self, earliest_s: float, payload_bytes: int) -> float:
        """Book southbound frames for a write: commands ride with the data.

        Each frame moves ``southbound_write_bytes`` (16 B) alongside one
        command slot, so a 32 B write needs two frames.  Returns the start
        of the first frame.
        """
        if payload_bytes <= 0:
            raise ConfigurationError("write payload must be positive")
        per_frame = self._params.southbound_write_bytes
        frames = -(-payload_bytes // per_frame)
        return self.southbound.book(earliest_s, frames=frames)

    def return_read(self, earliest_s: float, payload_bytes: int) -> float:
        """Book northbound frames for read data; returns last-frame end time."""
        if payload_bytes <= 0:
            raise ConfigurationError("read payload must be positive")
        per_frame = self._params.northbound_read_bytes
        frames = -(-payload_bytes // per_frame)
        start = self.northbound.book(earliest_s, frames=frames)
        return start + frames * self.northbound.frame_period_s

    def reset(self) -> None:
        """Clear both links."""
        self.southbound.reset()
        self.northbound.reset()
