"""Synthetic request-stream generators for the cycle-level simulator.

These generators stand in for the address traces the paper collected from
SPEC workloads; they exercise the same code paths (bank conflicts, link
serialization, read/write mixing) with controllable intensity.
"""

from __future__ import annotations

import random

from repro.dram.commands import MemoryRequest, RequestKind
from repro.errors import ConfigurationError


def stream_trace(
    count: int,
    line_bytes: int = 64,
    interarrival_s: float = 3e-9,
    write_fraction: float = 0.0,
    start_address: int = 0,
    request_bytes: int = 32,
    seed: int = 0,
) -> list[MemoryRequest]:
    """Sequential (streaming) accesses at a fixed arrival rate.

    Consecutive lines map to consecutive channels/DIMMs/banks under the
    interleaved address map, so a stream spreads perfectly — this is the
    peak-bandwidth workload.
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    if interarrival_s < 0:
        raise ConfigurationError("interarrival must be non-negative")
    rng = random.Random(seed)
    requests = []
    for index in range(count):
        kind = RequestKind.WRITE if rng.random() < write_fraction else RequestKind.READ
        requests.append(
            MemoryRequest(
                kind=kind,
                address=start_address + index * line_bytes,
                arrival_s=index * interarrival_s,
                bytes=request_bytes,
            )
        )
    return requests


def random_trace(
    count: int,
    address_space_bytes: int,
    line_bytes: int = 64,
    interarrival_s: float = 3e-9,
    write_fraction: float = 0.0,
    request_bytes: int = 32,
    seed: int = 0,
) -> list[MemoryRequest]:
    """Uniformly random line addresses at a fixed arrival rate."""
    if address_space_bytes < line_bytes:
        raise ConfigurationError("address space must hold at least one line")
    rng = random.Random(seed)
    lines = address_space_bytes // line_bytes
    requests = []
    for index in range(count):
        kind = RequestKind.WRITE if rng.random() < write_fraction else RequestKind.READ
        requests.append(
            MemoryRequest(
                kind=kind,
                address=rng.randrange(lines) * line_bytes,
                arrival_s=index * interarrival_s,
                bytes=request_bytes,
            )
        )
    return requests


def poisson_trace(
    count: int,
    address_space_bytes: int,
    mean_interarrival_s: float,
    line_bytes: int = 64,
    write_fraction: float = 0.0,
    request_bytes: int = 32,
    seed: int = 0,
) -> list[MemoryRequest]:
    """Random addresses with exponential interarrival times.

    Models the bursty arrivals of cache-miss traffic better than a fixed
    rate; used by the latency-under-load calibration.
    """
    if mean_interarrival_s <= 0:
        raise ConfigurationError("mean interarrival must be positive")
    rng = random.Random(seed)
    lines = address_space_bytes // line_bytes
    if lines < 1:
        raise ConfigurationError("address space must hold at least one line")
    now = 0.0
    requests = []
    for _ in range(count):
        now += rng.expovariate(1.0 / mean_interarrival_s)
        kind = RequestKind.WRITE if rng.random() < write_fraction else RequestKind.READ
        requests.append(
            MemoryRequest(
                kind=kind,
                address=rng.randrange(lines) * line_bytes,
                arrival_s=now,
                bytes=request_bytes,
            )
        )
    return requests


def bank_conflict_trace(
    count: int,
    row_stride_bytes: int,
    interarrival_s: float = 3e-9,
    request_bytes: int = 32,
) -> list[MemoryRequest]:
    """Pathological same-bank accesses: every request hits one bank.

    Strides of ``channels * dimms * banks * columns * line`` bytes land on
    the same bank with a new row each time, forcing the full tRC cycle —
    the worst case for close-page throughput.
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    return [
        MemoryRequest(
            kind=RequestKind.READ,
            address=index * row_stride_bytes,
            arrival_s=index * interarrival_s,
            bytes=request_bytes,
        )
        for index in range(count)
    ]
