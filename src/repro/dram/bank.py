"""DDR2 bank state machines with full timing enforcement.

The paper fixes the close-page policy with auto-precharge, so every
request is an ACTIVATE followed by a CAS-with-auto-precharge.  A bank
therefore cycles IDLE -> ACTIVE -> (auto) PRECHARGING -> IDLE, and the
timing rules collapse to a small set of earliest-allowed times:

- ACT after previous ACT on the same bank: tRC, and also the implicit
  precharge must have finished (tRPD/tWPD + tRP after the CAS).
- CAS after ACT: tRCD.
- Read data valid tCL after READ; write data driven tWL after WRITE.
- ACT-to-ACT across banks of one DIMM: tRRD.
- Write burst to read CAS on the same DIMM data bus: tWTR.
- The DIMM's internal DDR2 data bus carries one burst at a time.

All times are seconds (floats); violations raise
:class:`repro.errors.TimingViolationError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, TimingViolationError
from repro.params.dram_timing import DDR2Timing
from repro.units import ns_to_s


@dataclass(frozen=True)
class AccessTiming:
    """The resolved schedule of one close-page access on a bank."""

    activate_s: float
    cas_s: float
    burst_start_s: float
    burst_end_s: float
    #: When the bank can accept its next ACTIVATE.
    bank_ready_s: float


class Bank:
    """One DRAM bank under the close-page auto-precharge policy."""

    def __init__(self, timing: DDR2Timing) -> None:
        self._timing = timing
        self._next_activate_s = 0.0
        self._accesses = 0

    @property
    def next_activate_s(self) -> float:
        """Earliest time the next ACTIVATE may be issued to this bank."""
        return self._next_activate_s

    @property
    def accesses(self) -> int:
        """Number of accesses this bank has served."""
        return self._accesses

    def plan_access(self, earliest_act_s: float, is_write: bool) -> AccessTiming:
        """Compute (without committing) the schedule of one access.

        Args:
            earliest_act_s: lower bound on the ACTIVATE time imposed by
                the caller (arrival, command-link delivery, tRRD, ...).
            is_write: write access (WRA) vs. read access (RDA).

        Returns:
            The fully-resolved :class:`AccessTiming`.
        """
        t = self._timing
        act_s = max(earliest_act_s, self._next_activate_s)
        cas_s = act_s + ns_to_s(t.trcd_ns)
        latency_ns = t.twl_ns if is_write else t.tcl_ns
        burst_start_s = cas_s + ns_to_s(latency_ns)
        burst_end_s = burst_start_s + ns_to_s(t.burst_duration_ns)
        if is_write:
            precharge_start_s = max(
                act_s + ns_to_s(t.tras_ns), cas_s + ns_to_s(t.twpd_ns)
            )
        else:
            precharge_start_s = max(
                act_s + ns_to_s(t.tras_ns), cas_s + ns_to_s(t.trpd_ns)
            )
        bank_ready_s = max(
            act_s + ns_to_s(t.trc_ns), precharge_start_s + ns_to_s(t.trp_ns)
        )
        return AccessTiming(
            activate_s=act_s,
            cas_s=cas_s,
            burst_start_s=burst_start_s,
            burst_end_s=burst_end_s,
            bank_ready_s=bank_ready_s,
        )

    def commit(self, schedule: AccessTiming) -> None:
        """Commit a planned access, enforcing the bank timing rules."""
        t = self._timing
        if schedule.activate_s + 1e-15 < self._next_activate_s:
            raise TimingViolationError(
                f"ACTIVATE at {schedule.activate_s:.9f}s violates bank ready "
                f"time {self._next_activate_s:.9f}s (tRC/tRP)"
            )
        if schedule.cas_s + 1e-15 < schedule.activate_s + ns_to_s(t.trcd_ns):
            raise TimingViolationError(
                f"CAS at {schedule.cas_s:.9f}s violates tRCD after ACTIVATE "
                f"at {schedule.activate_s:.9f}s"
            )
        self._next_activate_s = schedule.bank_ready_s
        self._accesses += 1

    def reset(self) -> None:
        """Return the bank to the idle, all-precharged state at time 0."""
        self._next_activate_s = 0.0
        self._accesses = 0


class DimmDevices:
    """The DRAM chips of one DIMM: banks plus shared-bus constraints.

    Tracks the cross-bank rules: tRRD between ACTIVATEs, tWTR between a
    write burst and the next read CAS, and single occupancy of the DIMM's
    internal DDR2 data bus.
    """

    def __init__(self, banks: int, timing: DDR2Timing) -> None:
        if banks < 1:
            raise ConfigurationError("a DIMM needs at least one bank")
        self._timing = timing
        self._banks = [Bank(timing) for _ in range(banks)]
        self._next_any_activate_s = 0.0
        self._data_bus_free_s = 0.0
        self._read_cas_blocked_until_s = 0.0

    @property
    def bank_count(self) -> int:
        """Number of banks on this DIMM."""
        return len(self._banks)

    def bank(self, index: int) -> Bank:
        """Access one bank (for tests and statistics)."""
        return self._banks[index]

    @property
    def data_bus_free_s(self) -> float:
        """When the internal DDR2 data bus becomes free."""
        return self._data_bus_free_s

    def schedule_access(
        self, bank_index: int, earliest_act_s: float, is_write: bool
    ) -> AccessTiming:
        """Schedule and commit one access on ``bank_index``.

        The schedule satisfies every bank and DIMM constraint: the caller
        only supplies the earliest ACT time (command delivery).  Returns
        the committed :class:`AccessTiming`.
        """
        if not 0 <= bank_index < len(self._banks):
            raise ConfigurationError(f"bank index {bank_index} out of range")
        t = self._timing
        bank = self._banks[bank_index]
        earliest = max(earliest_act_s, self._next_any_activate_s)
        schedule = bank.plan_access(earliest, is_write)
        # Honor the data-bus occupancy and write-to-read turnaround by
        # sliding the CAS (and burst) later while keeping the ACT fixed:
        # a CAS later than ACT + tRCD is always legal.
        burst_start_s = max(schedule.burst_start_s, self._data_bus_free_s)
        if not is_write:
            earliest_cas = self._read_cas_blocked_until_s
            latency_s = ns_to_s(t.tcl_ns)
            burst_start_s = max(burst_start_s, earliest_cas + latency_s)
        shift = burst_start_s - schedule.burst_start_s
        if shift > 0:
            cas_s = schedule.cas_s + shift
            if is_write:
                precharge_start_s = max(
                    schedule.activate_s + ns_to_s(t.tras_ns),
                    cas_s + ns_to_s(t.twpd_ns),
                )
            else:
                precharge_start_s = max(
                    schedule.activate_s + ns_to_s(t.tras_ns),
                    cas_s + ns_to_s(t.trpd_ns),
                )
            schedule = AccessTiming(
                activate_s=schedule.activate_s,
                cas_s=cas_s,
                burst_start_s=burst_start_s,
                burst_end_s=burst_start_s + ns_to_s(t.burst_duration_ns),
                bank_ready_s=max(
                    schedule.activate_s + ns_to_s(t.trc_ns),
                    precharge_start_s + ns_to_s(t.trp_ns),
                ),
            )
        bank.commit(schedule)
        self._next_any_activate_s = schedule.activate_s + ns_to_s(t.trrd_ns)
        self._data_bus_free_s = schedule.burst_end_s
        if is_write:
            self._read_cas_blocked_until_s = schedule.burst_end_s + ns_to_s(t.twtr_ns)
        return schedule

    def total_accesses(self) -> int:
        """Accesses served across all banks."""
        return sum(bank.accesses for bank in self._banks)

    def reset(self) -> None:
        """Reset every bank and bus constraint to time 0."""
        for bank in self._banks:
            bank.reset()
        self._next_any_activate_s = 0.0
        self._data_bus_free_s = 0.0
        self._read_cas_blocked_until_s = 0.0
