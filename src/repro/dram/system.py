"""Multi-channel FBDIMM memory-system facade.

Routes requests to per-channel controllers using the interleaved address
map and aggregates statistics.  This is the object the calibration layer
(:mod:`repro.core.calibration`) drives to extract the latency/bandwidth
envelope consumed by the analytic window model.
"""

from __future__ import annotations

from repro.dram.address import AddressMapper
from repro.dram.commands import MemoryRequest
from repro.dram.controller import ChannelController, CompletedRequest
from repro.dram.stats import ChannelStats
from repro.errors import ConfigurationError
from repro.params.dram_timing import SimulatedSystemParams


class MemorySystem:
    """A complete FBDIMM memory subsystem (Table 4.1 configuration).

    Args:
        params: system parameters; defaults to the paper's simulated
            platform (4 physical channels x 4 DIMMs x 8 banks, DDR2-667).
        activation_cap_per_window: optional open-loop throttle applied to
            every channel.
    """

    def __init__(
        self,
        params: SimulatedSystemParams | None = None,
        activation_cap_per_window: int | None = None,
    ) -> None:
        self._params = params if params is not None else SimulatedSystemParams()
        self._mapper = AddressMapper(
            channels=self._params.physical_channels,
            dimms_per_channel=self._params.dimms_per_channel,
            banks_per_dimm=self._params.banks_per_dimm,
            line_bytes=self._params.line_bytes,
        )
        self._controllers = [
            ChannelController(
                dimms=self._params.dimms_per_channel,
                banks_per_dimm=self._params.banks_per_dimm,
                timing=self._params.timing,
                params=self._params.channel,
                activation_cap_per_window=activation_cap_per_window,
            )
            for _ in range(self._params.physical_channels)
        ]

    @property
    def params(self) -> SimulatedSystemParams:
        """System parameters in force."""
        return self._params

    @property
    def mapper(self) -> AddressMapper:
        """The address map."""
        return self._mapper

    @property
    def controllers(self) -> list[ChannelController]:
        """Per-channel controllers."""
        return self._controllers

    def run(self, requests: list[MemoryRequest]) -> list[CompletedRequest]:
        """Simulate a request stream across all channels.

        Returns all completions sorted by completion time.
        """
        if not requests:
            return []
        per_channel: list[list[MemoryRequest]] = [[] for _ in self._controllers]
        for request in requests:
            coords = self._mapper.decode(request.address)
            per_channel[coords.channel].append(request)
        completed: list[CompletedRequest] = []
        for controller, channel_requests in zip(self._controllers, per_channel):
            if not channel_requests:
                continue
            completed.extend(controller.run(channel_requests, self._mapper.decode))
        completed.sort(key=lambda c: c.completion_s)
        return completed

    def total_stats(self) -> ChannelStats:
        """Statistics merged across every channel."""
        total = ChannelStats()
        for controller in self._controllers:
            total = total.merge(controller.stats)
        return total

    def set_activation_cap(self, cap: int | None, window_s: float = 0.066) -> None:
        """Apply an open-loop activation cap to every channel.

        The per-channel cap is the system cap divided evenly; passing
        ``None`` removes throttling.
        """
        if cap is not None:
            if cap < 1:
                raise ConfigurationError("activation cap must be >= 1 or None")
            per_channel = max(1, cap // len(self._controllers))
        else:
            per_channel = None
        for controller in self._controllers:
            controller.set_activation_cap(per_channel, window_s)

    def reset(self) -> None:
        """Reset all channels."""
        for controller in self._controllers:
            controller.reset()
