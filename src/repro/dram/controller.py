"""The per-channel memory controller.

Implements the paper's controller configuration (Table 4.1): a 64-entry
request buffer, 12 ns fixed overhead, close-page auto-precharge policy,
and first-ready FCFS scheduling — the oldest request whose bank can
accept an ACTIVATE earliest is issued next, reordering within the buffer
window only.

The controller also implements the *open-loop row-activation throttle*
used by the Intel 5000X chipset (§5.2.1): an upper bound on ACTIVATE
commands per time window.  Because close-page mode issues exactly one
activation per request, capping activations caps bandwidth — which is how
both DTM-BW and the worst-case safety net limit memory throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram.amb import AMB
from repro.dram.bank import DimmDevices
from repro.dram.channel import FBDIMMChannel
from repro.dram.commands import MemoryRequest
from repro.dram.stats import ChannelStats
from repro.errors import ConfigurationError
from repro.params.dram_timing import DDR2Timing, FBDIMMChannelParams
from repro.units import ns_to_s


@dataclass(frozen=True)
class CompletedRequest:
    """The resolved life cycle of one request."""

    request: MemoryRequest
    start_s: float
    activate_s: float
    completion_s: float

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion latency."""
        return self.completion_s - self.request.arrival_s


class ActivationThrottle:
    """Open-loop cap on row activations per window (Intel 5000X style)."""

    def __init__(self, max_activations: int | None, window_s: float = 0.066) -> None:
        if max_activations is not None and max_activations < 1:
            raise ConfigurationError("activation cap must be >= 1 or None")
        if window_s <= 0:
            raise ConfigurationError("throttle window must be positive")
        self._max = max_activations
        self._window_s = window_s
        self._window_index = 0
        self._count = 0

    @property
    def enabled(self) -> bool:
        """Whether a cap is active."""
        return self._max is not None

    def earliest_allowed(self, desired_s: float) -> float:
        """Earliest time an ACTIVATE may issue at or after ``desired_s``.

        The throttle window only moves forward: once activations have
        been pushed into window k, no request may activate in an earlier
        window (the chipset counts against the current wall window).
        """
        if self._max is None:
            return desired_s
        t = max(desired_s, self._window_index * self._window_s)
        window = math.floor(t / self._window_s)
        if window > self._window_index:
            return t
        if self._count < self._max:
            return t
        return (self._window_index + 1) * self._window_s

    def record(self, activate_s: float) -> None:
        """Account one issued ACTIVATE."""
        if self._max is None:
            return
        window = math.floor(activate_s / self._window_s)
        if window > self._window_index:
            self._window_index = window
            self._count = 0
        self._count += 1


class ChannelController:
    """Memory controller for one FBDIMM channel with its DIMM chain."""

    def __init__(
        self,
        dimms: int,
        banks_per_dimm: int,
        timing: DDR2Timing | None = None,
        params: FBDIMMChannelParams | None = None,
        activation_cap_per_window: int | None = None,
        throttle_window_s: float = 0.066,
    ) -> None:
        if dimms < 1:
            raise ConfigurationError("a channel needs at least one DIMM")
        self._timing = timing if timing is not None else DDR2Timing()
        self._params = params if params is not None else FBDIMMChannelParams()
        self._channel = FBDIMMChannel(self._timing, self._params)
        self._devices = [DimmDevices(banks_per_dimm, self._timing) for _ in range(dimms)]
        self._ambs = [AMB(i, dimms, self._params) for i in range(dimms)]
        self._throttle = ActivationThrottle(activation_cap_per_window, throttle_window_s)
        self.stats = ChannelStats()

    @property
    def dimm_count(self) -> int:
        """DIMMs on this channel."""
        return len(self._devices)

    @property
    def ambs(self) -> list[AMB]:
        """The channel's AMBs, nearest first."""
        return self._ambs

    @property
    def channel(self) -> FBDIMMChannel:
        """The frame links (for tests)."""
        return self._channel

    def set_activation_cap(self, cap: int | None, window_s: float = 0.066) -> None:
        """Install or remove the open-loop activation throttle."""
        self._throttle = ActivationThrottle(cap, window_s)

    def _estimate_start(self, request: MemoryRequest, dimm: int, bank: int) -> float:
        """Estimate when the request's ACTIVATE could issue (for scheduling)."""
        ready_s = request.arrival_s + ns_to_s(self._params.controller_overhead_ns)
        device = self._devices[dimm]
        bank_ready = device.bank(bank).next_activate_s
        return max(ready_s, bank_ready)

    def run(self, requests: list[MemoryRequest], decode) -> list[CompletedRequest]:
        """Simulate a request stream to completion.

        Args:
            requests: the memory requests (any order; sorted internally).
            decode: callable mapping a request address to an object with
                ``dimm`` and ``bank`` attributes (channel field ignored:
                the caller routes requests to controllers).

        Returns:
            One :class:`CompletedRequest` per input, in completion order.
        """
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        window = self._params.controller_queue_entries
        completed: list[CompletedRequest] = []
        while pending:
            # First-ready FCFS within the buffer window: choose the request
            # whose bank is ready earliest; break ties by arrival order.
            head = pending[:window]
            best_index = 0
            best_key = (math.inf, math.inf)
            for index, request in enumerate(head):
                coords = decode(request.address)
                estimate = self._estimate_start(request, coords.dimm, coords.bank)
                key = (estimate, request.arrival_s)
                if key < best_key:
                    best_key = key
                    best_index = index
            request = pending.pop(best_index)
            completed.append(self._issue(request, decode(request.address)))
        completed.sort(key=lambda c: c.completion_s)
        return completed

    def _issue(self, request: MemoryRequest, coords) -> CompletedRequest:
        """Drive one request through links, AMBs and banks."""
        dimm_index = coords.dimm
        device = self._devices[dimm_index]
        amb = self._ambs[dimm_index]
        ready_s = request.arrival_s + ns_to_s(self._params.controller_overhead_ns)

        # Southbound: the command frame (and write-data frames) travel to
        # the target AMB through every nearer AMB.
        if request.is_write:
            frame_start_s = self._channel.send_write(ready_s, request.bytes)
        else:
            frame_start_s = self._channel.send_command(ready_s)
        at_amb_s = (
            frame_start_s
            + self._channel.southbound.frame_period_s
            + amb.southbound_delay_s()
        )

        # Open-loop activation throttle (also covers DTM-BW bandwidth caps).
        earliest_act_s = self._throttle.earliest_allowed(at_amb_s)
        schedule = device.schedule_access(coords.bank, earliest_act_s, request.is_write)
        self._throttle.record(schedule.activate_s)

        # Traffic accounting for the power model (Fig. 3.2 categories).
        amb.record_local(request.bytes, request.is_write)
        for upstream in self._ambs[:dimm_index]:
            upstream.record_bypass(request.bytes, request.is_write)

        if request.is_write:
            completion_s = schedule.burst_end_s
        else:
            data_at_controller_s = schedule.burst_end_s + amb.northbound_delay_s()
            completion_s = self._channel.return_read(data_at_controller_s, request.bytes)

        latency_s = completion_s - request.arrival_s
        self.stats.record(request.is_write, request.bytes, latency_s, completion_s)
        return CompletedRequest(
            request=request,
            start_s=ready_s,
            activate_s=schedule.activate_s,
            completion_s=completion_s,
        )

    def reset(self) -> None:
        """Reset banks, links, AMB traffic and statistics."""
        for device in self._devices:
            device.reset()
        for amb in self._ambs:
            amb.reset_traffic()
        self._channel.reset()
        self.stats = ChannelStats()
