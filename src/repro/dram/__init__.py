"""Cycle-level FBDIMM / DDR2 memory-system substrate.

The paper's first-level simulator extends M5 with a detailed FBDIMM
model: "the details of FBDIMM northbound and southbound links and isolated
command and data buses inside FBDIMM are simulated, and so are DRAM access
scheduling and operations at all DRAM chips and banks" (§4.3.1).  This
package is that substrate, built from scratch:

- :mod:`repro.dram.commands` — DRAM commands and memory requests.
- :mod:`repro.dram.address` — physical address decomposition and the
  close-page interleaved mapping.
- :mod:`repro.dram.bank` — per-bank state machines with full DDR2 timing
  enforcement (tRCD/tCL/tRP/tRAS/tRC/tWTR/tWL/tWPD/tRPD/tRRD).
- :mod:`repro.dram.amb` — the Advanced Memory Buffer: pass-through and
  translation latency plus local/bypass traffic accounting.
- :mod:`repro.dram.channel` — southbound/northbound frame links.
- :mod:`repro.dram.controller` — the 64-entry memory controller with
  first-ready FCFS scheduling, close-page auto-precharge policy and
  row-activation throttling (the Intel-5000X-style open loop).
- :mod:`repro.dram.trafficgen` — synthetic request streams.
- :mod:`repro.dram.system` — a multi-channel memory system facade.
- :mod:`repro.dram.stats` — bandwidth/latency statistics.

The simulator is *timing-exact*: every constraint of Table 4.1 is checked
on every command, and violations raise :class:`repro.errors.TimingViolationError`.
"""

from repro.dram.commands import MemoryRequest, RequestKind
from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.bank import Bank, DimmDevices
from repro.dram.amb import AMB
from repro.dram.channel import FBDIMMChannel
from repro.dram.controller import ChannelController, CompletedRequest
from repro.dram.system import MemorySystem
from repro.dram.trafficgen import (
    poisson_trace,
    random_trace,
    stream_trace,
)
from repro.dram.stats import ChannelStats

__all__ = [
    "MemoryRequest",
    "RequestKind",
    "AddressMapper",
    "DecodedAddress",
    "Bank",
    "DimmDevices",
    "AMB",
    "FBDIMMChannel",
    "ChannelController",
    "CompletedRequest",
    "MemorySystem",
    "poisson_trace",
    "random_trace",
    "stream_trace",
    "ChannelStats",
]
