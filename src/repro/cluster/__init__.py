"""Distributed campaign execution: pluggable backends and worker fleets.

The campaign engine (:mod:`repro.campaign`) decides *what* to run; this
package decides *where*.  An :class:`ExecutionBackend` receives a
campaign's deduplicated cells and streams back encoded payloads:

- :class:`SerialBackend` — the calling process, one cell at a time.
- :class:`VectorBackend` — the calling process, with compatible cells
  lock-stepped in gangs through one grid kernel
  (:mod:`repro.engine.gang`); bit-identical to serial, much faster on
  homogeneous grids.
- :class:`LocalProcessBackend` — a reusable local process pool.
- :class:`HttpWorkerBackend` — a coordinator sharding cells across
  ``python -m repro worker`` processes over the ``/v1`` JSON protocol,
  with bounded in-flight dispatch, per-cell retry + worker
  blacklisting, and heartbeat-based dead-worker requeue.

:class:`LocalFleet` boots N real worker subprocesses on ephemeral
ports for tests, CI smoke jobs, and single-machine scale-out.  The
wire format (:mod:`repro.cluster.wire`) is how frozen spec dataclasses
cross process and HTTP boundaries without losing their cache keys.
"""

from repro.cluster.backends import (
    ExecutionBackend,
    LocalProcessBackend,
    SerialBackend,
    VectorBackend,
)
from repro.cluster.fleet import LocalFleet
from repro.cluster.http import HttpWorkerBackend
from repro.cluster.wire import WIRE_VERSION, cell_from_wire, cell_to_wire
from repro.errors import ClusterError, ConfigurationError

#: The CLI's ``--backend`` vocabulary.
BACKEND_CHOICES = ("local", "serial", "vector", "http")

#: Sentinel for "the backend's own default" gang width.
_DEFAULT_BATCH_CELLS = 16


def backend_for(
    name: str,
    *,
    jobs: int = 1,
    workers: tuple[str, ...] | list[str] = (),
    batch_cells: int | None = None,
) -> ExecutionBackend:
    """Build an execution backend from CLI-shaped arguments.

    ``jobs`` sizes the ``local`` pool; ``workers`` are the ``http``
    fleet's base URLs; ``batch_cells`` caps the ``vector`` backend's
    gang width — or, with ``http``, turns on gang-aware dispatch
    (compatible cells ship to one worker as a unit and run in
    lockstep there).  Mismatched arguments fail loudly — a worker
    list without ``--backend http`` is almost certainly a mistake.
    """
    if batch_cells is not None and name not in ("vector", "http"):
        raise ConfigurationError(
            "--batch-cells only applies to --backend vector or http"
        )
    if name == "serial":
        if workers:
            raise ConfigurationError("--workers only applies to --backend http")
        if jobs != 1:
            raise ConfigurationError("--jobs does not apply to --backend serial")
        return SerialBackend()
    if name == "vector":
        if workers:
            raise ConfigurationError("--workers only applies to --backend http")
        if jobs != 1:
            raise ConfigurationError(
                "--jobs does not apply to --backend vector: cells run "
                "in this process, batched through one grid kernel"
            )
        return VectorBackend(
            batch_cells=(
                _DEFAULT_BATCH_CELLS if batch_cells is None else batch_cells
            )
        )
    if name == "local":
        if workers:
            raise ConfigurationError("--workers only applies to --backend http")
        return LocalProcessBackend(jobs=jobs)
    if name == "http":
        if not workers:
            raise ConfigurationError(
                "--backend http needs --workers URL[,URL...] "
                "(start them with 'python -m repro worker')"
            )
        if jobs != 1:
            raise ConfigurationError(
                "--jobs does not apply to --backend http: parallelism "
                "comes from the number of workers (add more --workers)"
            )
        return HttpWorkerBackend(list(workers), batch_cells=batch_cells)
    raise ConfigurationError(
        f"unknown backend {name!r} (choices: {list(BACKEND_CHOICES)})"
    )


__all__ = [
    "BACKEND_CHOICES",
    "ClusterError",
    "ExecutionBackend",
    "HttpWorkerBackend",
    "LocalFleet",
    "LocalProcessBackend",
    "SerialBackend",
    "VectorBackend",
    "WIRE_VERSION",
    "backend_for",
    "cell_from_wire",
    "cell_to_wire",
]
