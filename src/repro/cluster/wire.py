"""The cell wire format — how run specs cross process and HTTP borders.

A *cell* is one deduplicated campaign unit: a run spec plus its cache
key.  The coordinator serializes cells to plain JSON objects, ships
them to workers over the existing ``/v1`` JSON protocol, and the worker
rebuilds the identical frozen spec dataclass from the registered spec
type (:func:`repro.campaign.spec.register_spec_type`) — so a cell
computed remotely lands in the cache under exactly the key a local run
would have used.

Wire shape::

    {"wire_version": 1, "kind": "ch4", "fields": {"mix": "W1", ...}}

Only JSON-scalar spec fields survive the trip (every registered spec
kind — ``ch4``, ``ch5``, and the scenario-lowered cells — satisfies
this).  ``cell_from_wire`` re-validates through the spec dataclass's
own ``__post_init__``, so a malformed or hostile payload fails with a
:class:`~repro.errors.ConfigurationError`, never a partial spec.
"""

from __future__ import annotations

from dataclasses import asdict, is_dataclass
from typing import Any, Mapping

from repro.campaign.spec import RunSpec, spec_type_for
from repro.errors import ConfigurationError

#: Bump when the cell wire shape changes incompatibly.  A worker that
#: receives a foreign version rejects the request outright rather than
#: guessing at fields.
WIRE_VERSION = 1


def cell_to_wire(spec: RunSpec) -> dict:
    """Serialize one run spec to its JSON wire object."""
    if not is_dataclass(spec):
        raise ConfigurationError(
            f"only dataclass specs can cross the wire, "
            f"got {type(spec).__name__}"
        )
    return {
        "wire_version": WIRE_VERSION,
        "kind": spec.kind,
        "fields": asdict(spec),
    }


def cell_from_wire(raw: Mapping[str, Any]) -> RunSpec:
    """Rebuild a run spec from its wire object (inverse of to_wire)."""
    if not isinstance(raw, Mapping):
        raise ConfigurationError(
            f"wire cell must be a JSON object, got {type(raw).__name__}"
        )
    version = raw.get("wire_version", WIRE_VERSION)
    if version != WIRE_VERSION:
        raise ConfigurationError(
            f"unsupported cell wire_version {version!r} "
            f"(this worker speaks {WIRE_VERSION})"
        )
    kind = raw.get("kind")
    if not isinstance(kind, str):
        raise ConfigurationError("wire cell is missing its 'kind' tag")
    fields = raw.get("fields")
    if not isinstance(fields, Mapping):
        raise ConfigurationError(
            f"wire cell for kind {kind!r} needs a 'fields' object"
        )
    cls = spec_type_for(kind)
    try:
        spec = cls(**{str(name): value for name, value in fields.items()})
    except TypeError as error:
        raise ConfigurationError(
            f"cannot rebuild {kind!r} cell from wire fields: {error}"
        ) from None
    return spec
