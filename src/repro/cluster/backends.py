"""Execution backends — where a campaign's deduplicated cells run.

:class:`~repro.campaign.Campaign` owns *what* to run (dedup, ordering,
caching, provenance); an :class:`ExecutionBackend` owns *where*: the
calling process (:class:`SerialBackend`), a pool of local worker
processes (:class:`LocalProcessBackend`), or an HTTP worker fleet
(:class:`~repro.cluster.http.HttpWorkerBackend`).

The protocol is two calls per batch:

- ``submit_cells(cells, store=...)`` hands over the unique
  ``(key, spec)`` cells.  ``store`` is the campaign's *explicit* store
  or ``None`` for "each executor resolves its own default stack" —
  the sentinel convention the process pool has always used.
- ``iter_results()`` yields
  ``(key, payload, hit, compute_seconds, store_info)`` once per
  submitted cell, in any order.  Payloads are the encoded (JSON-safe)
  form, so the campaign can re-publish them into its own store and
  decode them exactly like cache hits; ``store_info`` is the store's
  placement / single-flight provenance for the cell (``{}`` for plain
  warm hits).

Backends are context managers.  A campaign that builds its own backend
closes it when the run (or an abandoned iterator) finishes; a backend
passed in from outside is *borrowed* and survives the campaign, so one
process pool or worker fleet can serve many grids::

    with LocalProcessBackend(jobs=8) as backend:
        Campaign(specs_a, backend=backend).run()
        Campaign(specs_b, backend=backend).run()   # same pool, no respawn

Two class flags tell the campaign how results relate to its cache:
``in_process`` (payloads were already written through the campaign's
store) and ``shares_disk`` (executors share this host's default disk
layer, so only the in-process memo needs backfilling).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from concurrent.futures import Future, ProcessPoolExecutor
from typing import ClassVar, Iterator, Sequence

from repro.campaign.engine import cached_payload, run_outcome
from repro.campaign.spec import RunSpec, runner_for, spec_meta
from repro.campaign.stores import (
    ResultStore,
    SingleFlightStore,
    default_store,
)
from repro.engine.gang import plan_gangs
from repro.errors import ConfigurationError

#: One submitted cell: (cache key, run spec).
Cell = tuple[str, RunSpec]
#: One delivered result:
#: (cache key, payload, cache_hit, compute_seconds, store_info).
CellResult = tuple[str, dict, bool, float, dict]


class ExecutionBackend(ABC):
    """Where campaign cells execute (see module docstring for protocol)."""

    #: Registry name (the CLI's ``--backend`` vocabulary).
    name: ClassVar[str] = "?"
    #: True when results were computed in this process *through the
    #: campaign's store* — no coordinator backfill needed.
    in_process: ClassVar[bool] = False
    #: True when executors share this host's default disk cache layer.
    shares_disk: ClassVar[bool] = False

    @abstractmethod
    def submit_cells(
        self, cells: Sequence[Cell], store: ResultStore | None = None
    ) -> None:
        """Accept one batch of unique cells (replaces any prior batch)."""

    @abstractmethod
    def iter_results(self) -> Iterator[CellResult]:
        """Yield each submitted cell's result exactly once, any order."""

    def close(self) -> None:
        """Release executor resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Run every cell in the calling process, one at a time.

    Execution is lazy — each cell runs when :meth:`iter_results`
    reaches it — which preserves the campaign's streaming behavior:
    early cells are yielded to the consumer while later ones have not
    started.
    """

    name = "serial"
    in_process = True
    shares_disk = True

    def __init__(self) -> None:
        self._cells: list[Cell] = []
        self._store: ResultStore | None = None

    def submit_cells(
        self, cells: Sequence[Cell], store: ResultStore | None = None
    ) -> None:
        self._cells = list(cells)
        self._store = store

    def iter_results(self) -> Iterator[CellResult]:
        for key, spec in self._cells:
            outcome = run_outcome(spec, self._store)
            yield (
                key, outcome.payload, outcome.hit,
                outcome.compute_seconds, outcome.store_info,
            )


class VectorBackend(ExecutionBackend):
    """Run compatible cells in lock-stepped gangs, in this process.

    The batch is planned once per :meth:`iter_results` pass with
    :func:`repro.engine.gang.plan_gangs`: cache misses group into
    leader/lockstep gangs (capped at ``batch_cells`` members) stepping
    one :class:`~repro.core.kernel.GridMemSpot` per window, and
    incompatible leftovers fall back to per-cell serial execution.
    Results are bit-identical to :class:`SerialBackend` — gangs reuse
    the exact solo stepping halves and the grid kernel reproduces the
    scalar float ops — so payloads, and therefore cache keys and
    envelopes, match byte for byte.

    ``kernel_backend`` picks the grid arithmetic: ``"auto"`` uses NumPy
    when importable and pure python otherwise, ``"numpy"`` insists,
    ``"python"`` opts out.  Like :class:`SerialBackend` the results are
    computed through the campaign's store (``in_process``), with cache
    hits self-served before any gang runs; unlike serial, cells inside
    one gang finish together, so streaming granularity is the gang, not
    the cell, and gang-hosted cells do not surface individual
    ``/v1/progress`` labels.
    """

    name = "vector"
    in_process = True
    shares_disk = True

    def __init__(
        self, batch_cells: int = 16, kernel_backend: str = "auto"
    ) -> None:
        if batch_cells < 2:
            raise ConfigurationError("batch_cells must be >= 2")
        if kernel_backend not in ("auto", "numpy", "python"):
            raise ConfigurationError(
                "kernel backend must be 'auto', 'numpy' or 'python', "
                f"got {kernel_backend!r}"
            )
        self.batch_cells = batch_cells
        self.kernel_backend = kernel_backend
        self._cells: list[Cell] = []
        self._store: ResultStore | None = None

    def submit_cells(
        self, cells: Sequence[Cell], store: ResultStore | None = None
    ) -> None:
        self._cells = list(cells)
        self._store = store

    def iter_results(self) -> Iterator[CellResult]:
        store = default_store() if self._store is None else self._store
        # When the store coalesces (the default stack does), register a
        # flight per cold cell before the gangs run: an API request
        # racing this batch for the same cell waits for the gang
        # instead of recomputing, and cells another thread is already
        # computing are followed instead of ganged.
        flights = store if isinstance(store, SingleFlightStore) else None
        led: set[str] = set()
        misses: list[Cell] = []
        try:
            for key, spec in self._cells:
                payload = cached_payload(spec, store)
                if payload is not None:
                    yield key, payload, True, 0.0, {}
                    continue
                if flights is not None:
                    if flights.try_lead(key):
                        led.add(key)
                    else:
                        joined = flights.follow(key)
                        if joined is not None:
                            yield (
                                key, joined, True, 0.0,
                                {"single_flight": "coalesced"},
                            )
                            continue
                        # The other leader failed; claim the flight
                        # ourselves (best effort) and compute.
                        if flights.try_lead(key):
                            led.add(key)
                misses.append((key, spec))
            if not misses:
                return
            plan = plan_gangs(
                misses,
                batch_cells=self.batch_cells,
                backend=self.kernel_backend,
            )
            for planned in plan.gangs:
                started = time.perf_counter()
                results = planned.gang.run_to_completion()
                # The gang's wall time is genuinely joint; attribute an
                # equal share to each cell so provenance sums correctly.
                per_cell = (time.perf_counter() - started) / len(results)
                for (key, spec), result in zip(planned.cells, results):
                    payload = runner_for(spec.kind).encode(result)
                    store.put(key, payload, meta=spec_meta(spec))
                    if flights is not None:
                        flights.settle(key, payload)
                        led.discard(key)
                    yield key, payload, False, per_cell, store.describe(key)
            for key, spec in plan.solo:
                # ``run_outcome`` re-enters ``get_or_compute``; the
                # flight table recognizes this thread as the owner and
                # passes straight through, so settling stays ours.
                outcome = run_outcome(spec, store)
                if flights is not None:
                    flights.settle(key, outcome.payload)
                    led.discard(key)
                yield (
                    key, outcome.payload, outcome.hit,
                    outcome.compute_seconds, outcome.store_info,
                )
        finally:
            if flights is not None:
                # Wake followers of any cell we claimed but never
                # finished (error, abandoned iterator) empty-handed so
                # they recompute instead of waiting forever.
                for key in led:
                    flights.settle(key, None)


def _pool_worker_execute(
    spec: RunSpec, store: ResultStore | None
) -> CellResult:
    """Pool-worker entry: run one spec, return its :data:`CellResult`.

    With no explicit store the worker uses its own default stack, so
    results cached by earlier campaigns (or sibling workers) hit the
    shared disk layer; an explicit store arrives as a pickled copy, so
    its disk layers are shared but memory layers are private.
    """
    outcome = run_outcome(spec, store)
    return (
        spec.key(), outcome.payload, outcome.hit,
        outcome.compute_seconds, outcome.store_info,
    )


class LocalProcessBackend(ExecutionBackend):
    """Run cells on a pool of local worker processes.

    The pool is created lazily on first submit and *reused* across
    submissions until :meth:`close` — campaigns no longer pay a
    fork-and-import tax per ``run()`` call.  Submitting a new batch
    cancels any still-pending futures from an abandoned previous one.
    """

    name = "local"
    shares_disk = True

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        self.jobs = jobs
        self._pool: ProcessPoolExecutor | None = None
        self._futures: dict[str, Future] = {}
        self._closed = False

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise ConfigurationError("backend is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def submit_cells(
        self, cells: Sequence[Cell], store: ResultStore | None = None
    ) -> None:
        for future in self._futures.values():
            future.cancel()
        pool = self._ensure_pool()
        self._futures = {
            key: pool.submit(_pool_worker_execute, spec, store)
            for key, spec in cells
        }

    def iter_results(self) -> Iterator[CellResult]:
        for key, future in self._futures.items():
            _, payload, hit, seconds, info = future.result()
            yield key, payload, hit, seconds, info

    def close(self) -> None:
        """Cancel pending cells and shut the pool down.

        ``wait=False`` keeps an abandoned mid-grid iterator from
        blocking on in-flight cells; workers exit as soon as their
        current cell finishes, so no stray processes outlive the
        backend.
        """
        self._closed = True
        for future in self._futures.values():
            future.cancel()
        self._futures = {}
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
