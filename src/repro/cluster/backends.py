"""Execution backends — where a campaign's deduplicated cells run.

:class:`~repro.campaign.Campaign` owns *what* to run (dedup, ordering,
caching, provenance); an :class:`ExecutionBackend` owns *where*: the
calling process (:class:`SerialBackend`), a pool of local worker
processes (:class:`LocalProcessBackend`), or an HTTP worker fleet
(:class:`~repro.cluster.http.HttpWorkerBackend`).

The protocol is two calls per batch:

- ``submit_cells(cells, store=...)`` hands over the unique
  ``(key, spec)`` cells.  ``store`` is the campaign's *explicit* store
  or ``None`` for "each executor resolves its own default stack" —
  the sentinel convention the process pool has always used.
- ``iter_results()`` yields ``(key, payload, hit, compute_seconds)``
  once per submitted cell, in any order.  Payloads are the encoded
  (JSON-safe) form, so the campaign can re-publish them into its own
  store and decode them exactly like cache hits.

Backends are context managers.  A campaign that builds its own backend
closes it when the run (or an abandoned iterator) finishes; a backend
passed in from outside is *borrowed* and survives the campaign, so one
process pool or worker fleet can serve many grids::

    with LocalProcessBackend(jobs=8) as backend:
        Campaign(specs_a, backend=backend).run()
        Campaign(specs_b, backend=backend).run()   # same pool, no respawn

Two class flags tell the campaign how results relate to its cache:
``in_process`` (payloads were already written through the campaign's
store) and ``shares_disk`` (executors share this host's default disk
layer, so only the in-process memo needs backfilling).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import Future, ProcessPoolExecutor
from typing import ClassVar, Iterator, Sequence

from repro.campaign.engine import run_payload
from repro.campaign.spec import RunSpec
from repro.campaign.stores import ResultStore
from repro.errors import ConfigurationError

#: One submitted cell: (cache key, run spec).
Cell = tuple[str, RunSpec]
#: One delivered result: (cache key, payload, cache_hit, compute_seconds).
CellResult = tuple[str, dict, bool, float]


class ExecutionBackend(ABC):
    """Where campaign cells execute (see module docstring for protocol)."""

    #: Registry name (the CLI's ``--backend`` vocabulary).
    name: ClassVar[str] = "?"
    #: True when results were computed in this process *through the
    #: campaign's store* — no coordinator backfill needed.
    in_process: ClassVar[bool] = False
    #: True when executors share this host's default disk cache layer.
    shares_disk: ClassVar[bool] = False

    @abstractmethod
    def submit_cells(
        self, cells: Sequence[Cell], store: ResultStore | None = None
    ) -> None:
        """Accept one batch of unique cells (replaces any prior batch)."""

    @abstractmethod
    def iter_results(self) -> Iterator[CellResult]:
        """Yield each submitted cell's result exactly once, any order."""

    def close(self) -> None:
        """Release executor resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Run every cell in the calling process, one at a time.

    Execution is lazy — each cell runs when :meth:`iter_results`
    reaches it — which preserves the campaign's streaming behavior:
    early cells are yielded to the consumer while later ones have not
    started.
    """

    name = "serial"
    in_process = True
    shares_disk = True

    def __init__(self) -> None:
        self._cells: list[Cell] = []
        self._store: ResultStore | None = None

    def submit_cells(
        self, cells: Sequence[Cell], store: ResultStore | None = None
    ) -> None:
        self._cells = list(cells)
        self._store = store

    def iter_results(self) -> Iterator[CellResult]:
        for key, spec in self._cells:
            payload, hit, seconds = run_payload(spec, self._store)
            yield key, payload, hit, seconds


def _pool_worker_execute(
    spec: RunSpec, store: ResultStore | None
) -> tuple[str, dict, bool, float]:
    """Pool-worker entry: run one spec, return (key, payload, hit, seconds).

    With no explicit store the worker uses its own default stack, so
    results cached by earlier campaigns (or sibling workers) hit the
    shared disk layer; an explicit store arrives as a pickled copy, so
    its disk layers are shared but memory layers are private.
    """
    payload, hit, compute_seconds = run_payload(spec, store)
    return spec.key(), payload, hit, compute_seconds


class LocalProcessBackend(ExecutionBackend):
    """Run cells on a pool of local worker processes.

    The pool is created lazily on first submit and *reused* across
    submissions until :meth:`close` — campaigns no longer pay a
    fork-and-import tax per ``run()`` call.  Submitting a new batch
    cancels any still-pending futures from an abandoned previous one.
    """

    name = "local"
    shares_disk = True

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        self.jobs = jobs
        self._pool: ProcessPoolExecutor | None = None
        self._futures: dict[str, Future] = {}
        self._closed = False

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise ConfigurationError("backend is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def submit_cells(
        self, cells: Sequence[Cell], store: ResultStore | None = None
    ) -> None:
        for future in self._futures.values():
            future.cancel()
        pool = self._ensure_pool()
        self._futures = {
            key: pool.submit(_pool_worker_execute, spec, store)
            for key, spec in cells
        }

    def iter_results(self) -> Iterator[CellResult]:
        for key, future in self._futures.items():
            _, payload, hit, seconds = future.result()
            yield key, payload, hit, seconds

    def close(self) -> None:
        """Cancel pending cells and shut the pool down.

        ``wait=False`` keeps an abandoned mid-grid iterator from
        blocking on in-flight cells; workers exit as soon as their
        current cell finishes, so no stray processes outlive the
        backend.
        """
        self._closed = True
        for future in self._futures.values():
            future.cancel()
        self._futures = {}
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
