""":class:`LocalFleet` — spawn N ``repro worker`` subprocesses locally.

The test/dev on-ramp for :class:`~repro.cluster.http.HttpWorkerBackend`:
it boots real worker processes (the same ``python -m repro worker``
entry production fleets run) on ephemeral ports, waits for their
port files, and exposes their base URLs::

    with LocalFleet(2) as fleet:
        backend = HttpWorkerBackend(fleet.urls)
        with backend:
            table = Campaign(specs, backend=backend).run()

Workers inherit this process's environment plus any ``env`` overrides —
point ``REPRO_CACHE_DIR`` somewhere private to model remote machines
that share nothing with the coordinator.  ``kill()`` SIGKILLs one
worker, which is how the dead-worker-requeue tests take a machine away
mid-grid.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.errors import ClusterError, ConfigurationError


def _repro_src_dir() -> str:
    """The directory that makes ``import repro`` work in a subprocess."""
    import repro

    return str(Path(repro.__file__).resolve().parent.parent)


class LocalFleet:
    """A context manager owning N local worker subprocesses."""

    def __init__(
        self,
        count: int = 2,
        *,
        host: str = "127.0.0.1",
        env: dict[str, str] | None = None,
        startup_timeout_s: float = 30.0,
    ) -> None:
        if count < 1:
            raise ConfigurationError("fleet needs at least one worker")
        self.count = count
        self.host = host
        self.extra_env = dict(env or {})
        self.startup_timeout_s = startup_timeout_s
        self._procs: list[subprocess.Popen] = []
        self._urls: list[str] = []
        self._workdir: tempfile.TemporaryDirectory | None = None

    @property
    def urls(self) -> list[str]:
        """Base URLs of the running workers (start() must have run)."""
        if not self._urls:
            raise ClusterError("fleet is not running (use 'with LocalFleet(...)')")
        return list(self._urls)

    def start(self) -> "LocalFleet":
        """Spawn the workers and wait until every one is listening."""
        if self._procs:
            raise ClusterError("fleet already started")
        self._workdir = tempfile.TemporaryDirectory(prefix="repro-fleet-")
        root = Path(self._workdir.name)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [_repro_src_dir()]
            + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        )
        env.update(self.extra_env)
        try:
            for index in range(self.count):
                port_file = root / f"worker-{index}.port"
                log = (root / f"worker-{index}.log").open("w")
                proc = subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "worker",
                        "--host", self.host,
                        "--port", "0",
                        "--port-file", str(port_file),
                    ],
                    env=env,
                    stdout=log,
                    stderr=subprocess.STDOUT,
                )
                log.close()
                self._procs.append(proc)
            self._urls = [
                f"http://{self.host}:{self._await_port(index)}"
                for index in range(self.count)
            ]
        except BaseException:
            self.stop()
            raise
        return self

    def _await_port(self, index: int) -> int:
        assert self._workdir is not None
        port_file = Path(self._workdir.name) / f"worker-{index}.port"
        deadline = time.monotonic() + self.startup_timeout_s
        while time.monotonic() < deadline:
            proc = self._procs[index]
            if proc.poll() is not None:
                raise ClusterError(
                    f"worker {index} exited with code {proc.returncode} "
                    f"before listening (see {port_file.parent}/worker-{index}.log)"
                )
            text = port_file.read_text() if port_file.exists() else ""
            if text.strip():
                return int(text)
            time.sleep(0.05)
        raise ClusterError(
            f"worker {index} did not listen within {self.startup_timeout_s}s"
        )

    def kill(self, index: int) -> None:
        """SIGKILL one worker (simulates a machine dying mid-grid)."""
        self._procs[index].kill()

    def stop(self) -> None:
        """Terminate every worker and clean up (idempotent)."""
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
        self._procs = []
        self._urls = []
        if self._workdir is not None:
            self._workdir.cleanup()
            self._workdir = None

    def __enter__(self) -> "LocalFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
