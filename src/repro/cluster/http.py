"""The HTTP fleet coordinator: :class:`HttpWorkerBackend`.

Shards a campaign's cells across worker processes speaking the existing
``/v1`` JSON protocol (``python -m repro worker``).  Design points:

- **Chunked dispatch** — each ``/v1/worker/run`` request carries up to
  ``chunk_cells`` cells (auto-sized from the grid by default), so
  small grids amortize HTTP round-trips instead of paying one request
  per cell.  Dispatch stays pull-based: a worker takes its next chunk
  when a slot frees, so a slow worker never strands cells.
- **Bounded in-flight dispatch** — ``slots_per_worker`` pump threads
  per worker, each carrying at most one HTTP request, so a fleet of N
  workers never holds more than ``N x slots_per_worker`` chunks in
  flight regardless of grid size.
- **Time-sliced, preemptible cells** — with ``window_slice`` set, a
  worker runs at most that many DTM windows per request and returns
  either the finished payload or a versioned
  :class:`~repro.engine.EngineState` checkpoint.  The coordinator
  requeues partial cells (front of the queue) with their state, so the
  next slice — on *any* worker — resumes warm.  A worker that dies
  mid-slice loses only that slice: the dead-worker requeue re-dispatches
  from the last returned checkpoint instead of recomputing from zero.
- **Per-cell retry with worker blacklisting** — a chunk whose request
  fails transiently (connection refused/reset, timeout, 5xx) has its
  cells requeued *excluding* the worker that failed them; a worker
  failing ``blacklist_after`` consecutive requests stops receiving
  work.  A cell is abandoned (→ :class:`~repro.errors.ClusterError`)
  only after ``max_attempts`` tries, and a 4xx response — the worker
  understood the request and rejected the cell itself — fails the grid
  immediately rather than burning retries.
- **Heartbeat-based dead-worker requeue** — a background thread polls
  each worker's ``/v1/worker/health``; a worker missing
  ``dead_after_missed`` consecutive heartbeats is declared dead, its
  pump threads stop pulling, and any cell it held in flight is requeued
  onto the survivors as soon as its socket errors out (warm, when the
  cell has a checkpoint).

The coordinator never decodes payloads — it forwards the workers'
encoded cell payloads (plus hit/compute-seconds provenance) back to the
campaign, which re-publishes them into the shared
:class:`~repro.campaign.ResultStore`.  That write-through is what makes
a distributed run warm the very cache a later local run reads.
"""

from __future__ import annotations

import http.client
import json
import math
import socket
import threading
import urllib.error
import urllib.request
from collections import deque
from typing import Callable, Iterator, Sequence

from repro.campaign.stores import ResultStore
from repro.cluster.backends import Cell, CellResult, ExecutionBackend
from repro.cluster.wire import cell_to_wire
from repro.errors import ClusterError, ConfigurationError
from repro.obs.log import LOG
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACE_HEADER, TRACER

#: Exceptions that mean "this worker, this time" — retry elsewhere.
_TRANSIENT_ERRORS = (
    urllib.error.URLError,
    http.client.HTTPException,
    ConnectionError,
    socket.timeout,
    TimeoutError,
    OSError,
)


def _normalize_worker_url(url: str) -> str:
    url = url.strip().rstrip("/")
    if not url:
        raise ConfigurationError("worker URL must not be empty")
    if "//" not in url:
        url = f"http://{url}"
    if not url.startswith(("http://", "https://")):
        raise ConfigurationError(
            f"worker URL must be http(s), got {url!r}"
        )
    return url


class _Worker:
    """Mutable per-worker dispatch state (guarded by the fleet lock)."""

    def __init__(self, url: str) -> None:
        self.url = url
        self.alive = True
        self.consecutive_failures = 0
        self.missed_heartbeats = 0
        self.completed_cells = 0
        #: Cells currently inside an HTTP request to this worker —
        #: what the heartbeat rescues when the worker is declared dead.
        self.in_flight: dict[str, "_PendingCell"] = {}


class _PendingCell:
    """One cell awaiting dispatch, with its retry + resume history."""

    def __init__(
        self, key: str, wire: dict, unit: tuple[str, ...] | None = None
    ) -> None:
        self.key = key
        self.wire = wire
        #: Keys of the gang dispatch unit this cell belongs to (None =
        #: solo).  Unit members are always dispatched to one worker in
        #: one request so the worker can step them in lockstep; a
        #: requeued member keeps its unit, so survivors of a dead
        #: worker re-gang on the next dispatch.
        self.unit = unit
        self.attempts = 0
        self.excluded: set[str] = set()
        #: Last checkpoint returned by a time-sliced worker (None until
        #: the first partial slice completes).  Requeues carry it, so a
        #: rescued cell resumes warm instead of restarting.
        self.state: dict | None = None
        #: Windows completed as of ``state``.
        self.windows_done = 0
        #: Compute seconds accumulated across completed slices.
        self.compute_seconds = 0.0
        #: Completed slices (partial responses) so far.
        self.slices = 0


class HttpWorkerBackend(ExecutionBackend):
    """Coordinate a campaign across an HTTP worker fleet."""

    name = "http"
    in_process = False
    #: Workers may live on other machines: the coordinator must assume
    #: nothing about their caches and write every payload through the
    #: campaign's own store.
    shares_disk = False

    def __init__(
        self,
        workers: Sequence[str],
        *,
        timeout_s: float = 300.0,
        health_timeout_s: float = 3.0,
        heartbeat_interval_s: float = 1.0,
        dead_after_missed: int = 2,
        slots_per_worker: int = 1,
        max_attempts: int = 3,
        blacklist_after: int = 2,
        chunk_cells: int | None = None,
        window_slice: int | None = None,
        batch_cells: int | None = None,
        on_event: Callable[[dict], None] | None = None,
    ) -> None:
        urls = [_normalize_worker_url(url) for url in workers]
        if not urls:
            raise ConfigurationError(
                "http backend needs at least one worker URL"
            )
        if len(set(urls)) != len(urls):
            raise ConfigurationError(f"duplicate worker URLs in {urls}")
        if slots_per_worker < 1:
            raise ConfigurationError("slots_per_worker must be >= 1")
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if chunk_cells is not None and chunk_cells < 1:
            raise ConfigurationError("chunk_cells must be >= 1 or None (auto)")
        if window_slice is not None and window_slice < 1:
            raise ConfigurationError("window_slice must be >= 1 or None")
        if chunk_cells is not None and window_slice is not None:
            raise ConfigurationError(
                "chunk_cells cannot be combined with window_slice: "
                "time-sliced dispatch sends one cell per request so each "
                "partial checkpoint maps to exactly one cell"
            )
        if batch_cells is not None and batch_cells < 2:
            raise ConfigurationError("batch_cells must be >= 2 or None")
        self.timeout_s = timeout_s
        self.health_timeout_s = health_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.dead_after_missed = dead_after_missed
        self.slots_per_worker = slots_per_worker
        self.max_attempts = max_attempts
        self.blacklist_after = blacklist_after
        #: Cells per request; None auto-sizes per batch (two dispatch
        #: waves per slot, so stragglers can still be rebalanced).
        self.chunk_cells = chunk_cells
        #: Max DTM windows a worker may run per request (None = whole
        #: cell).  Slicing forces one cell per request so each partial
        #: checkpoint maps to exactly one cell.  Size slices generously
        #: for trace-recording cells (ch5 records every window): the
        #: checkpoint state carries the trace-so-far, so each slice
        #: ships it both ways — slice wall time should dwarf that.
        self.window_slice = window_slice
        #: Gang dispatch-unit size (None = per-cell dispatch).  Cells
        #: with matching gang descriptors group into units of up to
        #: this many; a unit always travels to one worker in one
        #: request, flagged in the wire body's ``gangs`` field so the
        #: worker steps it through one lockstep gang.  Compatible with
        #: ``window_slice``: gang responses carry one checkpoint per
        #: member, so slicing keeps per-cell resume granularity.
        self.batch_cells = batch_cells
        #: Optional fleet-event listener: called with a small dict for
        #: worker deaths and cell requeues (the jobs scheduler turns
        #: these into job events).  Handlers run under the backend's
        #: dispatch lock — they must be quick and must not call back
        #: into this backend.
        self.on_event = on_event
        self._workers = [_Worker(url) for url in urls]
        #: Cells per request for the current batch (set at submit).
        self._chunk = 1
        self._cond = threading.Condition()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._pending: deque[_PendingCell] = deque()
        self._results: deque[CellResult] = deque()
        self._remaining = 0
        #: Keys already delivered.  A cell can legitimately execute
        #: twice (heartbeat-rescued off a hung worker whose request
        #: later completes anyway); only the first delivery counts.
        self._done: set[str] = set()
        #: Per-cell completion provenance (see :meth:`dispatch_stats`).
        self._completions: dict[str, dict] = {}
        self._partial_slices = 0
        self._fatal: ClusterError | None = None
        #: Batch generation.  A pump thread from an abandoned batch may
        #: survive inside a blocking request past the next submit; its
        #: stale generation makes every later deliver/requeue a no-op.
        self._generation = 0
        self._closed = False

    # -- protocol ----------------------------------------------------------

    def _auto_chunk(self, cells: int) -> int:
        if self.window_slice is not None:
            return 1
        if self.chunk_cells is not None:
            return self.chunk_cells
        slots = max(1, len(self._workers) * self.slots_per_worker)
        # Two dispatch waves per slot, but never more than 16 cells per
        # request: an uncapped chunk on a huge grid (cells >> slots)
        # serializes whole shards behind single requests, so adding
        # workers stops shrinking the chunk — and therefore stops
        # adding parallelism or retry granularity.  The cap is a
        # target, not a truncation point: with ``batch_cells`` set,
        # ``_take_chunk`` always rounds a request up to whole gang
        # units, so a gang larger than 16 still ships intact.
        return max(1, min(math.ceil(cells / (slots * 2)), 16))

    def _plan_pending(self, cells: Sequence[Cell]) -> list[_PendingCell]:
        """Queue entries for a batch, grouped into gang dispatch units.

        Without ``batch_cells`` every cell is solo.  With it, cells
        sharing a cheap gang descriptor (kind + DTM interval + DIMM
        count — no engines are built on the coordinator) chunk into
        units of up to ``batch_cells`` adjacent queue entries; the
        worker's own :func:`~repro.engine.gang.plan_gangs` re-plans
        each unit authoritatively, demoting incompatible or cached
        members to per-cell execution.
        """
        if self.batch_cells is None:
            return [_PendingCell(key, cell_to_wire(spec)) for key, spec in cells]
        groups: dict[tuple, list[Cell]] = {}
        for key, spec in cells:
            descriptor = (
                getattr(spec, "kind", None),
                getattr(spec, "dtm_interval_s", None),
                getattr(spec, "dimms_per_channel", None),
            )
            groups.setdefault(descriptor, []).append((key, spec))
        pending: list[_PendingCell] = []
        for members in groups.values():
            for start in range(0, len(members), self.batch_cells):
                chunk = members[start : start + self.batch_cells]
                unit = (
                    tuple(key for key, _ in chunk) if len(chunk) >= 2 else None
                )
                pending.extend(
                    _PendingCell(key, cell_to_wire(spec), unit)
                    for key, spec in chunk
                )
        return pending

    def submit_cells(
        self, cells: Sequence[Cell], store: ResultStore | None = None
    ) -> None:
        """Encode cells onto the dispatch queue and start the pumps.

        ``store`` is accepted for protocol parity but cannot cross the
        wire: workers always execute against their *own* default store
        stack, and the coordinator merges the returned payloads into
        the campaign's store instead.
        """
        if self._closed:
            raise ConfigurationError("backend is closed")
        self._end_batch()
        self._stop.clear()
        # Pump threads have no ambient trace context (contextvars do not
        # cross threads); capture the submitting caller's context once
        # and replay it on every worker request this batch makes.
        self._trace_header = TRACER.propagation_header()
        with self._cond:
            self._generation += 1
            generation = self._generation
            self._pending = deque(self._plan_pending(cells))
            self._results = deque()
            self._remaining = len(self._pending)
            self._done = set()
            self._completions = {}
            self._partial_slices = 0
            self._fatal = None
            self._chunk = self._auto_chunk(len(self._pending))
            for worker in self._workers:
                worker.alive = True
                worker.consecutive_failures = 0
                worker.missed_heartbeats = 0
                worker.in_flight = {}
        if self._remaining == 0:
            return
        self._threads = [
            threading.Thread(
                target=self._pump,
                args=(worker, generation),
                name=f"repro-fleet-pump-{index}-{slot}",
                daemon=True,
            )
            for index, worker in enumerate(self._workers)
            for slot in range(self.slots_per_worker)
        ]
        self._threads.append(
            threading.Thread(
                target=self._heartbeat,
                args=(generation,),
                name="repro-fleet-heartbeat",
                daemon=True,
            )
        )
        for thread in self._threads:
            thread.start()

    def iter_results(self) -> Iterator[CellResult]:
        delivered = 0
        with self._cond:
            expected = self._remaining + len(self._results)
        try:
            while delivered < expected:
                with self._cond:
                    while not self._results and self._fatal is None:
                        self._cond.wait(timeout=0.2)
                    if self._fatal is not None and not self._results:
                        raise self._fatal
                    item = self._results.popleft()
                delivered += 1
                yield item
        finally:
            self._end_batch()

    def close(self) -> None:
        self._closed = True
        self._end_batch()

    # -- dispatch machinery ------------------------------------------------

    def _end_batch(self) -> None:
        """Stop pumps and heartbeat; safe to call repeatedly."""
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=1.0)
        self._threads = []

    def _live_urls(self) -> set[str]:
        return {w.url for w in self._workers if w.alive}

    def _take_chunk(
        self, worker: _Worker, generation: int
    ) -> list[_PendingCell]:
        """Up to one chunk of cells this worker may run; [] = pump exit."""
        with self._cond:
            while True:
                if (
                    generation != self._generation
                    or self._stop.is_set()
                    or self._fatal is not None
                    or not worker.alive
                    or self._remaining <= 0
                ):
                    return []
                taken: list[_PendingCell] = []
                index = 0
                while index < len(self._pending) and len(taken) < self._chunk:
                    cell = self._pending[index]
                    if cell.unit is None:
                        if worker.url not in cell.excluded:
                            del self._pending[index]
                            worker.in_flight[cell.key] = cell
                            taken.append(cell)
                        else:
                            index += 1
                        continue
                    # A gang unit is taken whole or not at all — never
                    # split across workers — and whole means *whatever
                    # is still pending*: members already completed or
                    # in flight elsewhere re-gang on requeue.  Taking
                    # the unit may overshoot the chunk target; that is
                    # the round-up that keeps gangs larger than the
                    # auto-chunk cap intact.
                    positions = [
                        pos
                        for pos, other in enumerate(self._pending)
                        if other.unit == cell.unit
                    ]
                    members = [self._pending[pos] for pos in positions]
                    if any(worker.url in member.excluded for member in members):
                        index += 1
                        continue
                    for pos in reversed(positions):
                        del self._pending[pos]
                    for member in members:
                        worker.in_flight[member.key] = member
                        taken.append(member)
                    # Removals shifted positions; restart the scan.
                    index = 0
                if taken:
                    return taken
                # Nothing dispatchable to this worker.  A pending cell
                # whose exclusion set covers every live worker can
                # never be dispatched by anyone — the live set may have
                # shrunk since it was requeued — so reopen it rather
                # than spinning forever.
                live = self._live_urls()
                reopened = False
                for cell in self._pending:
                    if cell.excluded and live <= cell.excluded:
                        cell.excluded.clear()
                        reopened = True
                if reopened:
                    continue
                self._cond.wait(timeout=0.2)

    def _pump(self, worker: _Worker, generation: int) -> None:
        """One dispatch slot: pull a chunk, POST it, deliver or requeue."""
        while True:
            cells = self._take_chunk(worker, generation)
            if not cells:
                return
            try:
                completed, partials = self._post_run(worker, cells)
            except urllib.error.HTTPError as error:
                body = self._error_body(error)
                if 400 <= error.code < 500:
                    # The worker parsed the request and rejected a
                    # cell itself — retrying elsewhere cannot help.
                    self._set_fatal(
                        f"worker {worker.url} rejected cells "
                        f"{[cell.key for cell in cells]} "
                        f"({error.code}): {body}",
                        generation,
                    )
                else:
                    self._requeue(worker, cells, f"{error.code}: {body}", generation)
            except (*_TRANSIENT_ERRORS, ValueError) as error:
                self._requeue(worker, cells, repr(error), generation)
            except ClusterError as error:
                self._requeue(worker, cells, str(error), generation)
            except Exception as error:  # noqa: BLE001
                # Anything unexpected (e.g. a version-skewed worker
                # returning shapes _post_run didn't anticipate) must
                # not kill this dispatch thread silently — that would
                # strand the cells in flight and hang the grid.  Treat
                # it like any other per-attempt failure: retry budget,
                # then ClusterError.
                self._requeue(worker, cells, repr(error), generation)
            else:
                self._deliver(worker, completed, partials, generation)

    def _post_run(
        self, worker: _Worker, cells: list[_PendingCell]
    ) -> tuple[list[tuple[_PendingCell, dict]], list[tuple[_PendingCell, dict]]]:
        """POST one chunk; returns (completed, partial) raw cell results."""
        body: dict = {"cells": [cell.wire for cell in cells]}
        if self.batch_cells is not None:
            units: dict[tuple[str, ...], list[str]] = {}
            for cell in cells:
                if cell.unit is not None:
                    units.setdefault(cell.unit, []).append(cell.key)
            gangs = [keys for keys in units.values() if len(keys) >= 2]
            if gangs:
                body["gangs"] = gangs
        if self.window_slice is not None:
            body["window_slice"] = self.window_slice
            resume = {
                cell.key: cell.state for cell in cells if cell.state is not None
            }
            if resume:
                body["resume"] = resume
        headers = {"Content-Type": "application/json"}
        trace_header = getattr(self, "_trace_header", None)
        if trace_header:
            headers[TRACE_HEADER] = trace_header
        request = urllib.request.Request(
            f"{worker.url}/v1/worker/run",
            data=json.dumps(body).encode(),
            headers=headers,
        )
        with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
            document = json.load(resp)
        raw_results = document.get("results")
        if not isinstance(raw_results, list) or len(raw_results) != len(cells):
            raise ClusterError(
                f"worker {worker.url} returned a malformed run document "
                f"({len(cells)} cells sent)"
            )
        by_key = {cell.key: cell for cell in cells}
        completed: list[tuple[_PendingCell, dict]] = []
        partials: list[tuple[_PendingCell, dict]] = []
        for raw in raw_results:
            key = raw.get("key")
            if not isinstance(key, str) or key not in by_key:
                raise ClusterError(
                    f"worker {worker.url} answered with unexpected cell "
                    f"key {key!r} — spec/worker version skew?"
                )
            cell = by_key.pop(key)
            if raw.get("partial"):
                state = raw.get("state")
                if not isinstance(state, dict):
                    raise ClusterError(
                        f"worker {worker.url} returned a partial cell "
                        f"{key} without a checkpoint state"
                    )
                partials.append((cell, raw))
            else:
                payload = raw.get("payload")
                if not isinstance(payload, dict):
                    raise ClusterError(
                        f"worker {worker.url} returned a malformed cell result"
                    )
                completed.append((cell, raw))
        if by_key:
            raise ClusterError(
                f"worker {worker.url} dropped cells {sorted(by_key)} "
                f"from its run document"
            )
        return completed, partials

    @staticmethod
    def _error_body(error: urllib.error.HTTPError) -> str:
        try:
            raw = error.read().decode(errors="replace")
        except OSError:
            return error.reason or "?"
        try:
            return json.loads(raw).get("error", raw.strip())
        except ValueError:
            return raw.strip() or (error.reason or "?")

    def _deliver(
        self,
        worker: _Worker,
        completed: list[tuple[_PendingCell, dict]],
        partials: list[tuple[_PendingCell, dict]],
        generation: int,
    ) -> None:
        with self._cond:
            if generation != self._generation:
                return
            worker.consecutive_failures = 0
            for cell, raw in completed:
                worker.in_flight.pop(cell.key, None)
                if cell.key in self._done:
                    # A heartbeat-rescued duplicate already delivered
                    # this cell; drop the late copy.
                    continue
                self._done.add(cell.key)
                worker.completed_cells += 1
                seconds = cell.compute_seconds + float(
                    raw.get("compute_seconds", 0.0)
                )
                self._completions[cell.key] = {
                    "worker": worker.url,
                    "slices": cell.slices + 1,
                    "windows_done": int(raw.get("windows_done", 0)),
                    "resumed_from": int(raw.get("resumed_from", 0)),
                    "cache": raw.get("cache", "miss"),
                }
                self._results.append((
                    cell.key,
                    raw["payload"],
                    raw.get("cache") == "hit",
                    round(seconds, 6),
                    {},
                ))
                self._remaining -= 1
            for cell, raw in partials:
                worker.in_flight.pop(cell.key, None)
                self._partial_slices += 1
                if cell.key in self._done or self._cell_is_active(cell):
                    continue
                cell.state = raw["state"]
                cell.windows_done = int(raw.get("windows_done", 0))
                cell.compute_seconds += float(raw.get("compute_seconds", 0.0))
                cell.slices += 1
                # Front of the queue: the next free slot continues this
                # cell while its worker-side caches are still warm.
                self._pending.appendleft(cell)
            self._cond.notify_all()

    def _cell_is_active(self, cell: _PendingCell) -> bool:
        """Whether ``cell`` is already queued or in flight elsewhere."""
        if any(cell is queued for queued in self._pending):
            return True
        return any(
            cell is held
            for worker in self._workers
            for held in worker.in_flight.values()
        )

    def _emit(self, event: str, **detail) -> None:
        """Report a fleet event to the listener (errors swallowed)."""
        hook = self.on_event
        if hook is None:
            return
        try:
            hook({"event": event, **detail})
        except Exception:
            pass

    def _requeue(
        self,
        worker: _Worker,
        cells: list[_PendingCell],
        why: str,
        generation: int,
    ) -> None:
        with self._cond:
            if generation != self._generation:
                return
            self._emit(
                "cells_requeued",
                worker=worker.url,
                keys=[cell.key for cell in cells],
                why=why,
            )
            METRICS.counter_inc(
                "repro_fleet_requeues_total",
                "Dispatch failures that requeued cells",
            )
            worker.consecutive_failures += 1
            if worker.consecutive_failures >= self.blacklist_after:
                self._mark_worker_dead(worker, generation)
            for cell in cells:
                worker.in_flight.pop(cell.key, None)
                if cell.key in self._done or self._cell_is_active(cell):
                    # The heartbeat already rescued this cell off the
                    # dying worker (and it may even have finished
                    # elsewhere); this late failure only counts against
                    # the worker.
                    continue
                cell.attempts += 1
                METRICS.counter_inc(
                    "repro_fleet_cell_retries_total",
                    "Cell attempts burned by dispatch failures",
                )
                if cell.attempts >= self.max_attempts:
                    self._fatal = ClusterError(
                        f"cell {cell.key} failed after {cell.attempts} "
                        f"attempts; last worker {worker.url}: {why}"
                    )
                    continue
                cell.excluded.add(worker.url)
                live = self._live_urls()
                if not live:
                    self._fatal = ClusterError(
                        f"all workers are dead or blacklisted "
                        f"(last failure on {worker.url}: {why})"
                    )
                    continue
                if live <= cell.excluded:
                    # Every live worker already failed this cell once;
                    # let the retry budget, not the exclusion set,
                    # decide when to give up.
                    cell.excluded.clear()
                # The cell keeps any checkpoint from earlier slices, so
                # the retry resumes warm wherever it lands.
                self._pending.append(cell)
            self._cond.notify_all()

    def _mark_worker_dead(self, worker: _Worker, generation: int) -> None:
        """Stop dispatching to ``worker`` and rescue its in-flight cells.

        The pump thread holding a request to a dead-but-hung worker may
        stay blocked until its HTTP timeout; requeueing its cells here
        lets the survivors pick them up immediately — resuming from the
        cell's last checkpoint when time-sliced dispatch has produced
        one.  If the original request does complete later,
        :meth:`_deliver` deduplicates.
        """
        with self._cond:
            if generation != self._generation:
                return
            if worker.alive:
                self._emit(
                    "worker_dead",
                    worker=worker.url,
                    rescued=sorted(worker.in_flight),
                )
                METRICS.counter_inc(
                    "repro_fleet_workers_blacklisted_total",
                    "Workers marked dead/blacklisted by the coordinator",
                )
                LOG.warning(
                    "fleet.worker_dead",
                    worker=worker.url,
                    rescued=len(worker.in_flight),
                )
            worker.alive = False
            for key, cell in list(worker.in_flight.items()):
                worker.in_flight.pop(key, None)
                if key in self._done or self._cell_is_active(cell):
                    continue
                self._pending.append(cell)
            self._cond.notify_all()

    def _set_fatal(self, message: str, generation: int) -> None:
        with self._cond:
            if generation != self._generation:
                return
            self._fatal = ClusterError(message)
            self._cond.notify_all()

    # -- heartbeat ---------------------------------------------------------

    def _heartbeat(self, generation: int) -> None:
        while not self._stop.wait(self.heartbeat_interval_s):
            with self._cond:
                if (
                    generation != self._generation
                    or self._fatal is not None
                    or self._remaining <= 0
                ):
                    return
                workers = [w for w in self._workers if w.alive]
            for worker in workers:
                healthy = self._check_health(worker)
                with self._cond:
                    if generation != self._generation:
                        return
                    if healthy:
                        worker.missed_heartbeats = 0
                    else:
                        worker.missed_heartbeats += 1
                        if worker.missed_heartbeats >= self.dead_after_missed:
                            self._mark_worker_dead(worker, generation)
            with self._cond:
                if generation != self._generation:
                    return
                if not self._live_urls() and self._remaining > 0:
                    if self._fatal is None:
                        self._fatal = ClusterError(
                            "all workers stopped answering heartbeats"
                        )
                    self._cond.notify_all()
                    return

    def _check_health(self, worker: _Worker) -> bool:
        try:
            with urllib.request.urlopen(
                f"{worker.url}/v1/worker/health",
                timeout=self.health_timeout_s,
            ) as resp:
                document = json.load(resp)
        except (*_TRANSIENT_ERRORS, ValueError):
            return False
        return document.get("status") == "ok"

    # -- introspection -----------------------------------------------------

    def fleet_stats(self) -> list[dict]:
        """Per-worker dispatch counters (for logs, tests, and the CLI).

        ``in_flight_cells`` lists the keys currently inside an HTTP
        request to that worker — what a kill at this instant would
        interrupt.
        """
        with self._cond:
            return [
                {
                    "url": w.url,
                    "alive": w.alive,
                    "completed_cells": w.completed_cells,
                    "consecutive_failures": w.consecutive_failures,
                    "in_flight_cells": sorted(w.in_flight),
                }
                for w in self._workers
            ]

    def dispatch_stats(self) -> dict:
        """Batch-level dispatch provenance.

        ``cells`` maps each delivered key to its completion record:
        which worker finished it, how many slices it took, the window
        count at completion, and ``resumed_from`` — the window the
        final slice started at (``> 0`` means the cell finished from a
        warm checkpoint rather than from scratch).
        """
        with self._cond:
            return {
                "chunk_cells": self._chunk,
                "window_slice": self.window_slice,
                "partial_slices": self._partial_slices,
                "cells": {
                    key: dict(record)
                    for key, record in self._completions.items()
                },
            }
