"""`repro.obs` — the observability spine: tracing, metrics, SLOs, logs.

One package answers "what is this process doing and is it healthy":

- :mod:`repro.obs.trace` — spans with ``X-Repro-Trace`` propagation,
  a bounded ring, JSONL sink, and Chrome trace-event export;
- :mod:`repro.obs.metrics` — the process-wide
  :class:`~repro.obs.metrics.MetricsRegistry` (:data:`METRICS`)
  behind every ``/metrics`` scrape;
- :mod:`repro.obs.slo` — declarative objectives evaluated from those
  metrics, served at ``/v1/slo`` and gated by ``repro slo check``;
- :mod:`repro.obs.log` — one-line JSON logs correlated by trace id.
"""

from repro.obs.log import LOG, StructuredLog
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS,
    OVERFLOW_LABEL,
    MetricsRegistry,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    SloResult,
    SloSpec,
    evaluate,
    render_alert_rules,
    slo_document,
    with_overrides,
)
from repro.obs.trace import (
    TRACE_HEADER,
    TRACER,
    Span,
    Tracer,
    TracingObserver,
    chrome_trace,
    read_jsonl,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_SLOS",
    "LOG",
    "METRICS",
    "OVERFLOW_LABEL",
    "MetricsRegistry",
    "Span",
    "SloResult",
    "SloSpec",
    "StructuredLog",
    "TRACER",
    "TRACE_HEADER",
    "Tracer",
    "TracingObserver",
    "chrome_trace",
    "evaluate",
    "read_jsonl",
    "render_alert_rules",
    "slo_document",
    "with_overrides",
]
