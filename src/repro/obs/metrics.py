"""A dependency-free metrics registry with bounded label cardinality.

Counters, gauges, and fixed-bucket histograms, rendered two ways from
one source of truth: Prometheus-style text exposition (the default
``GET /metrics`` body) and a JSON document (``?format=json``) for
consumers without a scraper.

Label cardinality is bounded *per metric*: once a metric has
``max_series`` distinct label sets, further label combinations collapse
into a single ``"_other"`` series instead of allocating new ones.  An
unbounded tenant-id stream therefore costs O(1) memory and keeps the
scrape payload flat — the standing advice from every production
monitoring postmortem, enforced in the registry rather than left to
caller discipline.

This module is the process-wide home of the registry (it grew up in
``repro.jobs.metrics``, which remains as a deprecated alias): the
:data:`METRICS` singleton collects engine cell timings, store
hit/miss/single-flight counts, cluster dispatch events, HTTP route
latencies, and the jobs-service series, so one ``/metrics`` scrape
describes the whole process.
"""

from __future__ import annotations

import threading
from typing import Iterator

#: Seconds buckets sized for this workload: warm cells are sub-ms, a
#: cold cell is ~0.3-0.5 s, multi-cell jobs run seconds to minutes.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 120.0
)

#: Collapsed-series label value once a metric's cardinality bound hits.
OVERFLOW_LABEL = "_other"

#: Default distinct-label-set bound per metric.
DEFAULT_MAX_SERIES = 64


def _format_value(value: float) -> str:
    """Render ints without a trailing ``.0`` (Prometheus style)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in labels
    )
    return "{" + rendered + "}"


class _Series:
    """One label-set's state within a metric."""

    __slots__ = ("value", "count", "total", "buckets")

    def __init__(self, bucket_count: int = 0) -> None:
        self.value = 0.0
        self.count = 0
        self.total = 0.0
        self.buckets = [0] * bucket_count


class Metric:
    """One named counter/gauge/histogram family."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.label_names = label_names
        self.buckets = buckets if kind == "histogram" else ()
        self.max_series = max_series
        self._series: dict[tuple[str, ...], _Series] = {}

    def _series_for(self, label_values: tuple[str, ...]) -> _Series:
        series = self._series.get(label_values)
        if series is None:
            if len(self._series) >= self.max_series:
                label_values = (OVERFLOW_LABEL,) * len(self.label_names)
                series = self._series.get(label_values)
            if series is None:
                series = self._series[label_values] = _Series(
                    len(self.buckets)
                )
        return series

    def _resolve(self, labels: dict[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{list(self.label_names)}, got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    # Mutators are called under the registry lock.

    def inc(self, labels: dict[str, str], amount: float) -> None:
        self._series_for(self._resolve(labels)).value += amount

    def set(self, labels: dict[str, str], value: float) -> None:
        self._series_for(self._resolve(labels)).value = value

    def observe(self, labels: dict[str, str], value: float) -> None:
        series = self._series_for(self._resolve(labels))
        series.count += 1
        series.total += value
        # Storage is per-bucket (non-cumulative); render_text cumulates.
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                series.buckets[index] += 1
                break

    # Renderers.

    def render_text(self) -> Iterator[str]:
        yield f"# HELP {self.name} {self.help_text}"
        yield f"# TYPE {self.name} {self.kind}"
        for label_values in sorted(self._series):
            series = self._series[label_values]
            labels = tuple(zip(self.label_names, label_values))
            if self.kind == "histogram":
                cumulative = 0
                for bound, bucket in zip(self.buckets, series.buckets):
                    cumulative += bucket
                    bucket_labels = labels + (("le", _format_value(bound)),)
                    yield (
                        f"{self.name}_bucket{_format_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                inf_labels = labels + (("le", "+Inf"),)
                yield f"{self.name}_bucket{_format_labels(inf_labels)} {series.count}"
                yield f"{self.name}_sum{_format_labels(labels)} {_format_value(round(series.total, 6))}"
                yield f"{self.name}_count{_format_labels(labels)} {series.count}"
            else:
                yield (
                    f"{self.name}{_format_labels(labels)} "
                    f"{_format_value(series.value)}"
                )

    def render_json(self) -> dict:
        series_docs = []
        for label_values in sorted(self._series):
            series = self._series[label_values]
            doc: dict = {"labels": dict(zip(self.label_names, label_values))}
            if self.kind == "histogram":
                doc["count"] = series.count
                doc["sum"] = round(series.total, 6)
                doc["buckets"] = {
                    _format_value(bound): bucket
                    for bound, bucket in zip(self.buckets, series.buckets)
                }
            else:
                doc["value"] = series.value
            series_docs.append(doc)
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help_text,
            "series": series_docs,
        }


class MetricsRegistry:
    """Thread-safe collection of metrics with one render path."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        **kwargs,
    ) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Metric(
                name, kind, help_text, label_names, **kwargs
            )
        elif metric.kind != kind or metric.label_names != label_names:
            raise ValueError(
                f"metric {name!r} re-registered with a different "
                f"kind/label set"
            )
        return metric

    def counter_inc(
        self, name: str, help_text: str, amount: float = 1.0, **labels: str
    ) -> None:
        """Increment a counter (registered on first use)."""
        with self._lock:
            metric = self._register(
                name, "counter", help_text, tuple(sorted(labels))
            )
            metric.inc(labels, amount)

    def gauge_set(
        self, name: str, help_text: str, value: float, **labels: str
    ) -> None:
        """Set a gauge to an absolute value."""
        with self._lock:
            metric = self._register(
                name, "gauge", help_text, tuple(sorted(labels))
            )
            metric.set(labels, value)

    def observe(
        self,
        name: str,
        help_text: str,
        value: float,
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> None:
        """Record one histogram observation."""
        with self._lock:
            metric = self._register(
                name, "histogram", help_text, tuple(sorted(labels)),
                buckets=buckets,
            )
            metric.observe(labels, value)

    def counter_value(self, name: str, **labels: str) -> float:
        """Current value of one counter series (0 when absent)."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                return 0.0
            key = tuple(str(labels[n]) for n in metric.label_names)
            series = metric._series.get(key)
            return 0.0 if series is None else series.value

    # -- aggregate readers (the SLO evaluator's query surface) -------------

    def counter_total(self, name: str, **label_filter: str) -> float:
        """Sum of every counter series matching a label *subset*.

        ``counter_total("repro_jobs_finished_total", status="failed")``
        sums across tenants; with no filter it sums the whole family.
        Returns 0.0 for unknown metrics.
        """
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                return 0.0
            wanted = {
                name_: str(value) for name_, value in label_filter.items()
            }
            total = 0.0
            for label_values, series in metric._series.items():
                labels = dict(zip(metric.label_names, label_values))
                if all(labels.get(k) == v for k, v in wanted.items()):
                    total += series.value
            return total

    def histogram_stats(
        self, name: str, **label_filter: str
    ) -> tuple[int, float, list[int]]:
        """``(count, sum, per-bucket counts)`` aggregated over matching
        series of one histogram.  Bucket counts are non-cumulative and
        align with the metric's bucket bounds; ``(0, 0.0, [])`` when the
        metric is unknown.
        """
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None or metric.kind != "histogram":
                return 0, 0.0, []
            wanted = {
                name_: str(value) for name_, value in label_filter.items()
            }
            count, total = 0, 0.0
            buckets = [0] * len(metric.buckets)
            for label_values, series in metric._series.items():
                labels = dict(zip(metric.label_names, label_values))
                if not all(labels.get(k) == v for k, v in wanted.items()):
                    continue
                count += series.count
                total += series.total
                for index, bucket in enumerate(series.buckets):
                    buckets[index] += bucket
            return count, total, buckets

    def histogram_quantile(
        self, name: str, quantile: float, **label_filter: str
    ) -> float | None:
        """Estimate a quantile from one histogram's buckets.

        Returns the upper bound of the first bucket whose cumulative
        count reaches ``quantile * count`` — a conservative (never
        under-reporting) estimate.  When the target rank lies beyond
        the last finite bucket the estimate is ``inf`` (the Prometheus
        convention), so an out-of-range tail can still breach an SLO
        whose threshold equals the largest bound.  ``None`` when the
        histogram has no observations.
        """
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        with self._lock:
            metric = self._metrics.get(name)
        if metric is None:
            return None
        count, _, buckets = self.histogram_stats(name, **label_filter)
        if count == 0:
            return None
        target = quantile * count
        cumulative = 0
        for bound, bucket in zip(metric.buckets, buckets):
            cumulative += bucket
            if cumulative >= target:
                return bound
        return float("inf")

    def reset(self) -> None:
        """Drop every metric (test isolation for the shared registry)."""
        with self._lock:
            self._metrics.clear()

    def render_text(self) -> str:
        """The Prometheus-style exposition body."""
        with self._lock:
            lines: list[str] = []
            for name in sorted(self._metrics):
                lines.extend(self._metrics[name].render_text())
        return "\n".join(lines) + "\n"

    def render_json(self) -> list[dict]:
        """Every metric as a JSON-ready document."""
        with self._lock:
            return [
                self._metrics[name].render_json()
                for name in sorted(self._metrics)
            ]


#: The process-wide registry: every subsystem that does not receive an
#: explicit registry emits here, so ``GET /metrics`` on any service in
#: this process describes engine, stores, cluster, and jobs at once.
METRICS = MetricsRegistry()
