"""Structured one-line JSON logging with trace correlation.

The service, workers, and the jobs scheduler historically narrate with
plain ``print`` lines — fine on a developer's terminal, useless to a
log pipeline.  This module gives those call sites one API:

    LOG.info("job.finished", f"job {job_id} completed", job=job_id)

In the default **plain** mode the second argument (or a ``key=value``
rendering) is printed exactly as before, so nothing changes for humans.
With ``--log-json`` (or ``REPRO_LOG_JSON=1``) each event becomes one
JSON object per line on stderr — ``ts``, ``level``, ``event``, the
fields, and the current ``trace_id`` when a trace is active — so logs
join traces and metrics on the same correlation key.
"""

from __future__ import annotations

import json
import sys
import threading
import time

from repro.obs.trace import TRACER


def _env_truthy(name: str) -> bool:
    import os

    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


class StructuredLog:
    """Process-wide event logger: plain lines or JSON lines."""

    def __init__(self) -> None:
        self.json_mode = _env_truthy("REPRO_LOG_JSON")
        self._lock = threading.Lock()

    def configure(self, *, json_mode: bool | None = None) -> None:
        if json_mode is not None:
            self.json_mode = bool(json_mode)

    def _emit(
        self, level: str, event: str, message: str | None, fields: dict
    ) -> None:
        if not self.json_mode:
            # ``message`` is the plain-mode text; events without one
            # (scheduler internals) exist only in JSON mode, keeping
            # the default terminal output exactly as it always was.
            if message is not None:
                print(message, flush=True)
            return
        record: dict = {
            "ts": round(time.time(), 6),
            "level": level,
            "event": event,
        }
        trace_id = TRACER.current_trace_id()
        if trace_id:
            record["trace_id"] = trace_id
        if message is not None:
            record["message"] = message
        for key, value in fields.items():
            if key not in record:
                record[key] = value
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            print(line, file=sys.stderr, flush=True)

    def info(self, event: str, message: str | None = None, **fields) -> None:
        """One informational event (plain: prints ``message`` as-is)."""
        self._emit("info", event, message, fields)

    def warning(self, event: str, message: str | None = None, **fields) -> None:
        """One warning event."""
        self._emit("warning", event, message, fields)

    def error(self, event: str, message: str | None = None, **fields) -> None:
        """One error event."""
        self._emit("error", event, message, fields)


#: The process-wide logger (CLI ``--log-json`` flips it to JSON mode).
LOG = StructuredLog()
