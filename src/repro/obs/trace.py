"""End-to-end tracing: spans, context propagation, Chrome export.

One campaign run — CLI or client, coordinator, every fleet worker, and
the per-window engine loop inside each cell — should read as *one*
trace.  The pieces:

- :class:`Span` — a named interval with ``trace_id``/``span_id``/
  ``parent_id``, wall-clock start, duration, and a small ``args`` dict.
- :class:`Tracer` — the process-wide span factory.  The current span
  rides a :class:`~contextvars.ContextVar` (the same discipline the
  progress broker uses), so nested ``with TRACER.span(...)`` blocks
  parent correctly across the service's per-request threads.
- **Propagation** — :meth:`Tracer.propagation_header` renders the
  current context as the ``X-Repro-Trace`` header value
  (``trace_id:span_id``); :meth:`Tracer.activate` adopts one on the
  receiving side.  The HTTP service extracts the header for every
  route, and both the worker backend and the jobs client inject it, so
  worker-side spans share the coordinator's ``trace_id``.
- **Storage** — finished spans land in a bounded in-memory ring
  (served by ``GET /v1/trace/<trace_id>``) and, when configured, an
  append-only JSONL sink for post-hoc export.
- :func:`chrome_trace` — spans as Chrome trace-event JSON, which loads
  directly in Perfetto / ``chrome://tracing``.

Tracing is **off by default** and costs one attribute check on the hot
paths when off.  Enable with ``REPRO_TRACE=1`` (or
:meth:`Tracer.configure`); ``REPRO_TRACE_SAMPLE`` sets the per-window
sampling stride and ``REPRO_TRACE_JSONL`` the sink path.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro.engine.observers import Observer

#: The propagation header carried by every traced HTTP request.
TRACE_HEADER = "X-Repro-Trace"

#: Default bounded-ring capacity (spans retained per process).
DEFAULT_RING = 4096

#: Default per-window sampling stride for engine phase spans.
DEFAULT_SAMPLE_EVERY = 32

_HEX = set("0123456789abcdef")


def _new_id(length: int) -> str:
    return uuid.uuid4().hex[:length]


def _valid_id(value: str, max_length: int = 32) -> bool:
    return (
        0 < len(value) <= max_length and all(ch in _HEX for ch in value)
    )


@dataclass
class Span:
    """One finished interval of work within a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start_s: float
    duration_s: float
    pid: int
    tid: int
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "tid": self.tid,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Span":
        return cls(
            name=str(raw["name"]),
            trace_id=str(raw["trace_id"]),
            span_id=str(raw["span_id"]),
            parent_id=raw.get("parent_id"),
            start_s=float(raw["start_s"]),
            duration_s=float(raw["duration_s"]),
            pid=int(raw.get("pid", 0)),
            tid=int(raw.get("tid", 0)),
            args=dict(raw.get("args") or {}),
        )


class _SpanHandle:
    """Context manager for one open span; records itself on exit."""

    __slots__ = (
        "tracer", "name", "trace_id", "span_id", "parent_id", "args",
        "_token", "_start_wall", "_start_perf",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: str | None,
        args: dict,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id(16)
        self.parent_id = parent_id
        self.args = args
        self._token: contextvars.Token | None = None

    def __enter__(self) -> "_SpanHandle":
        self._token = _CURRENT.set((self.trace_id, self.span_id))
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start_perf
        if self._token is not None:
            _CURRENT.reset(self._token)
        if exc_type is not None:
            self.args = dict(self.args)
            self.args["error"] = exc_type.__name__
        self.tracer._record(
            Span(
                name=self.name,
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
                start_s=self._start_wall,
                duration_s=duration,
                pid=os.getpid(),
                tid=threading.get_ident() % 1_000_000,
                args=self.args,
            )
        )


class _NullSpan:
    """Shared do-nothing handle returned while tracing is disabled."""

    __slots__ = ()
    span_id = None
    trace_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()

#: (trace_id, span_id) of the innermost open span on this context.
_CURRENT: contextvars.ContextVar[tuple[str, str] | None] = (
    contextvars.ContextVar("repro_trace_current", default=None)
)


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


class Tracer:
    """Process-wide span factory with a bounded ring and JSONL sink."""

    def __init__(self) -> None:
        self.enabled = _env_truthy("REPRO_TRACE")
        try:
            self.sample_every = max(
                1, int(os.environ.get("REPRO_TRACE_SAMPLE", DEFAULT_SAMPLE_EVERY))
            )
        except ValueError:
            self.sample_every = DEFAULT_SAMPLE_EVERY
        self._ring: deque[Span] = deque(maxlen=DEFAULT_RING)
        self._lock = threading.Lock()
        self._sink_path: str | None = (
            os.environ.get("REPRO_TRACE_JSONL") or None
        )

    def configure(
        self,
        *,
        enabled: bool | None = None,
        sample_every: int | None = None,
        sink: str | None = None,
        ring: int | None = None,
    ) -> None:
        """Adjust the tracer (CLI flags override the env defaults)."""
        with self._lock:
            if enabled is not None:
                self.enabled = enabled
            if sample_every is not None:
                self.sample_every = max(1, int(sample_every))
            if sink is not None:
                self._sink_path = sink or None
            if ring is not None:
                self._ring = deque(self._ring, maxlen=max(16, int(ring)))

    # -- span creation ------------------------------------------------------

    def span(self, name: str, **args) -> _SpanHandle | _NullSpan:
        """Open a span under the current context (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        current = _CURRENT.get()
        if current is None:
            trace_id, parent_id = _new_id(16), None
        else:
            trace_id, parent_id = current
        return _SpanHandle(self, name, trace_id, parent_id, args)

    def activate(self, trace_id: str, parent_id: str):
        """Adopt a remote parent context (from a propagation header).

        Returns a context-manager; spans opened inside it join the
        remote trace as children of ``parent_id``.
        """
        return _ActivatedContext(trace_id, parent_id)

    # -- propagation --------------------------------------------------------

    def current_trace_id(self) -> str | None:
        current = _CURRENT.get()
        return current[0] if current else None

    def propagation_header(self) -> str | None:
        """The current context as an ``X-Repro-Trace`` value, if any."""
        if not self.enabled:
            return None
        current = _CURRENT.get()
        if current is None:
            return None
        return f"{current[0]}:{current[1]}"

    @staticmethod
    def parse_header(value: str | None) -> tuple[str, str] | None:
        """``(trace_id, parent_span_id)`` from a header, or None."""
        if not value or ":" not in value:
            return None
        trace_id, _, parent_id = value.partition(":")
        trace_id, parent_id = trace_id.strip(), parent_id.strip()
        if _valid_id(trace_id) and _valid_id(parent_id):
            return trace_id, parent_id
        return None

    # -- storage ------------------------------------------------------------

    def _record(self, span: Span) -> None:
        with self._lock:
            self._ring.append(span)
            sink = self._sink_path
        if sink:
            line = json.dumps(span.to_dict(), sort_keys=True)
            try:
                with self._lock:
                    with open(sink, "a", encoding="utf-8") as handle:
                        handle.write(line + "\n")
            except OSError:
                pass

    def spans(self, trace_id: str | None = None) -> list[Span]:
        """A snapshot of retained spans (optionally one trace only)."""
        with self._lock:
            snapshot = list(self._ring)
        if trace_id is None:
            return snapshot
        return [span for span in snapshot if span.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in the ring, oldest first."""
        seen: dict[str, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        """Drop retained spans (test isolation)."""
        with self._lock:
            self._ring.clear()


class _ActivatedContext:
    """Context manager installing a remote (trace_id, parent) pair."""

    __slots__ = ("trace_id", "parent_id", "_token")

    def __init__(self, trace_id: str, parent_id: str) -> None:
        self.trace_id = trace_id
        self.parent_id = parent_id
        self._token: contextvars.Token | None = None

    def __enter__(self) -> "_ActivatedContext":
        self._token = _CURRENT.set((self.trace_id, self.parent_id))
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)


#: The process-wide tracer (workers pick up REPRO_TRACE from the env).
TRACER = Tracer()


class TracingObserver(Observer):
    """Per-window engine phase timings, recorded under sampling.

    Attached by :class:`~repro.engine.SteppingEngine` when tracing is
    enabled.  The engine times the three window phases — DTM policy
    decision (``begin_window``), the thermal kernel step, and
    accounting + observer fan-out (which contains checkpoint writes) —
    and hands them here; every ``sample_every``-th window becomes a
    ``window`` span whose args carry the phase split, so a Perfetto
    view of a slow cell answers "where did the time go".

    Transient: excluded from engine checkpoints, so attaching it never
    changes checkpoint shape or restore compatibility.
    """

    transient = True

    def __init__(
        self, tracer: Tracer | None = None, sample_every: int | None = None
    ) -> None:
        self.tracer = tracer if tracer is not None else TRACER
        self.sample_every = (
            sample_every if sample_every else self.tracer.sample_every
        )
        self._windows = 0

    def record_phases(
        self,
        engine,
        policy_s: float,
        kernel_s: float,
        apply_s: float,
    ) -> None:
        """Called by the engine after each window when tracing is on."""
        self._windows += 1
        if (self._windows - 1) % self.sample_every:
            return
        total = policy_s + kernel_s + apply_s
        with self.tracer.span(
            "window",
            index=self._windows - 1,
            policy_s=round(policy_s, 9),
            kernel_s=round(kernel_s, 9),
            apply_s=round(apply_s, 9),
            sampled_every=self.sample_every,
        ) as span:
            # Back-date the span to cover the measured window instead of
            # the (empty) body of this with-block.
            if isinstance(span, _SpanHandle):
                span._start_wall = time.time() - total
                span._start_perf = time.perf_counter() - total


def engine_observer() -> TracingObserver | None:
    """A fresh :class:`TracingObserver` when tracing is on, else None."""
    if not TRACER.enabled:
        return None
    return TracingObserver(TRACER)


def chrome_trace(spans: list[Span]) -> dict:
    """Spans as a Chrome trace-event document (Perfetto-loadable).

    Complete (``ph: "X"``) events with microsecond timestamps; span
    relationships ride in ``args`` since the viewer nests by pid/tid
    and time containment.
    """
    events = []
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(span.start_s * 1e6, 1),
                "dur": max(0.1, round(span.duration_s * 1e6, 1)),
                "pid": span.pid,
                "tid": span.tid,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.args,
                },
            }
        )
    events.sort(key=lambda event: event["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def read_jsonl(path: str) -> Iterator[Span]:
    """Spans from a JSONL sink file (unreadable lines are skipped)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield Span.from_dict(json.loads(line))
            except (ValueError, KeyError, TypeError):
                continue
