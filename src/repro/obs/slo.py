"""Declarative SLOs evaluated straight from the metrics registry.

An :class:`SloSpec` names a target over series the process already
exports — a latency quantile bound read from a histogram, or a ratio
of counter series (error rate, warm-hit rate).  :func:`evaluate` turns
the registry's current state into :class:`SloResult` verdicts, which
back three surfaces:

- ``GET /v1/slo`` — the live document;
- ``repro slo check`` — CI/cron gate, nonzero exit on any breach;
- :func:`render_alert_rules` — the same specs as a Prometheus
  alerting-rules file with classic multi-window burn-rate alerts, for
  deployments that scrape ``/metrics`` into a real Prometheus.

Quantiles are estimated as the upper bound of the first histogram
bucket covering the target rank — conservative (never under-reports a
latency), which is the right bias for a breach gate.  An SLO with no
observations reports ``no_data`` and never breaches: a freshly booted
service is not in violation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.obs.metrics import METRICS, MetricsRegistry

#: Verdict states.
OK, BREACH, NO_DATA = "ok", "breach", "no_data"


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over exported metrics.

    ``kind`` selects the evaluator:

    - ``"quantile"`` — ``metric`` is a histogram; the ``quantile`` of
      its aggregate distribution must satisfy the threshold.
    - ``"ratio"`` — ``metric`` filtered by ``event_labels`` divided by
      the same (or ``total_metric``) family unfiltered; the ratio must
      satisfy the threshold.

    ``direction`` is ``"le"`` (value must stay at or below the
    threshold: latencies, error rates) or ``"ge"`` (at or above:
    hit ratios).
    """

    name: str
    description: str
    kind: str
    metric: str
    threshold: float
    direction: str = "le"
    quantile: float = 0.99
    event_labels: tuple[tuple[str, str], ...] = ()
    total_metric: str = ""
    #: Ratios over fewer events than this report ``no_data`` rather
    #: than letting one early failure read as a 100% error rate.
    min_events: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("quantile", "ratio"):
            raise ConfigurationError(
                f"SLO {self.name!r}: kind must be 'quantile' or 'ratio', "
                f"got {self.kind!r}"
            )
        if self.direction not in ("le", "ge"):
            raise ConfigurationError(
                f"SLO {self.name!r}: direction must be 'le' or 'ge', "
                f"got {self.direction!r}"
            )


@dataclass(frozen=True)
class SloResult:
    """One evaluated SLO: measured value vs target."""

    spec: SloSpec
    status: str
    value: float | None
    detail: str

    def to_dict(self) -> dict:
        value = self.value
        if value is not None and not math.isfinite(value):
            # An inf quantile estimate (tail beyond the last bucket)
            # has no JSON-safe rendering; the verdict already encodes
            # it and detail says why the value is absent.
            value = None
        return {
            "name": self.spec.name,
            "description": self.spec.description,
            "kind": self.spec.kind,
            "metric": self.spec.metric,
            "direction": self.spec.direction,
            "threshold": self.spec.threshold,
            "value": value,
            "status": self.status,
            "detail": self.detail,
        }


#: The stock objective set: jobs-service latency and correctness plus
#: the cache's warm-hit efficiency.  Thresholds are deliberately
#: generous defaults — tune per deployment with ``--slo name=value``.
DEFAULT_SLOS: tuple[SloSpec, ...] = (
    SloSpec(
        name="p99_job_latency",
        description="99th percentile submit-to-terminal job latency (s)",
        kind="quantile",
        metric="repro_job_latency_seconds",
        quantile=0.99,
        threshold=120.0,
    ),
    SloSpec(
        name="p99_queue_wait",
        description="99th percentile submit-to-first-start queue wait (s)",
        kind="quantile",
        metric="repro_job_queue_wait_seconds",
        quantile=0.99,
        threshold=30.0,
    ),
    SloSpec(
        name="job_error_rate",
        description="Share of terminal jobs that failed",
        kind="ratio",
        metric="repro_jobs_finished_total",
        event_labels=(("status", "failed"),),
        threshold=0.01,
    ),
    SloSpec(
        name="warm_hit_ratio",
        description="Share of store lookups answered from cache",
        kind="ratio",
        metric="repro_store_requests_total",
        event_labels=(("cache", "hit"),),
        direction="ge",
        threshold=0.5,
        min_events=10,
    ),
)


def _satisfied(value: float, spec: SloSpec) -> bool:
    if spec.direction == "le":
        return value <= spec.threshold
    return value >= spec.threshold


def _evaluate_one(registry: MetricsRegistry, spec: SloSpec) -> SloResult:
    if spec.kind == "quantile":
        count, _, _ = registry.histogram_stats(spec.metric)
        if count < spec.min_events:
            return SloResult(spec, NO_DATA, None, f"{count} observation(s)")
        value = registry.histogram_quantile(spec.metric, spec.quantile)
        if value is None:
            return SloResult(spec, NO_DATA, None, "no histogram data")
        status = OK if _satisfied(value, spec) else BREACH
        detail = f"p{int(spec.quantile * 100)} over {count} observation(s)"
        if math.isinf(value):
            detail += ", beyond the largest bucket"
        return SloResult(spec, status, value, detail)
    total_metric = spec.total_metric or spec.metric
    total = registry.counter_total(total_metric)
    if total < spec.min_events:
        return SloResult(spec, NO_DATA, None, f"{int(total)} event(s)")
    events = registry.counter_total(
        spec.metric, **dict(spec.event_labels)
    )
    value = events / total
    status = OK if _satisfied(value, spec) else BREACH
    detail = f"{int(events)}/{int(total)} events"
    return SloResult(spec, status, value, detail)


def evaluate(
    registry: MetricsRegistry | None = None,
    specs: tuple[SloSpec, ...] = DEFAULT_SLOS,
) -> list[SloResult]:
    """Every spec's current verdict against ``registry`` (or METRICS)."""
    registry = registry if registry is not None else METRICS
    return [_evaluate_one(registry, spec) for spec in specs]


def slo_document(
    registry: MetricsRegistry | None = None,
    specs: tuple[SloSpec, ...] = DEFAULT_SLOS,
) -> dict:
    """The ``GET /v1/slo`` body: results plus an overall verdict."""
    results = evaluate(registry, specs)
    breaches = sum(1 for result in results if result.status == BREACH)
    return {
        "status": BREACH if breaches else OK,
        "breaches": breaches,
        "slos": [result.to_dict() for result in results],
    }


def with_overrides(
    specs: tuple[SloSpec, ...], overrides: dict[str, float]
) -> tuple[SloSpec, ...]:
    """Specs with per-name threshold overrides applied.

    Unknown names raise — a typo in an alert gate must not silently
    gate nothing.
    """
    known = {spec.name for spec in specs}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown SLO name(s) {unknown}; known: {sorted(known)}"
        )
    return tuple(
        replace(spec, threshold=float(overrides[spec.name]))
        if spec.name in overrides
        else spec
        for spec in specs
    )


def parse_overrides(pairs: list[str]) -> dict[str, float]:
    """``["name=0.5", ...]`` -> ``{"name": 0.5}`` (CLI plumbing)."""
    overrides: dict[str, float] = {}
    for pair in pairs:
        name, sep, raw = pair.partition("=")
        if not sep or not name:
            raise ConfigurationError(
                f"SLO override must look like name=threshold, got {pair!r}"
            )
        try:
            overrides[name.strip()] = float(raw)
        except ValueError:
            raise ConfigurationError(
                f"SLO threshold must be a number, got {raw!r}"
            ) from None
    return overrides


def _camel(name: str) -> str:
    return "".join(part.capitalize() for part in name.split("_"))


def render_alert_rules(
    specs: tuple[SloSpec, ...] = DEFAULT_SLOS,
) -> str:
    """The specs as a Prometheus alerting-rules file (YAML text).

    Ratio SLOs get the classic two-window burn-rate pair (fast burn:
    14.4x over 5m, page; slow burn: 6x over 1h, ticket) against the
    error budget implied by the threshold.  Quantile SLOs get a single
    sustained-breach rule on ``histogram_quantile`` over the bucket
    rates.  The output is plain text — no Prometheus dependency here;
    point your own prometheus at ``/metrics`` and load this file.
    """
    lines = [
        "# Generated by `repro slo rules` — burn-rate alerts for the",
        "# repro /metrics exposition.  Load as a Prometheus rules file.",
        "groups:",
        "- name: repro-slo",
        "  rules:",
    ]
    for spec in specs:
        alert = _camel(spec.name)
        if spec.kind == "quantile":
            expr = (
                f"histogram_quantile({spec.quantile}, "
                f"sum(rate({spec.metric}_bucket[10m])) by (le)) "
                f"{'>' if spec.direction == 'le' else '<'} {spec.threshold}"
            )
            lines += [
                f"  - alert: {alert}Breach",
                f"    expr: {expr}",
                "    for: 10m",
                "    labels: {severity: ticket}",
                "    annotations:",
                f"      summary: \"{spec.description} out of objective\"",
            ]
            continue
        selector = "".join(
            f'{name}="{value}",' for name, value in spec.event_labels
        ).rstrip(",")
        total = spec.total_metric or spec.metric
        if spec.direction == "le":
            budget = max(spec.threshold, 1e-9)
            ratio = (
                f"sum(rate({spec.metric}{{{selector}}}[{{win}}])) / "
                f"sum(rate({total}[{{win}}]))"
            )
        else:
            # A floor objective burns budget with *misses* of the good
            # event; invert to an error-style ratio.
            budget = max(1.0 - spec.threshold, 1e-9)
            ratio = (
                f"(1 - sum(rate({spec.metric}{{{selector}}}[{{win}}])) / "
                f"sum(rate({total}[{{win}}])))"
            )
        for window, factor, severity in (("5m", 14.4, "page"), ("1h", 6.0, "ticket")):
            expr = f"{ratio.replace('{win}', window)} > {round(factor * budget, 6)}"
            lines += [
                f"  - alert: {alert}{'Fast' if severity == 'page' else 'Slow'}Burn",
                f"    expr: {expr}",
                f"    for: {window}",
                f"    labels: {{severity: {severity}}}",
                "    annotations:",
                f"      summary: \"{spec.description}: {factor}x budget burn "
                f"over {window}\"",
            ]
    return "\n".join(lines) + "\n"
