"""Campaign execution: single runs, grid expansion, parallel sweeps.

:func:`run` is the one entry point for executing any registered spec
with caching.  :func:`sweep` expands a declarative parameter grid into
specs.  :class:`Campaign` executes a list of specs — deduplicated by
cache key, optionally in parallel via a process pool — and returns
results in the order the specs were given, so tables built from a
campaign are byte-identical no matter how many workers ran it.

Every returned result is the decode of its cache payload (fresh runs
are round-tripped through the codec before returning), so fresh and
cached calls yield identical shapes.  Decoded objects are memoized per
process by spec key — keys are content hashes of the spec, so a key
can only ever name one result.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.campaign.spec import RunSpec, runner_for
from repro.campaign.stores import GLOBAL_MEMORY, ResultStore, default_store
from repro.errors import ConfigurationError

#: Per-process memo of decoded results, so repeated cache hits don't
#: re-decode payloads (temperature traces rebuild point by point).
_DECODE_MEMO: dict[str, Any] = {}


def _decode(kind: str, payload: dict) -> Any:
    runner = runner_for(kind)
    try:
        return runner.decode(payload)
    except (KeyError, TypeError, ValueError):
        # Stale payload from an older schema: treat as a cache miss.
        return None


def _decode_cached(kind: str, key: str, payload: dict) -> Any:
    result = _DECODE_MEMO.get(key)
    if result is None:
        result = _decode(kind, payload)
        if result is not None:
            _DECODE_MEMO[key] = result
    return result


def _payload_and_result(
    spec: RunSpec, store: ResultStore
) -> tuple[dict, Any, bool, float]:
    """Run ``spec`` unless cached.

    Returns ``(payload, result, cache_hit, compute_seconds)`` where
    ``compute_seconds`` is the wall time of the runner's ``execute``
    call alone (0.0 on a hit) — measured here, at the source, so pool
    workers report their own per-cell cost instead of the consumer
    guessing from yield-to-yield gaps.
    """
    runner = runner_for(spec.kind)
    key = spec.key()
    payload = store.get(key)
    if payload is not None:
        result = _decode_cached(spec.kind, key, payload)
        if result is not None:
            return payload, result, True, 0.0
    started = time.perf_counter()
    fresh = runner.execute(spec)
    compute_seconds = time.perf_counter() - started
    payload = runner.encode(fresh)
    store.put(key, payload)
    result = _decode(spec.kind, payload)
    if result is None:
        # A just-produced payload that won't decode is a codec bug;
        # fail at the source rather than handing back values that
        # would differ between cached and fresh (or serial and
        # parallel) calls.
        raise ConfigurationError(
            f"runner codec for kind {spec.kind!r} cannot round-trip its result"
        )
    _DECODE_MEMO[key] = result
    return payload, result, False, compute_seconds


def run(spec: RunSpec, store: ResultStore | None = None) -> Any:
    """Run (or recall) one spec through its registered runner.

    A cached payload short-circuits execution; a fresh run is encoded
    and written through the store for the next caller.
    """
    return run_cached(spec, store)[0]


def run_cached(
    spec: RunSpec, store: ResultStore | None = None
) -> tuple[Any, bool, float]:
    """Like :func:`run`, also reporting cache provenance.

    Returns ``(result, hit, compute_seconds)``: ``hit`` is True when
    the result was decoded from an existing store payload instead of
    being executed, and ``compute_seconds`` is the runner's execute
    wall time (0.0 on a hit) — the provenance the :mod:`repro.api`
    envelopes record, measured identically to :meth:`Campaign.iter_run`.
    """
    store = default_store() if store is None else store
    _, result, hit, compute_seconds = _payload_and_result(spec, store)
    return result, hit, compute_seconds


def sweep(
    spec_type: type,
    grid: Mapping[str, Sequence[Any]],
    **fixed: Any,
) -> list[Any]:
    """Expand a parameter grid into specs, row-major over ``grid`` order.

    ``sweep(Chapter4Spec, {"mix": ("W1", "W2"), "policy": ("ts", "acg")},
    cooling="AOHS_1.5")`` yields W1/ts, W1/acg, W2/ts, W2/acg — the
    first grid axis varies slowest, matching how the paper's tables
    iterate mixes in rows and policies in columns.
    """
    if not grid:
        raise ConfigurationError("sweep grid must name at least one axis")
    names = list(grid)
    for name in names:
        if name in fixed:
            raise ConfigurationError(f"axis {name!r} also given as a fixed field")
    return [
        spec_type(**fixed, **dict(zip(names, combo)))
        for combo in itertools.product(*(tuple(grid[name]) for name in names))
    ]


def _worker_execute(
    spec: RunSpec, store: ResultStore | None
) -> tuple[str, dict, bool, float]:
    """Pool-worker entry: run one spec, return (key, payload, hit, seconds).

    With no explicit store the worker uses its own default stack, so
    results cached by earlier campaigns (or sibling workers) hit the
    shared disk layer; an explicit store arrives as a pickled copy, so
    its disk layers are shared but memory layers are private.
    """
    store = default_store() if store is None else store
    payload, _, hit, compute_seconds = _payload_and_result(spec, store)
    return spec.key(), payload, hit, compute_seconds


class Campaign:
    """A batch of run specs executed with dedup, caching, and parallelism.

    Results come back in spec order regardless of completion order, and
    every result is decoded from its cache payload — the serial and
    parallel paths therefore produce identical values.
    """

    def __init__(
        self,
        specs: Iterable[RunSpec],
        *,
        jobs: int = 1,
        store: ResultStore | None = None,
    ) -> None:
        self.specs = list(specs)
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        self.jobs = jobs
        #: None means "the default stack" — kept distinct from the
        #: resolved store so pool workers can rebuild their own default
        #: instead of receiving a pickled copy of the shared memo.
        self._explicit_store = store
        self.store = default_store() if store is None else store
        for spec in self.specs:
            runner_for(spec.kind)  # fail fast on unregistered kinds

    def __len__(self) -> int:
        return len(self.specs)

    def run(self) -> list[Any]:
        """Execute every spec and return results in spec order."""
        return [result for _, result, _, _ in self.iter_run()]

    def iter_run(self) -> Iterator[tuple[RunSpec, Any, bool, float]]:
        """Stream ``(spec, result, cache_hit, compute_seconds)`` in spec order.

        Cells are yielded as soon as they (and every earlier spec)
        complete, so a consumer can render or transmit per-cell results
        while later cells are still running — this backs the streaming
        ``ReproClient.run_campaign`` iterator.  Order stays the spec
        order, so collecting the iterator reproduces :meth:`run`
        byte-for-byte no matter how many workers ran it.

        ``compute_seconds`` is the cell's own execute wall time as
        measured where it ran (0.0 on a cache hit), so parallel cells
        report true per-cell cost.  A duplicate spec is a hit on its
        repeat occurrences: the first one carries the compute.
        Abandoning the iterator early cancels not-yet-started cells.
        """
        unique: dict[str, RunSpec] = {}
        for spec in self.specs:
            unique.setdefault(spec.key(), spec)
        seen: dict[str, dict] = {}
        if self.jobs == 1 or len(unique) <= 1:
            for spec in self.specs:
                key = spec.key()
                if key in seen:
                    yield spec, self._decoded(spec, seen[key]), True, 0.0
                    continue
                payload, _, hit, seconds = _payload_and_result(
                    unique[key], self.store
                )
                seen[key] = payload
                yield spec, self._decoded(spec, payload), hit, seconds
            return
        # Workers under the default stack already persisted to the
        # shared disk layer; only the in-process memo needs the
        # payload.  An explicit store gets a full write-through.
        backfill = GLOBAL_MEMORY if self._explicit_store is None else self.store
        workers = min(self.jobs, len(unique))
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = {
                key: pool.submit(_worker_execute, spec, self._explicit_store)
                for key, spec in unique.items()
            }
            for spec in self.specs:
                key = spec.key()
                if key in seen:
                    yield spec, self._decoded(spec, seen[key]), True, 0.0
                    continue
                _, payload, hit, seconds = futures[key].result()
                seen[key] = payload
                backfill.put(key, payload)
                yield spec, self._decoded(spec, payload), hit, seconds
        finally:
            # An abandoned iterator (consumer breaks mid-stream) must
            # not block on the rest of the grid: drop queued cells and
            # return without waiting for in-flight ones.
            pool.shutdown(wait=False, cancel_futures=True)

    def _decoded(self, spec: RunSpec, payload: dict) -> Any:
        result = _decode_cached(spec.kind, spec.key(), payload)
        if result is None:
            raise ConfigurationError(
                f"runner codec for kind {spec.kind!r} cannot round-trip "
                f"its result"
            )
        return result
