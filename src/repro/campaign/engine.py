"""Campaign execution: single runs, grid expansion, parallel sweeps.

:func:`run` is the one entry point for executing any registered spec
with caching.  :func:`sweep` expands a declarative parameter grid into
specs.  :class:`Campaign` executes a list of specs — deduplicated by
cache key, optionally in parallel via a process pool — and returns
results in the order the specs were given, so tables built from a
campaign are byte-identical no matter how many workers ran it.

Every returned result is the decode of its cache payload (fresh runs
are round-tripped through the codec before returning), so fresh and
cached calls yield identical shapes.  Decoded objects are memoized per
process by spec key — keys are content hashes of the spec, so a key
can only ever name one result.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Iterable, Mapping, Sequence

from repro.campaign.spec import RunSpec, runner_for
from repro.campaign.stores import GLOBAL_MEMORY, ResultStore, default_store
from repro.errors import ConfigurationError

#: Per-process memo of decoded results, so repeated cache hits don't
#: re-decode payloads (temperature traces rebuild point by point).
_DECODE_MEMO: dict[str, Any] = {}


def _decode(kind: str, payload: dict) -> Any:
    runner = runner_for(kind)
    try:
        return runner.decode(payload)
    except (KeyError, TypeError, ValueError):
        # Stale payload from an older schema: treat as a cache miss.
        return None


def _decode_cached(kind: str, key: str, payload: dict) -> Any:
    result = _DECODE_MEMO.get(key)
    if result is None:
        result = _decode(kind, payload)
        if result is not None:
            _DECODE_MEMO[key] = result
    return result


def _payload_and_result(spec: RunSpec, store: ResultStore) -> tuple[dict, Any]:
    """Run ``spec`` unless cached; return its (payload, decoded result)."""
    runner = runner_for(spec.kind)
    key = spec.key()
    payload = store.get(key)
    if payload is not None:
        result = _decode_cached(spec.kind, key, payload)
        if result is not None:
            return payload, result
    fresh = runner.execute(spec)
    payload = runner.encode(fresh)
    store.put(key, payload)
    result = _decode(spec.kind, payload)
    if result is None:
        # A just-produced payload that won't decode is a codec bug;
        # fail at the source rather than handing back values that
        # would differ between cached and fresh (or serial and
        # parallel) calls.
        raise ConfigurationError(
            f"runner codec for kind {spec.kind!r} cannot round-trip its result"
        )
    _DECODE_MEMO[key] = result
    return payload, result


def run(spec: RunSpec, store: ResultStore | None = None) -> Any:
    """Run (or recall) one spec through its registered runner.

    A cached payload short-circuits execution; a fresh run is encoded
    and written through the store for the next caller.
    """
    store = default_store() if store is None else store
    return _payload_and_result(spec, store)[1]


def sweep(
    spec_type: type,
    grid: Mapping[str, Sequence[Any]],
    **fixed: Any,
) -> list[Any]:
    """Expand a parameter grid into specs, row-major over ``grid`` order.

    ``sweep(Chapter4Spec, {"mix": ("W1", "W2"), "policy": ("ts", "acg")},
    cooling="AOHS_1.5")`` yields W1/ts, W1/acg, W2/ts, W2/acg — the
    first grid axis varies slowest, matching how the paper's tables
    iterate mixes in rows and policies in columns.
    """
    if not grid:
        raise ConfigurationError("sweep grid must name at least one axis")
    names = list(grid)
    for name in names:
        if name in fixed:
            raise ConfigurationError(f"axis {name!r} also given as a fixed field")
    return [
        spec_type(**fixed, **dict(zip(names, combo)))
        for combo in itertools.product(*(tuple(grid[name]) for name in names))
    ]


def _worker_execute(
    spec: RunSpec, store: ResultStore | None
) -> tuple[str, dict]:
    """Pool-worker entry: run one spec and return its payload.

    With no explicit store the worker uses its own default stack, so
    results cached by earlier campaigns (or sibling workers) hit the
    shared disk layer; an explicit store arrives as a pickled copy, so
    its disk layers are shared but memory layers are private.
    """
    store = default_store() if store is None else store
    return spec.key(), _payload_and_result(spec, store)[0]


class Campaign:
    """A batch of run specs executed with dedup, caching, and parallelism.

    Results come back in spec order regardless of completion order, and
    every result is decoded from its cache payload — the serial and
    parallel paths therefore produce identical values.
    """

    def __init__(
        self,
        specs: Iterable[RunSpec],
        *,
        jobs: int = 1,
        store: ResultStore | None = None,
    ) -> None:
        self.specs = list(specs)
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        self.jobs = jobs
        #: None means "the default stack" — kept distinct from the
        #: resolved store so pool workers can rebuild their own default
        #: instead of receiving a pickled copy of the shared memo.
        self._explicit_store = store
        self.store = default_store() if store is None else store
        for spec in self.specs:
            runner_for(spec.kind)  # fail fast on unregistered kinds

    def __len__(self) -> int:
        return len(self.specs)

    def run(self) -> list[Any]:
        """Execute every spec and return results in spec order."""
        unique: dict[str, RunSpec] = {}
        for spec in self.specs:
            unique.setdefault(spec.key(), spec)
        payloads: dict[str, dict] = {}
        if self.jobs == 1 or len(unique) <= 1:
            for key, spec in unique.items():
                payloads[key] = _payload_and_result(spec, self.store)[0]
        else:
            # Workers under the default stack already persisted to the
            # shared disk layer; only the in-process memo needs the
            # payload.  An explicit store gets a full write-through.
            backfill = (
                GLOBAL_MEMORY if self._explicit_store is None else self.store
            )
            workers = min(self.jobs, len(unique))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_worker_execute, spec, self._explicit_store)
                    for spec in unique.values()
                ]
                for future in as_completed(futures):
                    key, payload = future.result()
                    payloads[key] = payload
                    backfill.put(key, payload)
        results = []
        for spec in self.specs:
            result = _decode_cached(spec.kind, spec.key(), payloads[spec.key()])
            if result is None:
                raise ConfigurationError(
                    f"runner codec for kind {spec.kind!r} cannot round-trip "
                    f"its result"
                )
            results.append(result)
        return results
