"""Campaign execution: single runs, grid expansion, pluggable backends.

:func:`run` is the one entry point for executing any registered spec
with caching.  :func:`sweep` expands a declarative parameter grid into
specs.  :class:`Campaign` executes a list of specs — deduplicated by
cache key, dispatched through an :class:`~repro.cluster.ExecutionBackend`
(in-process serial, local process pool, or an HTTP worker fleet) — and
returns results in the order the specs were given, so tables built from
a campaign are byte-identical no matter where the cells ran.

Every returned result is the decode of its cache payload (fresh runs
are round-tripped through the codec before returning), so fresh and
cached calls yield identical shapes.  Decoded objects are memoized per
process by spec key — keys are content hashes of the spec, so a key
can only ever name one result.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.campaign.spec import RunSpec, runner_for, spec_meta
from repro.campaign.stores import GLOBAL_MEMORY, ResultStore, default_store
from repro.engine.progress import PROGRESS
from repro.errors import ConfigurationError
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER

#: Per-process memo of decoded results, so repeated cache hits don't
#: re-decode payloads (temperature traces rebuild point by point).
_DECODE_MEMO: dict[str, Any] = {}


def _decode(kind: str, payload: dict) -> Any:
    runner = runner_for(kind)
    try:
        return runner.decode(payload)
    except (KeyError, TypeError, ValueError):
        # Stale payload from an older schema: treat as a cache miss.
        return None


def _decode_cached(kind: str, key: str, payload: dict) -> Any:
    result = _DECODE_MEMO.get(key)
    if result is None:
        result = _decode(kind, payload)
        if result is not None:
            _DECODE_MEMO[key] = result
    return result


@dataclass(frozen=True)
class RunOutcome:
    """Everything one cached run reports.

    ``store_info`` is the store's provenance for the access — the
    shard that holds a freshly computed payload, or
    ``{"single_flight": "coalesced"}`` when this call was served by
    another thread's in-flight compute.  Plain warm hits report ``{}``
    so warm envelopes stay byte-identical across store layouts.
    """

    payload: dict
    result: Any
    hit: bool
    compute_seconds: float
    store_info: dict = field(default_factory=dict)


def _outcome(spec: RunSpec, store: ResultStore) -> RunOutcome:
    """Run ``spec`` unless cached.

    ``compute_seconds`` is the wall time of the runner's ``execute``
    call alone (0.0 on a hit) — measured here, at the source, so pool
    workers report their own per-cell cost instead of the consumer
    guessing from yield-to-yield gaps.  The lookup-then-compute goes
    through the store's ``get_or_compute`` transaction, so a
    single-flight store coalesces concurrent identical cells.
    """
    runner = runner_for(spec.kind)
    key = spec.key()

    def validate(payload: dict) -> bool:
        # A payload written under an older result schema won't decode;
        # treat it as a miss and recompute.
        return _decode_cached(spec.kind, key, payload) is not None

    def compute() -> tuple[dict, dict]:
        started = time.perf_counter()
        # Label the execution with its cache key so engine-hosted runs
        # surface live snapshots under /v1/progress (no-op for
        # consumers that never read the broker).
        with TRACER.span("cell", key=key, kind=spec.kind):
            with PROGRESS.track(key):
                fresh = runner.execute(spec)
        seconds = time.perf_counter() - started
        METRICS.observe(
            "repro_cell_compute_seconds",
            "Cold-cell compute wall time by kind",
            seconds,
            kind=spec.kind,
        )
        return runner.encode(fresh), {"compute_seconds": seconds}

    payload, hit, info = store.get_or_compute(
        key, compute, meta=spec_meta(spec), validate=validate
    )
    info = dict(info)
    if hit:
        result = _decode_cached(spec.kind, key, payload)
        if result is None:
            # Only reachable for a coalesced payload (validated hits
            # passed ``validate`` above): the leader just produced a
            # payload that won't decode, which is a codec bug.
            raise ConfigurationError(
                f"runner codec for kind {spec.kind!r} cannot round-trip "
                f"its result"
            )
        return RunOutcome(payload, result, True, 0.0, info)
    result = _decode(spec.kind, payload)
    if result is None:
        # A just-produced payload that won't decode is a codec bug;
        # fail at the source rather than handing back values that
        # would differ between cached and fresh (or serial and
        # parallel) calls.
        raise ConfigurationError(
            f"runner codec for kind {spec.kind!r} cannot round-trip its result"
        )
    _DECODE_MEMO[key] = result
    compute_seconds = float(info.pop("compute_seconds", 0.0))
    return RunOutcome(payload, result, False, compute_seconds, info)


def _payload_and_result(
    spec: RunSpec, store: ResultStore
) -> tuple[dict, Any, bool, float]:
    """Back-compat 4-tuple view of :func:`_outcome`."""
    outcome = _outcome(spec, store)
    return (
        outcome.payload, outcome.result, outcome.hit, outcome.compute_seconds
    )


def cached_payload(spec: RunSpec, store: ResultStore | None = None) -> dict | None:
    """The spec's stored payload, or None when absent or stale-schema.

    The decodability check mirrors :func:`_payload_and_result`: a
    payload written under an older result schema reads as a miss, so
    callers (the time-sliced worker path) recompute instead of
    forwarding undecodable bytes to a coordinator.
    """
    store = default_store() if store is None else store
    key = spec.key()
    payload = store.get(key)
    if payload is None:
        return None
    if _decode_cached(spec.kind, key, payload) is None:
        return None
    return payload


def run(spec: RunSpec, store: ResultStore | None = None) -> Any:
    """Run (or recall) one spec through its registered runner.

    A cached payload short-circuits execution; a fresh run is encoded
    and written through the store for the next caller.
    """
    return run_cached(spec, store)[0]


def run_outcome(
    spec: RunSpec, store: ResultStore | None = None
) -> RunOutcome:
    """Run (or recall) one spec, reporting full provenance.

    The richest single-cell entry point: payload, decoded result,
    hit/miss, execute wall time, and the store's placement /
    single-flight info (see :class:`RunOutcome`).  ``run``,
    ``run_cached``, and ``run_payload`` are narrower views of this.
    """
    store = default_store() if store is None else store
    return _outcome(spec, store)


def run_cached(
    spec: RunSpec, store: ResultStore | None = None
) -> tuple[Any, bool, float]:
    """Like :func:`run`, also reporting cache provenance.

    Returns ``(result, hit, compute_seconds)``: ``hit`` is True when
    the result was decoded from an existing store payload instead of
    being executed, and ``compute_seconds`` is the runner's execute
    wall time (0.0 on a hit) — the provenance the :mod:`repro.api`
    envelopes record, measured identically to :meth:`Campaign.iter_run`.
    """
    outcome = run_outcome(spec, store)
    return outcome.result, outcome.hit, outcome.compute_seconds


def run_payload(
    spec: RunSpec, store: ResultStore | None = None
) -> tuple[dict, bool, float]:
    """Run (or recall) one spec, returning its *encoded* payload.

    Returns ``(payload, hit, compute_seconds)``.  This is the form
    execution backends and cluster workers traffic in: payloads are
    JSON-serializable, so they cross process and HTTP boundaries and
    can be written into any :class:`ResultStore` unchanged.
    """
    outcome = run_outcome(spec, store)
    return outcome.payload, outcome.hit, outcome.compute_seconds


def sweep(
    spec_type: type,
    grid: Mapping[str, Sequence[Any]],
    **fixed: Any,
) -> list[Any]:
    """Expand a parameter grid into specs, row-major over ``grid`` order.

    ``sweep(Chapter4Spec, {"mix": ("W1", "W2"), "policy": ("ts", "acg")},
    cooling="AOHS_1.5")`` yields W1/ts, W1/acg, W2/ts, W2/acg — the
    first grid axis varies slowest, matching how the paper's tables
    iterate mixes in rows and policies in columns.
    """
    if not grid:
        raise ConfigurationError("sweep grid must name at least one axis")
    names = list(grid)
    for name in names:
        if name in fixed:
            raise ConfigurationError(f"axis {name!r} also given as a fixed field")
    return [
        spec_type(**fixed, **dict(zip(names, combo)))
        for combo in itertools.product(*(tuple(grid[name]) for name in names))
    ]


class Campaign:
    """A batch of run specs executed with dedup, caching, and parallelism.

    Results come back in spec order regardless of completion order, and
    every result is decoded from its cache payload — the serial,
    process-pool, and HTTP-fleet paths therefore produce identical
    values.

    Execution is delegated to an
    :class:`~repro.cluster.ExecutionBackend`.  With no explicit
    ``backend`` the campaign builds (and deterministically shuts down)
    its own: serial for ``jobs == 1``, a local process pool otherwise.
    An explicit backend is *borrowed* — it can be reused across many
    campaigns (one process pool, one worker fleet) and is closed by its
    owner, normally a ``with`` block around the whole batch.
    """

    def __init__(
        self,
        specs: Iterable[RunSpec],
        *,
        jobs: int = 1,
        store: ResultStore | None = None,
        backend: "Any | None" = None,
    ) -> None:
        self.specs = list(specs)
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        self.jobs = jobs
        #: None means "the default stack" — kept distinct from the
        #: resolved store so pool workers can rebuild their own default
        #: instead of receiving a pickled copy of the shared memo.
        self._explicit_store = store
        self.store = default_store() if store is None else store
        #: Borrowed execution backend (None = build per run).
        self.backend = backend
        for spec in self.specs:
            runner_for(spec.kind)  # fail fast on unregistered kinds

    def __len__(self) -> int:
        return len(self.specs)

    def run(self) -> list[Any]:
        """Execute every spec and return results in spec order."""
        return [result for _, result, _, _ in self.iter_run()]

    def _default_backend(self, cells: int) -> Any:
        """The owned backend for one run: serial, or a process pool."""
        from repro.cluster.backends import LocalProcessBackend, SerialBackend

        if self.jobs == 1 or cells <= 1:
            return SerialBackend()
        return LocalProcessBackend(jobs=min(self.jobs, cells))

    def _backfill_store(self, backend: Any) -> ResultStore | None:
        """Where the coordinator re-publishes payloads it received.

        - in-process backends wrote through the campaign store already;
        - pool workers on this host share the default disk layer, so
          only the process-wide memory memo needs the payload;
        - remote (HTTP) workers share nothing — their payloads are
          written through the campaign's full store, which is what
          makes a distributed run warm the same cache a local run
          reads;
        - an explicit store always gets a full write-through.
        """
        if backend.in_process:
            return None
        if self._explicit_store is not None:
            return self.store
        return GLOBAL_MEMORY if backend.shares_disk else self.store

    def iter_run(self) -> Iterator[tuple[RunSpec, Any, bool, float]]:
        """Stream ``(spec, result, cache_hit, compute_seconds)`` in spec order.

        Cells are yielded as soon as they (and every earlier spec)
        complete, so a consumer can render or transmit per-cell results
        while later cells are still running — this backs the streaming
        ``ReproClient.run_campaign`` iterator.  Order stays the spec
        order, so collecting the iterator reproduces :meth:`run`
        byte-for-byte no matter how many workers ran it.

        ``compute_seconds`` is the cell's own execute wall time as
        measured where it ran (0.0 on a cache hit), so parallel cells
        report true per-cell cost.  A duplicate spec is a hit on its
        repeat occurrences: the first one carries the compute.
        Abandoning the iterator early cancels not-yet-started cells and
        shuts down the campaign-owned backend; a borrowed backend stays
        open for its owner to reuse or close.
        """
        for spec, outcome in self.iter_outcomes():
            yield spec, outcome.result, outcome.hit, outcome.compute_seconds

    def iter_outcomes(self) -> Iterator[tuple[RunSpec, "RunOutcome"]]:
        """Stream ``(spec, RunOutcome)`` in spec order.

        Like :meth:`iter_run` but carrying the full provenance,
        including the store's placement / single-flight info for each
        cell (``{}`` for warm hits and duplicate-spec repeats).
        """
        unique: dict[str, RunSpec] = {}
        for spec in self.specs:
            unique.setdefault(spec.key(), spec)
        #: key -> spec for backfill metadata, surviving warm-serve
        #: deletions from ``unique``.
        spec_of = dict(unique)
        seen: dict[str, tuple[dict, bool, float, dict]] = {}
        backend = self.backend
        owned = backend is None
        if owned:
            backend = self._default_backend(len(unique))
        if not backend.in_process:
            # Serve cells the campaign's own store already holds before
            # dispatching anything: a warm local cache must not make a
            # remote fleet (or a fresh pool) recompute the grid.
            for key, spec in list(unique.items()):
                payload = self.store.get(key)
                if payload is None:
                    continue
                if _decode_cached(spec.kind, key, payload) is None:
                    continue  # stale-schema payload: recompute
                seen[key] = (payload, True, 0.0, {})
                del unique[key]
        backfill = self._backfill_store(backend)
        try:
            backend.submit_cells(
                list(unique.items()), store=self._explicit_store
            )
            results = backend.iter_results()
            emitted: dict[str, dict] = {}
            for spec in self.specs:
                key = spec.key()
                if key in emitted:
                    yield spec, RunOutcome(
                        emitted[key], self._decoded(spec, emitted[key]),
                        True, 0.0, {},
                    )
                    continue
                while key not in seen:
                    try:
                        item = next(results)
                    except StopIteration:
                        raise ConfigurationError(
                            f"execution backend "
                            f"{type(backend).__name__} finished without "
                            f"delivering cell {key}"
                        ) from None
                    # Backends yield 5-tuples; tolerate legacy 4-tuples
                    # from out-of-tree implementations.
                    done_key, payload, hit, seconds = item[:4]
                    info = item[4] if len(item) > 4 else {}
                    seen[done_key] = (payload, hit, seconds, info)
                    if backfill is not None:
                        done_spec = spec_of.get(done_key)
                        backfill.put(
                            done_key, payload,
                            meta=(
                                spec_meta(done_spec)
                                if done_spec is not None else None
                            ),
                        )
                payload, hit, seconds, info = seen.pop(key)
                emitted[key] = payload
                yield spec, RunOutcome(
                    payload, self._decoded(spec, payload), hit, seconds,
                    dict(info),
                )
        finally:
            if owned:
                backend.close()

    def _decoded(self, spec: RunSpec, payload: dict) -> Any:
        result = _decode_cached(spec.kind, spec.key(), payload)
        if result is None:
            raise ConfigurationError(
                f"runner codec for kind {spec.kind!r} cannot round-trip "
                f"its result"
            )
        return result
