"""Consistent-hash sharding across N on-disk shard roots.

A :class:`ShardedStore` spreads cache keys over several
:class:`~repro.campaign.stores.disk.JsonDirStore` roots using a
consistent-hash ring: each shard contributes ``replicas`` points to
the ring, positioned by hashing the shard *directory name* (not its
index), so adding a shard moves only the keys that now fall in the new
shard's arcs — about ``1/N`` of them — while every other key keeps its
placement.  Removing a shard likewise reassigns only that shard's
keys.

The store is rebalance-aware in two complementary ways:

- ``get`` read-repairs: a key that misses on its ring shard is looked
  up on every other shard and, when found (because the ring changed
  since it was written), moved verbatim to its current home.
- ``rebalance()`` does the same proactively for the whole store, so a
  resize can be absorbed in one pass instead of paying a scan per
  first miss.

The standard layout puts shard roots under ``<cache_dir>/shards/<NN>``
(see :meth:`ShardedStore.at` and ``REPRO_CACHE_SHARDS``); the legacy
flat store never descends into ``shards/``, so both can share one
cache directory.
"""

from __future__ import annotations

import bisect
import hashlib
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.campaign.stores.base import ResultStore
from repro.campaign.stores.disk import JsonDirStore, payload_of
from repro.errors import ConfigurationError

#: Ring points contributed by each shard.  More replicas smooth the
#: key distribution; 64 keeps the worst shard within ~20% of fair
#: share while the ring stays tiny (N*64 entries).
DEFAULT_REPLICAS = 64


def _ring_hash(text: str) -> int:
    """Stable 64-bit ring position of ``text``."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class ShardedStore(ResultStore):
    """Consistent-hash ring over N ``JsonDirStore`` shard roots."""

    def __init__(
        self,
        shards: Sequence[JsonDirStore],
        *,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if not shards:
            raise ConfigurationError("a sharded store needs >= 1 shard")
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        names = [shard.root.name for shard in shards]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"shard directory names must be unique, got {names}"
            )
        self.shards = list(shards)
        self.replicas = replicas
        # Ring positions depend only on each shard's directory name, so
        # the same shard set always builds the same ring, and a new
        # shard leaves every existing point where it was.
        points = sorted(
            (_ring_hash(f"{shard.root.name}#{replica}"), index)
            for index, shard in enumerate(self.shards)
            for replica in range(replicas)
        )
        self._ring_keys = [point for point, _ in points]
        self._ring_shards = [index for _, index in points]

    @classmethod
    def at(
        cls,
        root: Path | str,
        count: int,
        *,
        replicas: int = DEFAULT_REPLICAS,
    ) -> "ShardedStore":
        """The standard layout: ``<root>/shards/00 .. <NN>``."""
        if count < 1:
            raise ConfigurationError("shard count must be >= 1")
        base = Path(root) / "shards"
        return cls(
            [JsonDirStore(base / f"{index:02d}") for index in range(count)],
            replicas=replicas,
        )

    def shard_for(self, key: str) -> JsonDirStore:
        """The shard the ring currently assigns ``key`` to."""
        point = _ring_hash(key)
        slot = bisect.bisect_right(self._ring_keys, point)
        if slot == len(self._ring_keys):
            slot = 0  # wrap past the highest ring point
        return self.shards[self._ring_shards[slot]]

    # -- protocol ----------------------------------------------------------

    def get(self, key: str) -> dict | None:
        primary = self.shard_for(key)
        payload = primary.get(key)
        if payload is not None:
            return payload
        # Read repair: the ring may have changed since this key was
        # written (shard added/removed).  Find the stray copy and move
        # it home verbatim, so the next lookup is a one-shard hit.
        for shard in self.shards:
            if shard is primary:
                continue
            document = shard.read_record(key)
            payload = payload_of(document)
            if payload is None:
                continue
            primary.write_document(key, document)
            shard.remove(key)
            return payload
        return None

    def put(
        self, key: str, payload: dict, meta: Mapping | None = None
    ) -> None:
        self.shard_for(key).put(key, payload, meta=meta)

    def describe(self, key: str) -> dict:
        return {"shard": self.shard_for(key).root.name}

    # -- record access (migration support) ---------------------------------

    def read_record(self, key: str) -> dict | None:
        """The raw entry document, wherever on the ring it lives."""
        for shard in [self.shard_for(key)] + self.shards:
            document = shard.read_record(key)
            if document is not None:
                return document
        return None

    def write_document(self, key: str, document: dict) -> None:
        """Publish a raw document on the key's ring shard."""
        self.shard_for(key).write_document(key, document)

    def remove(self, key: str) -> bool:
        """Delete ``key`` from every shard holding it; True if found."""
        removed = False
        for shard in self.shards:
            removed = shard.remove(key) or removed
        return removed

    def iter_records(self) -> Iterator[tuple[str, dict]]:
        """Every readable ``(key, document)`` across all shards, once."""
        seen: set[str] = set()
        for shard in self.shards:
            for key, document in shard.iter_records():
                if key not in seen:
                    seen.add(key)
                    yield key, document

    # -- maintenance -------------------------------------------------------

    def rebalance(self, *, dry_run: bool = False) -> dict:
        """Move every misplaced entry to its current ring shard.

        Returns ``{"scanned": n, "moved": m}``.  Documents move
        verbatim (version stamps preserved).  With ``dry_run`` nothing
        is written; ``moved`` reports what a real pass would do.
        """
        scanned = 0
        moved = 0
        for shard in self.shards:
            for key, document in shard.iter_records():
                scanned += 1
                home = self.shard_for(key)
                if home is shard:
                    continue
                moved += 1
                if not dry_run:
                    home.write_document(key, document)
                    shard.remove(key)
        return {"scanned": scanned, "moved": moved}

    def stats(self) -> dict:
        """Aggregate census plus the per-shard breakdown."""
        per_shard = [shard.stats() for shard in self.shards]
        versions: dict[str, int] = {}
        for stat in per_shard:
            for label, count in stat["versions"].items():
                versions[label] = versions.get(label, 0) + count
        return {
            "root": str(self.shards[0].root.parent),
            "entries": sum(stat["entries"] for stat in per_shard),
            "bytes": sum(stat["bytes"] for stat in per_shard),
            "shards": len(self.shards),
            "versions": dict(sorted(versions.items())),
            "tmp_files": sum(stat["tmp_files"] for stat in per_shard),
            "per_shard": per_shard,
        }

    def prune(
        self,
        max_entries: int | None = None,
        *,
        tmp_grace_s: float | None = None,
    ) -> int:
        """Sweep stale tmp files everywhere; evict oldest globally.

        ``max_entries`` bounds the *total* entry count across shards —
        eviction picks the globally oldest entries, not per-shard
        quotas, so a hot shard is not forced to evict fresh entries
        while a cold one keeps ancient ones.
        """
        tmp_kwargs = {} if tmp_grace_s is None else {
            "tmp_grace_s": tmp_grace_s
        }
        removed = sum(
            shard.prune(None, **tmp_kwargs) for shard in self.shards
        )
        if max_entries is None:
            return removed
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        dated = []
        for shard in self.shards:
            dated.extend(shard.dated_entries())
        excess = len(dated) - max_entries
        if excess <= 0:
            return removed
        dated.sort(key=lambda item: item[0])
        for _, _, path in dated[:excess]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed
