"""Schema migrations across ``CACHE_VERSION`` bumps.

A ``CACHE_VERSION`` bump changes every spec's cache key (the version
string is part of the hash), which without help silently orphans every
cached entry — the old behavior was "recompute the world".  Disk
stores now persist each entry's cache metadata (version, kind, and the
exact key fields that were hashed — see
:mod:`repro.campaign.stores.disk`), which is enough to *re-key* an
entry instead: apply the registered rewriters to the old key fields,
recompute the key under the new version, and move the payload there.

Rewriters form a chain: ``register_rewriter("ch4", "v1", "v2", fn)``
teaches the migrator one hop; a v1 entry migrating to v3 runs the
v1→v2 then v2→v3 rewriters.  Each rewriter maps
``(key_fields, payload) -> (key_fields, payload)`` — typically just
adding newly introduced spec fields at their defaults (which is
exactly what makes the old and new keys name the same physical run).
Spec-defining modules register their own rewriters next to their spec
classes (:mod:`repro.analysis.specs`).

Entries that cannot migrate are left untouched and reported:
*unrecorded* (bare pre-record files with no spec metadata) and
*unmigratable* (no rewriter chain reaches the target).  ``dry_run``
reports without writing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol

from repro.campaign.spec import CACHE_VERSION, key_for_fields
from repro.campaign.stores.disk import (
    RECORD_FORMAT,
    RECORD_VERSION,
    version_of,
)
from repro.errors import ConfigurationError

#: One migration hop: (key_fields, payload) -> (key_fields, payload).
Rewriter = Callable[[dict, dict], tuple[dict, dict]]

#: ``(kind, from_version) -> (to_version, rewriter)``.
_REWRITERS: dict[tuple[str, str], tuple[str, Rewriter]] = {}


class MigratableStore(Protocol):
    """What :func:`migrate` needs: raw-record access on a store."""

    def iter_records(self) -> Iterator[tuple[str, dict]]: ...
    def write_document(self, key: str, document: dict) -> None: ...
    def remove(self, key: str) -> bool: ...


def register_rewriter(
    kind: str, from_version: str, to_version: str, fn: Rewriter
) -> Rewriter:
    """Register the ``from_version -> to_version`` hop for ``kind``.

    Re-registration of the same hop is allowed (module reloads stay
    idempotent); a version cannot fan out to two targets.
    """
    if from_version == to_version:
        raise ConfigurationError(
            f"rewriter for kind {kind!r} maps {from_version!r} to itself"
        )
    _REWRITERS[(kind, from_version)] = (to_version, fn)
    return fn


def rewriter_chain(
    kind: str, from_version: str, target: str
) -> list[Rewriter] | None:
    """The rewriter hops taking ``kind`` from ``from_version`` to
    ``target``, or None when no registered path exists."""
    chain: list[Rewriter] = []
    version = from_version
    visited = {version}
    while version != target:
        hop = _REWRITERS.get((kind, version))
        if hop is None:
            return None
        version, fn = hop
        if version in visited:
            return None  # cycle: defensive, never built by register
        visited.add(version)
        chain.append(fn)
    return chain


@dataclass
class MigrationReport:
    """What one :func:`migrate` pass saw and did."""

    target: str
    dry_run: bool
    #: Entries examined.
    scanned: int = 0
    #: Entries re-keyed (or, dry-run, that would be).
    migrated: int = 0
    #: Entries already at the target version.
    current: int = 0
    #: Bare legacy entries with no spec metadata to migrate from.
    unrecorded: int = 0
    #: Versioned entries with no rewriter chain (or no key fields).
    unmigratable: int = 0
    #: Entries whose rewriter raised; left untouched.
    failed: int = 0
    #: Pre-migration per-version census of everything scanned.
    by_version: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "dry_run": self.dry_run,
            "scanned": self.scanned,
            "migrated": self.migrated,
            "current": self.current,
            "unrecorded": self.unrecorded,
            "unmigratable": self.unmigratable,
            "failed": self.failed,
            "by_version": dict(sorted(self.by_version.items())),
        }


def migrate(
    store: MigratableStore,
    *,
    dry_run: bool = False,
    target: str = CACHE_VERSION,
) -> MigrationReport:
    """Upgrade every old-version entry of ``store`` in place.

    Each migratable entry is rewritten through its kind's rewriter
    chain, re-keyed under ``target``, published at the new key, and
    removed from the old one — the payload itself moves verbatim
    unless a rewriter changes it, so a warm lookup after migration
    returns byte-identical payloads.  Safe to re-run: already-current
    entries are skipped.
    """
    report = MigrationReport(target=target, dry_run=dry_run)
    for key, document in list(store.iter_records()):
        report.scanned += 1
        label = version_of(document)
        report.by_version[label] = report.by_version.get(label, 0) + 1
        if document.get("format") != RECORD_FORMAT:
            report.unrecorded += 1
            continue
        version = str(document.get("cache_version") or "unknown")
        if version == target:
            report.current += 1
            continue
        kind = document.get("kind")
        fields = document.get("spec")
        payload = document.get("payload")
        if (
            not isinstance(kind, str)
            or not isinstance(fields, dict)
            or not isinstance(payload, dict)
        ):
            report.unmigratable += 1
            continue
        chain = rewriter_chain(kind, version, target)
        if chain is None:
            report.unmigratable += 1
            continue
        try:
            for fn in chain:
                fields, payload = fn(dict(fields), payload)
            new_key = key_for_fields(kind, fields, cache_version=target)
        except Exception:
            report.failed += 1
            continue
        report.migrated += 1
        if dry_run:
            continue
        store.write_document(new_key, {
            "format": RECORD_FORMAT,
            "record": RECORD_VERSION,
            "cache_version": target,
            "kind": kind,
            "spec": fields,
            "payload": payload,
        })
        if new_key != key:
            store.remove(key)
    return report
