"""Pluggable result stores for the campaign engine.

A :class:`ResultStore` maps spec keys to JSON-serializable payload
dicts.  Stores never see result objects — en/decoding belongs to the
runner (:mod:`repro.campaign.spec`) — so any store can hold any kind.

Implementations:

- :class:`MemoryStore` — per-process dict (the old in-process memo).
- :class:`JsonDirStore` — hash-sharded on-disk JSON with atomic
  (tmp + :func:`os.replace`) writes and versioned records
  (:mod:`~repro.campaign.stores.disk`).
- :class:`ShardedStore` — consistent-hash ring over N ``JsonDirStore``
  roots; adding a shard remaps ~1/N keys and reads self-repair
  (:mod:`~repro.campaign.stores.sharded`).
- :class:`SingleFlightStore` — wrapper coalescing concurrent identical
  lookup-then-computes into one execution
  (:mod:`~repro.campaign.stores.singleflight`).
- :class:`NullStore` — caches nothing (every run recomputes).
- :class:`TieredStore` — layered lookup (memory in front of disk) with
  read-through backfill.

:func:`migrate` upgrades old-``CACHE_VERSION`` entries in place via
the registered rewriter chains (:mod:`~repro.campaign.stores.migrate`).

:func:`default_store` assembles the standard stack from the
environment: ``REPRO_CACHE_DIR`` relocates the disk cache (default
``.exp_cache``), ``REPRO_CACHE=0`` drops the disk layer entirely, and
``REPRO_CACHE_SHARDS=N`` (N >= 1) replaces the single disk root with
an N-way :class:`ShardedStore` under ``<cache_dir>/shards/``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.campaign.stores.base import (
    GLOBAL_MEMORY,
    MemoryStore,
    NullStore,
    ResultStore,
    TieredStore,
)
from repro.campaign.stores.disk import (
    DEFAULT_TMP_GRACE_S,
    RECORD_FORMAT,
    RECORD_VERSION,
    UNRECORDED,
    JsonDirStore,
    make_record,
    payload_of,
    version_of,
)
from repro.campaign.stores.migrate import (
    MigrationReport,
    migrate,
    register_rewriter,
    rewriter_chain,
)
from repro.campaign.stores.sharded import ShardedStore
from repro.campaign.stores.singleflight import (
    SingleFlightStore,
    flights_in_progress,
)
from repro.errors import ConfigurationError

__all__ = [
    "GLOBAL_MEMORY",
    "DEFAULT_TMP_GRACE_S",
    "RECORD_FORMAT",
    "RECORD_VERSION",
    "UNRECORDED",
    "JsonDirStore",
    "MemoryStore",
    "MigrationReport",
    "NullStore",
    "ResultStore",
    "ShardedStore",
    "SingleFlightStore",
    "TieredStore",
    "cache_dir",
    "cache_shards",
    "default_disk_store",
    "default_store",
    "disk_cache_enabled",
    "flights_in_progress",
    "make_record",
    "migrate",
    "payload_of",
    "register_rewriter",
    "rewriter_chain",
    "version_of",
]


def cache_dir() -> Path:
    """The on-disk cache directory (``REPRO_CACHE_DIR``, default ``.exp_cache``)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".exp_cache"))


def disk_cache_enabled() -> bool:
    """Whether the disk layer is active (``REPRO_CACHE=0`` disables it)."""
    return os.environ.get("REPRO_CACHE", "1") != "0"


def cache_shards() -> int:
    """Shard count from ``REPRO_CACHE_SHARDS`` (0 = single flat root)."""
    raw = os.environ.get("REPRO_CACHE_SHARDS", "0").strip()
    try:
        count = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_CACHE_SHARDS must be an integer, got {raw!r}"
        ) from None
    if count < 0:
        raise ConfigurationError(
            f"REPRO_CACHE_SHARDS must be >= 0, got {count}"
        )
    return count


def default_disk_store() -> ResultStore | None:
    """The environment-configured disk layer, or None when disabled.

    With ``REPRO_CACHE_SHARDS`` unset (or 0) this is the classic flat
    :class:`JsonDirStore`; with N >= 1 it is an N-way
    :class:`ShardedStore` under ``<cache_dir>/shards/`` — a distinct
    namespace, so flipping the knob never corrupts the flat cache (run
    ``repro cache migrate``/``rebalance`` to carry entries over).
    """
    if not disk_cache_enabled():
        return None
    count = cache_shards()
    root = cache_dir()
    if count >= 1:
        return ShardedStore.at(root, count)
    return JsonDirStore(root)


def default_store() -> ResultStore:
    """The standard store stack: single-flight over memory, then disk."""
    disk = default_disk_store()
    if disk is None:
        return SingleFlightStore(GLOBAL_MEMORY)
    return SingleFlightStore(TieredStore([GLOBAL_MEMORY, disk]))
