"""Store protocol and in-memory implementations.

A :class:`ResultStore` maps spec keys to JSON-serializable payload
dicts.  Stores never see result objects — en/decoding belongs to the
runner (:mod:`repro.campaign.spec`) — so any store can hold any kind.

Beyond plain ``get``/``put`` the protocol carries two optional
capabilities the engine layers use:

- ``put(key, payload, meta=...)`` — ``meta`` is the spec's cache
  metadata (``cache_version``/``kind``/key fields, see
  :func:`repro.campaign.spec.spec_meta`).  Disk stores persist it so
  entries can be migrated across ``CACHE_VERSION`` bumps; memory
  stores ignore it.
- ``get_or_compute(key, compute, ...)`` — the lookup-then-compute
  transaction.  The base implementation is get/compute/put; the
  single-flight wrapper (:mod:`repro.campaign.stores.singleflight`)
  overrides it to coalesce concurrent identical computes.
- ``describe(key)`` — placement provenance (e.g. which shard would
  hold the key), merged into cold-run envelope provenance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Mapping

from repro.obs.metrics import METRICS


def _count_request(hit: bool) -> None:
    """Feed the warm-hit-ratio SLO: one sample per lookup transaction."""
    METRICS.counter_inc(
        "repro_store_requests_total",
        "Result-store lookup transactions by cache outcome",
        cache="hit" if hit else "miss",
    )


class ResultStore(ABC):
    """Key -> payload-dict storage with cache-miss-as-None semantics."""

    @abstractmethod
    def get(self, key: str) -> dict | None:
        """Return the payload stored under ``key``, or None on a miss."""

    @abstractmethod
    def put(
        self, key: str, payload: dict, meta: Mapping | None = None
    ) -> None:
        """Store ``payload`` under ``key`` (best effort; may drop).

        ``meta`` is the spec's cache metadata (version/kind/key
        fields); stores without a migration story ignore it.
        """

    def describe(self, key: str) -> dict:
        """Placement provenance for ``key`` (e.g. ``{"shard": "02"}``).

        The base store has no placement to report.
        """
        return {}

    def get_or_compute(
        self,
        key: str,
        compute: Callable[[], tuple[dict, dict]],
        meta: Mapping | None = None,
        validate: Callable[[dict], bool] | None = None,
    ) -> tuple[dict, bool, dict]:
        """Look up ``key``, computing and publishing it on a miss.

        ``compute`` returns ``(payload, info)`` where ``info`` carries
        compute provenance (e.g. ``compute_seconds``).  A stored
        payload rejected by ``validate`` (stale schema) is treated as a
        miss.  Returns ``(payload, hit, info)``; on a miss the info
        dict additionally carries this store's :meth:`describe`
        placement.  The base implementation does not coalesce
        concurrent computes — wrap the store in a
        :class:`~repro.campaign.stores.SingleFlightStore` for that.
        """
        payload = self.get(key)
        if payload is not None and (validate is None or validate(payload)):
            _count_request(hit=True)
            return payload, True, {}
        payload, info = compute()
        self.put(key, payload, meta=meta)
        info = dict(info)
        info.update(self.describe(key))
        _count_request(hit=False)
        return payload, False, info

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None


class NullStore(ResultStore):
    """Stores nothing; every lookup misses."""

    def get(self, key: str) -> dict | None:
        return None

    def put(
        self, key: str, payload: dict, meta: Mapping | None = None
    ) -> None:
        pass


class MemoryStore(ResultStore):
    """In-process dict store."""

    def __init__(self) -> None:
        self._data: dict[str, dict] = {}

    def get(self, key: str) -> dict | None:
        return self._data.get(key)

    def put(
        self, key: str, payload: dict, meta: Mapping | None = None
    ) -> None:
        self._data[key] = payload

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        """Drop every cached payload."""
        self._data.clear()


class TieredStore(ResultStore):
    """Layered store: first hit wins, earlier layers are backfilled.

    ``put`` writes through to every layer, so a memory front absorbs
    repeat lookups while a disk back survives the process.
    """

    def __init__(self, layers: list[ResultStore]) -> None:
        self.layers = list(layers)

    def get(self, key: str) -> dict | None:
        for index, layer in enumerate(self.layers):
            payload = layer.get(key)
            if payload is not None:
                for earlier in self.layers[:index]:
                    earlier.put(key, payload)
                return payload
        return None

    def put(
        self, key: str, payload: dict, meta: Mapping | None = None
    ) -> None:
        for layer in self.layers:
            layer.put(key, payload, meta=meta)

    def describe(self, key: str) -> dict:
        """Merged placement across layers (later layers override)."""
        info: dict = {}
        for layer in self.layers:
            info.update(layer.describe(key))
        return info


#: Process-wide memory layer shared by every default store instance,
#: preserving the old "one pytest session never repeats a run" memo.
GLOBAL_MEMORY = MemoryStore()
