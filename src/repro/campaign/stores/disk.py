"""On-disk JSON store with atomic writes and versioned records.

Layout: keys live under ``root/<shard>/<key>.json`` where the shard
directory is the last two hex characters of the key hash, keeping
directories small when campaigns write thousands of results.  Two
older layouts stay readable: a flat ``root/<key>.json`` file
(pre-sharding) and *bare* files holding the payload dict directly
(pre-record-format).

Writes are atomic: the document goes to a
``<key>.json.tmp.<pid>.<tid>.<counter>`` sibling first and is
published with :func:`os.replace`, so a reader (or a concurrent pool
worker, or another handler thread of the HTTP service) can never
observe a partially written file.  The tmp name embeds the pid, the
thread id, *and* a process-wide monotonic counter — two threads of one
process writing the same key each get their own tmp file instead of
interleaving writes into a shared one.

On-disk format: each entry is a *record* wrapping the payload with its
cache metadata::

    {"format": "repro-cache-record", "record": 1,
     "cache_version": "v2", "kind": "ch4",
     "spec": {...key fields...}, "payload": {...}}

``cache_version``/``kind``/``spec`` are what
:func:`repro.campaign.stores.migrate.migrate` needs to re-key an entry
after a ``CACHE_VERSION`` bump.  ``get`` unwraps the payload; a bare
legacy file (no ``format`` marker) is served as-is and reported as
``"unrecorded"`` in :meth:`JsonDirStore.stats`.

I/O errors degrade to cache misses — the store is an accelerator, not
a dependency.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from pathlib import Path
from typing import Iterator, Mapping

from repro.campaign.spec import CACHE_VERSION
from repro.campaign.stores.base import ResultStore

#: ``format`` marker of wrapped on-disk entries.
RECORD_FORMAT = "repro-cache-record"
#: Version of the record wrapper itself (not of the cached payload).
RECORD_VERSION = 1
#: Version label reported for bare (pre-record-format) entries.
UNRECORDED = "unrecorded"
#: Tmp files older than this many seconds are swept by ``prune()``;
#: young ones may belong to an in-flight writer and are left alone.
DEFAULT_TMP_GRACE_S = 3600.0

#: Process-wide monotonic suffix for tmp names (thread-safe: CPython
#: evaluates ``next()`` on an ``itertools.count`` atomically).
_TMP_COUNTER = itertools.count()


def make_record(
    payload: dict, meta: Mapping | None = None, key: str | None = None
) -> dict:
    """Wrap ``payload`` in the on-disk record format.

    Without ``meta`` the record is stamped with the current
    ``CACHE_VERSION`` and the kind parsed from the key prefix, but has
    no spec fields — such entries count in version stats yet cannot be
    re-keyed by a migration.
    """
    meta = dict(meta) if meta else {}
    kind = meta.get("kind")
    if kind is None and key is not None:
        kind = key.rsplit("-", 1)[0]
    return {
        "format": RECORD_FORMAT,
        "record": RECORD_VERSION,
        "cache_version": meta.get("cache_version", CACHE_VERSION),
        "kind": kind,
        "spec": meta.get("spec"),
        "payload": payload,
    }


def payload_of(document: object) -> dict | None:
    """The payload dict inside a parsed entry document, or None.

    Accepts both record-wrapped and bare legacy documents; anything
    that is not a dict (or a record whose payload is not a dict) is
    unusable and reads as a miss.
    """
    if not isinstance(document, dict):
        return None
    if document.get("format") == RECORD_FORMAT:
        payload = document.get("payload")
        return payload if isinstance(payload, dict) else None
    return document


def version_of(document: object) -> str:
    """The cache-version label of a parsed entry document."""
    if isinstance(document, dict) and document.get("format") == RECORD_FORMAT:
        return str(document.get("cache_version") or "unknown")
    return UNRECORDED


def _is_hash_shard(name: str) -> bool:
    """Whether ``name`` is a two-hex-character key-hash directory."""
    return len(name) == 2 and all(c in "0123456789abcdef" for c in name)


class JsonDirStore(ResultStore):
    """Hash-sharded on-disk JSON store (see module docstring)."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[-2:] / f"{key}.json"

    def _legacy_path(self, key: str) -> Path:
        # Pre-sharding layout: a flat root/<key>.json file.
        return self.root / f"{key}.json"

    def _tmp_path(self, path: Path) -> Path:
        return path.with_name(
            f"{path.name}.tmp.{os.getpid()}"
            f".{threading.get_ident()}.{next(_TMP_COUNTER)}"
        )

    # -- lookup ------------------------------------------------------------

    def get(self, key: str) -> dict | None:
        # Prefer the sharded layout, but fall through to the legacy
        # flat file whenever the sharded one is absent *or unusable* —
        # a sharded file parsing to a non-dict must not mask a valid
        # legacy entry.
        payload = payload_of(self._read_document(self._path(key)))
        if payload is None:
            payload = payload_of(self._read_document(self._legacy_path(key)))
        return payload

    def read_record(self, key: str) -> dict | None:
        """The raw entry document (record wrapper or bare legacy dict)."""
        for path in (self._path(key), self._legacy_path(key)):
            document = self._read_document(path)
            if isinstance(document, dict):
                return document
        return None

    @staticmethod
    def _read_document(path: Path) -> object:
        try:
            with path.open() as handle:
                return json.load(handle)
        except (OSError, ValueError):
            # Missing, unreadable, or mid-upgrade partial legacy file.
            return None

    # -- publish -----------------------------------------------------------

    def put(
        self, key: str, payload: dict, meta: Mapping | None = None
    ) -> None:
        self.write_document(key, make_record(payload, meta, key=key))

    def write_document(self, key: str, document: dict) -> None:
        """Atomically publish a raw entry document under ``key``.

        Used by rebalance/migration to move records *verbatim* —
        unlike :meth:`put` this never re-stamps the cache version.
        """
        path = self._path(key)
        tmp = self._tmp_path(path)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("w") as handle:
                json.dump(document, handle)
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError):
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def remove(self, key: str) -> bool:
        """Delete the entry under ``key`` (both layouts); True if found."""
        removed = False
        for path in (self._path(key), self._legacy_path(key)):
            try:
                path.unlink()
                removed = True
            except OSError:
                continue
        return removed

    # -- enumeration -------------------------------------------------------

    def _entry_items(self) -> list[tuple[str, Path]]:
        """Unique ``(key, path)`` entries; the sharded layout wins.

        A key present in both layouts is counted once (the sharded
        copy).  Only this store's own layouts are scanned — nested
        stores (e.g. shard roots under a ``shards/`` subdirectory of a
        legacy root) are invisible.
        """
        if not self.root.is_dir():
            return []
        items: dict[str, Path] = {}
        try:
            subdirs = sorted(
                sub for sub in self.root.iterdir()
                if sub.is_dir() and _is_hash_shard(sub.name)
            )
            for sub in subdirs:
                for path in sorted(sub.glob("*.json")):
                    items.setdefault(path.name[: -len(".json")], path)
            for path in sorted(self.root.glob("*.json")):
                items.setdefault(path.name[: -len(".json")], path)
        except OSError:
            return []
        return sorted(items.items())

    def iter_records(self) -> Iterator[tuple[str, dict]]:
        """Yield every readable ``(key, document)`` entry once."""
        for key, path in self._entry_items():
            document = self._read_document(path)
            if isinstance(document, dict):
                yield key, document

    def dated_entries(self) -> list[tuple[float, str, Path]]:
        """``(mtime, key, path)`` per entry, for age-based eviction."""
        dated = []
        for key, path in self._entry_items():
            try:
                dated.append((path.stat().st_mtime, key, path))
            except OSError:
                continue
        return dated

    def _tmp_files(self) -> list[Path]:
        """Every leftover tmp file (current and legacy ``.tmp`` naming)."""
        if not self.root.is_dir():
            return []
        try:
            found = [p for p in self.root.glob("*.tmp.*") if p.is_file()]
            for sub in self.root.iterdir():
                if sub.is_dir() and _is_hash_shard(sub.name):
                    found.extend(
                        p for p in sub.glob("*.tmp.*") if p.is_file()
                    )
        except OSError:
            return []
        return found

    # -- maintenance -------------------------------------------------------

    def stats(self) -> dict:
        """Cache census: entries, bytes, per-version counts, tmp files.

        Like every other store operation this degrades instead of
        raising — an unreadable file simply doesn't count — so it is
        safe to call against a cache other processes are writing.
        """
        entries = 0
        total_bytes = 0
        shards: set[str] = set()
        versions: dict[str, int] = {}
        for key, path in self._entry_items():
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
            entries += 1
            if path.parent != self.root:
                shards.add(path.parent.name)
            label = version_of(self._read_document(path))
            versions[label] = versions.get(label, 0) + 1
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "shards": len(shards),
            "versions": dict(sorted(versions.items())),
            "tmp_files": len(self._tmp_files()),
        }

    def prune(
        self,
        max_entries: int | None = None,
        *,
        tmp_grace_s: float = DEFAULT_TMP_GRACE_S,
    ) -> int:
        """Evict oldest entries and sweep stale tmp files.

        With ``max_entries`` given, evicts oldest entries (by mtime)
        down to that count.  Tmp files older than ``tmp_grace_s``
        seconds — orphans of writers that crashed between opening the
        tmp and publishing it — are always swept; younger ones may
        belong to an in-flight writer and are left alone.  Returns the
        number of files removed.  Races are benign: a file deleted by
        a concurrent pruner just counts for whoever unlinked it first,
        and readers of a pruned key see an ordinary cache miss.
        """
        removed = self._sweep_tmp(tmp_grace_s)
        if max_entries is None:
            return removed
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        dated = self.dated_entries()
        excess = len(dated) - max_entries
        if excess <= 0:
            return removed
        dated.sort(key=lambda item: item[0])
        for _, _, path in dated[:excess]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def _sweep_tmp(self, grace_s: float) -> int:
        cutoff = time.time() - grace_s
        removed = 0
        for path in self._tmp_files():
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                continue
        return removed
