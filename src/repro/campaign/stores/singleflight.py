"""Single-flight coalescing of concurrent identical computes.

When N threads ask for the same cold cache key at once — N handler
threads of the ``ThreadingHTTPServer`` service, or a
:class:`~repro.cluster.backends.VectorBackend` gang racing an API
request — exactly one of them (the *leader*) should execute the
compute; the others (*followers*) wait and receive the leader's
payload.  Without coalescing each thread runs the full simulation,
multiplying minutes of identical work.

:class:`SingleFlightStore` wraps any inner store and overrides
``get_or_compute`` with that protocol.  Flights live in a
process-wide table keyed by ``(scope, key)``:

- *Process-wide*, not per-instance, because every ``default_store()``
  call builds a fresh wrapper — two service threads each resolving the
  default stack must still share one flight.  Keys are content hashes
  of the spec, so one key can only ever name one computation and
  cross-instance sharing is safe.  ``scope`` (default ``"default"``)
  exists so tests with independent store roots can opt out of sharing.
- Keyed by *thread owner*, so a leader that re-enters the store while
  computing (the vector backend's solo fallback calls the engine,
  which calls ``get_or_compute`` again) passes straight through
  instead of deadlocking on its own flight.

Instances hold only the inner store and the scope string — no locks or
events — so a ``SingleFlightStore`` pickles cleanly into pool workers
(each process has its own flight table, which is exactly right:
flights coalesce threads, processes coordinate through the disk layer).

A leader that fails wakes its followers empty-handed; each follower
then computes for itself, so coalescing never turns one transient
failure into N failures.
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping

from repro.campaign.stores.base import ResultStore, _count_request
from repro.obs.metrics import METRICS


def _count_flight(outcome: str) -> None:
    METRICS.counter_inc(
        "repro_store_single_flight_total",
        "Coalesced-compute transactions by role outcome",
        outcome=outcome,
    )

#: Flight-table scope used by the default store stack.
DEFAULT_SCOPE = "default"


class _Flight:
    """One in-progress compute: the leader's thread and its outcome."""

    __slots__ = ("event", "owner", "payload")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.owner = threading.get_ident()
        #: The leader's payload; still None after the event fires means
        #: the leader failed and followers must compute for themselves.
        self.payload: dict | None = None


_FLIGHTS: dict[tuple[str, str], _Flight] = {}
_FLIGHTS_LOCK = threading.Lock()


class SingleFlightStore(ResultStore):
    """Wrap ``inner`` so concurrent identical computes run once."""

    def __init__(
        self, inner: ResultStore, *, scope: str = DEFAULT_SCOPE
    ) -> None:
        self.inner = inner
        self.scope = scope

    # -- plain delegation --------------------------------------------------

    def get(self, key: str) -> dict | None:
        return self.inner.get(key)

    def put(
        self, key: str, payload: dict, meta: Mapping | None = None
    ) -> None:
        self.inner.put(key, payload, meta=meta)

    def describe(self, key: str) -> dict:
        return self.inner.describe(key)

    # -- flight control (used directly by the vector backend) --------------

    def try_lead(self, key: str) -> bool:
        """Claim (or confirm owning) the flight for ``key``.

        True means this thread is the leader and must eventually call
        :meth:`settle`; False means another thread's flight is in
        progress — :meth:`follow` it.  Re-claiming a flight this thread
        already owns is idempotent (``settle`` fires once).
        """
        ident = threading.get_ident()
        with _FLIGHTS_LOCK:
            flight = _FLIGHTS.get((self.scope, key))
            if flight is None:
                _FLIGHTS[(self.scope, key)] = _Flight()
                return True
            return flight.owner == ident

    def settle(self, key: str, payload: dict | None) -> None:
        """Publish the flight's outcome and wake every follower.

        ``payload=None`` reports leader failure — followers recompute.
        Idempotent: settling an already-settled (or never-led) key is a
        no-op, so error-path ``finally`` blocks can settle broadly.
        """
        with _FLIGHTS_LOCK:
            flight = _FLIGHTS.pop((self.scope, key), None)
        if flight is not None:
            flight.payload = payload
            flight.event.set()

    def follow(self, key: str, timeout: float | None = None) -> dict | None:
        """Wait out the in-progress flight for ``key``, if any.

        Returns the leader's payload, or None when there is no flight,
        the wait timed out, or the leader failed — in every None case
        the caller should fall back to computing (or reading) itself.
        """
        with _FLIGHTS_LOCK:
            flight = _FLIGHTS.get((self.scope, key))
        if flight is None:
            return self.inner.get(key)
        if not flight.event.wait(timeout):
            return None
        return flight.payload

    # -- the coalesced transaction -----------------------------------------

    def get_or_compute(
        self,
        key: str,
        compute: Callable[[], tuple[dict, dict]],
        meta: Mapping | None = None,
        validate: Callable[[dict], bool] | None = None,
    ) -> tuple[dict, bool, dict]:
        payload = self.inner.get(key)
        if payload is not None and (validate is None or validate(payload)):
            _count_request(hit=True)
            return payload, True, {}
        ident = threading.get_ident()
        with _FLIGHTS_LOCK:
            flight = _FLIGHTS.get((self.scope, key))
            if flight is None:
                _FLIGHTS[(self.scope, key)] = _Flight()
                role = "leader"
            elif flight.owner == ident:
                # Nested call under a flight this thread already
                # leads: compute directly, leave settling to the
                # outer owner.
                role = "nested"
            else:
                role = "follower"
        if role == "follower":
            flight.event.wait()
            if flight.payload is not None:
                _count_request(hit=True)
                _count_flight("coalesced")
                return flight.payload, True, {"single_flight": "coalesced"}
            # Leader failed; fall through to computing ourselves
            # (un-coalesced, but correct).
        elif role == "leader":
            try:
                payload, info = compute()
            except BaseException:
                self.settle(key, None)
                raise
            self.inner.put(key, payload, meta=meta)
            self.settle(key, payload)
            info = dict(info)
            info.update(self.describe(key))
            _count_request(hit=False)
            _count_flight("led")
            return payload, False, info
        payload, info = compute()
        self.inner.put(key, payload, meta=meta)
        info = dict(info)
        info.update(self.describe(key))
        _count_request(hit=False)
        return payload, False, info


def flights_in_progress(scope: str = DEFAULT_SCOPE) -> int:
    """How many flights are currently open under ``scope`` (for tests)."""
    with _FLIGHTS_LOCK:
        return sum(1 for s, _ in _FLIGHTS if s == scope)
