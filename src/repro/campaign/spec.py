"""Run specifications and the runner registry.

A *run spec* is a frozen dataclass describing one experiment: it
carries a ``kind`` class attribute naming its runner and a stable
``key()`` used for caching and deduplication.  The registry maps each
kind to a :class:`Runner` — the execute function plus the JSON codecs
that let results round-trip through a :class:`~repro.campaign.stores.ResultStore`.

Registering a runner in the module that defines its spec class makes
the pairing survive process boundaries: unpickling a spec in a pool
worker imports the defining module, which re-registers the runner.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Protocol, runtime_checkable

from repro.errors import ConfigurationError

#: Bump when model changes invalidate cached results.
CACHE_VERSION = "v2"


@runtime_checkable
class RunSpec(Protocol):
    """Anything the campaign engine can execute.

    Implementations are frozen dataclasses so they hash, compare, and
    pickle cleanly (pool workers receive specs by pickle).
    """

    #: Registry name of the runner that executes this spec.
    kind: ClassVar[str]

    def key(self) -> str:
        """Stable cache key of this spec."""
        ...


def key_for_fields(
    kind: str, fields: dict, cache_version: str = CACHE_VERSION
) -> str:
    """The cache key naming ``fields`` under ``cache_version``.

    This is :func:`spec_key` without the spec object: given the same
    key-relevant fields it reproduces the same digest, which is what
    lets a store migration re-key an entry from its persisted metadata
    (:mod:`repro.campaign.stores.migrate`) — and what lets it compute
    the key an *old* version produced, by passing that version.
    """
    payload = json.dumps(fields, sort_keys=True, default=str)
    digest = hashlib.sha256(
        f"{cache_version}|{kind}|{payload}".encode()
    ).hexdigest()
    return f"{kind}-{digest[:20]}"


def _key_fields(spec: RunSpec) -> dict:
    excluded = getattr(spec, "KEY_EXCLUDED_FIELDS", ())
    return {k: v for k, v in spec.__dict__.items() if k not in excluded}


def spec_key(spec: RunSpec) -> str:
    """Default cache key: ``<kind>-<sha256 of the field payload>``.

    The digest covers the cache version, the kind, and every dataclass
    field, so two specs collide only when they describe the same run.
    Fields named in the spec class's ``KEY_EXCLUDED_FIELDS`` are pure
    presentation metadata (e.g. the scenario label) and are left out,
    so differently-labeled descriptions of the same physical run share
    one cache entry.
    """
    return key_for_fields(spec.kind, _key_fields(spec))


def spec_fields(spec: RunSpec) -> dict:
    """The spec's key-relevant fields in JSON-native form.

    Exactly the fields :func:`spec_key` hashes, round-tripped through
    JSON so the dict can be persisted and later re-hashed to the
    identical digest (tuples become lists, exotic values their ``str``
    form — the same normalizations ``json.dumps(default=str)`` applies
    while hashing).
    """
    return json.loads(json.dumps(_key_fields(spec), sort_keys=True, default=str))


def spec_meta(spec: RunSpec) -> dict:
    """The cache metadata a disk store persists beside a payload.

    Carries everything a future :func:`repro.campaign.stores.migrate.migrate`
    needs to re-key the entry after a ``CACHE_VERSION`` bump: the
    version the key was computed under, the kind, and the key fields.
    """
    return {
        "cache_version": CACHE_VERSION,
        "kind": spec.kind,
        "spec": spec_fields(spec),
    }


@dataclass(frozen=True)
class Runner:
    """Execution + serialization (+ optional stepping) for one spec kind."""

    kind: str
    #: Runs the spec, returning the (arbitrary) result object.
    execute: Callable[[Any], Any]
    #: Result object -> JSON-serializable dict.
    encode: Callable[[Any], dict]
    #: JSON dict -> result object (inverse of ``encode``).
    decode: Callable[[dict], Any]
    #: Optional factory building a :class:`repro.engine.SteppingEngine`
    #: for the spec (``make_engine(spec, extra_observers=())``).  Kinds
    #: that provide it support checkpoint/resume and time-sliced
    #: execution; ``execute`` must equal
    #: ``make_engine(spec).run_to_completion()`` bit for bit.
    make_engine: Callable[..., Any] | None = None


_RUNNERS: dict[str, Runner] = {}

#: Spec dataclass per kind, for rebuilding specs from wire payloads
#: (:mod:`repro.cluster.wire`).  Populated by ``register_runner``'s
#: ``spec_type`` argument or :func:`register_spec_type`.
_SPEC_TYPES: dict[str, type] = {}


def register_spec_type(cls: type) -> type:
    """Register the spec dataclass for its ``kind`` (usable as a decorator).

    Registration makes the kind's cells serializable through the
    cluster wire format: a coordinator can ship the spec's fields to a
    worker process, which rebuilds the identical frozen dataclass.
    """
    kind = getattr(cls, "kind", None)
    if not isinstance(kind, str) or not kind:
        raise ConfigurationError(
            f"spec type {cls.__name__} must define a non-empty 'kind' "
            f"class attribute"
        )
    _SPEC_TYPES[kind] = cls
    return cls


def spec_type_for(kind: str) -> type:
    """Look up the spec dataclass registered for ``kind``."""
    cls = _SPEC_TYPES.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"no spec type registered for kind {kind!r} "
            f"(registered: {sorted(_SPEC_TYPES) or 'none'})"
        )
    return cls


def spec_kinds_with_types() -> tuple[str, ...]:
    """Kinds whose specs can round-trip the cluster wire format."""
    return tuple(sorted(_SPEC_TYPES))


def register_runner(
    kind: str,
    execute: Callable[[Any], Any],
    *,
    encode: Callable[[Any], dict],
    decode: Callable[[dict], Any],
    spec_type: type | None = None,
    make_engine: Callable[..., Any] | None = None,
) -> Runner:
    """Register (or re-register) the runner for ``kind``.

    Re-registration is allowed so module reloads stay idempotent.
    ``spec_type`` additionally registers the kind's spec dataclass for
    the cluster wire format (see :func:`register_spec_type`);
    ``make_engine`` opts the kind into resumable (checkpoint/restore,
    time-sliced) execution.
    """
    runner = Runner(
        kind=kind,
        execute=execute,
        encode=encode,
        decode=decode,
        make_engine=make_engine,
    )
    _RUNNERS[kind] = runner
    if spec_type is not None:
        register_spec_type(spec_type)
    return runner


def engine_for_spec(spec: RunSpec, extra_observers: tuple = ()) -> Any:
    """A fresh stepping engine for one spec's run.

    Raises :class:`~repro.errors.ConfigurationError` for kinds whose
    runner registered no engine factory (only whole-run execution).
    """
    runner = runner_for(spec.kind)
    if runner.make_engine is None:
        raise ConfigurationError(
            f"spec kind {spec.kind!r} does not support engine-hosted "
            f"(resumable/time-sliced) execution"
        )
    return runner.make_engine(spec, extra_observers=extra_observers)


def runner_for(kind: str) -> Runner:
    """Look up the runner for a spec kind."""
    runner = _RUNNERS.get(kind)
    if runner is None:
        raise ConfigurationError(
            f"no runner registered for spec kind {kind!r} "
            f"(registered: {sorted(_RUNNERS) or 'none'})"
        )
    return runner


def registered_kinds() -> tuple[str, ...]:
    """Names of all registered spec kinds."""
    return tuple(sorted(_RUNNERS))
