"""Pluggable result stores for the campaign engine.

A :class:`ResultStore` maps spec keys to JSON-serializable payload
dicts.  Stores never see result objects — en/decoding belongs to the
runner (:mod:`repro.campaign.spec`) — so any store can hold any kind.

Implementations:

- :class:`MemoryStore` — per-process dict (the old in-process memo).
- :class:`JsonDirStore` — sharded on-disk JSON, written atomically via
  a ``.tmp`` sibling and :func:`os.replace` so concurrent readers never
  observe a torn file.
- :class:`NullStore` — caches nothing (every run recomputes).
- :class:`TieredStore` — layered lookup (memory in front of disk) with
  read-through backfill.

:func:`default_store` assembles the standard stack from the
environment: ``REPRO_CACHE_DIR`` relocates the disk cache (default
``.exp_cache``), ``REPRO_CACHE=0`` drops the disk layer entirely.
"""

from __future__ import annotations

import json
import os
from abc import ABC, abstractmethod
from pathlib import Path


class ResultStore(ABC):
    """Key -> payload-dict storage with cache-miss-as-None semantics."""

    @abstractmethod
    def get(self, key: str) -> dict | None:
        """Return the payload stored under ``key``, or None on a miss."""

    @abstractmethod
    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` under ``key`` (best effort; may drop)."""

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None


class NullStore(ResultStore):
    """Stores nothing; every lookup misses."""

    def get(self, key: str) -> dict | None:
        return None

    def put(self, key: str, payload: dict) -> None:
        pass


class MemoryStore(ResultStore):
    """In-process dict store."""

    def __init__(self) -> None:
        self._data: dict[str, dict] = {}

    def get(self, key: str) -> dict | None:
        return self._data.get(key)

    def put(self, key: str, payload: dict) -> None:
        self._data[key] = payload

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        """Drop every cached payload."""
        self._data.clear()


class JsonDirStore(ResultStore):
    """Sharded on-disk JSON store with atomic writes.

    Keys live under ``root/<shard>/<key>.json`` where the shard is the
    last two hex characters of the key hash, keeping directories small
    when campaigns write thousands of results.  Writes go to a
    ``.tmp.<pid>`` sibling first and are published with
    :func:`os.replace`, so a reader (or a concurrent pool worker) can
    never observe a partially written file.  I/O errors degrade to
    cache misses — the store is an accelerator, not a dependency.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[-2:] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        path = self._path(key)
        try:
            with path.open() as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            # Missing, unreadable, or mid-upgrade partial legacy file.
            payload = self._get_legacy(key)
        return payload if isinstance(payload, dict) else None

    def _get_legacy(self, key: str) -> dict | None:
        # Pre-sharding layout: a flat root/<key>.json file.
        try:
            with (self.root / f"{key}.json").open() as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def put(self, key: str, payload: dict) -> None:
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError):
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    # -- maintenance -------------------------------------------------------

    def _entry_paths(self) -> list[Path]:
        """Every published entry file (sharded and legacy flat layout)."""
        if not self.root.is_dir():
            return []
        try:
            return [
                path
                for path in self.root.glob("**/*.json")
                if path.is_file()
            ]
        except OSError:
            return []

    def stats(self) -> dict:
        """Cache census: entry count, total bytes, shard directories.

        Like every other store operation this degrades instead of
        raising — an unreadable file simply doesn't count — so it is
        safe to call against a cache other processes are writing.
        """
        entries = 0
        total_bytes = 0
        shards: set[str] = set()
        for path in self._entry_paths():
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
            entries += 1
            if path.parent != self.root:
                shards.add(path.parent.name)
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "shards": len(shards),
        }

    def prune(self, max_entries: int) -> int:
        """Evict oldest entries (by mtime) down to ``max_entries``.

        Returns the number of entries removed.  Eviction races are
        benign: an entry deleted by a concurrent pruner just counts for
        whoever unlinked it first, and readers of a pruned key see an
        ordinary cache miss.
        """
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        dated: list[tuple[float, Path]] = []
        for path in self._entry_paths():
            try:
                dated.append((path.stat().st_mtime, path))
            except OSError:
                continue
        excess = len(dated) - max_entries
        if excess <= 0:
            return 0
        dated.sort(key=lambda item: item[0])
        removed = 0
        for _, path in dated[:excess]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed


class TieredStore(ResultStore):
    """Layered store: first hit wins, earlier layers are backfilled.

    ``put`` writes through to every layer, so a memory front absorbs
    repeat lookups while a disk back survives the process.
    """

    def __init__(self, layers: list[ResultStore]) -> None:
        self.layers = list(layers)

    def get(self, key: str) -> dict | None:
        for index, layer in enumerate(self.layers):
            payload = layer.get(key)
            if payload is not None:
                for earlier in self.layers[:index]:
                    earlier.put(key, payload)
                return payload
        return None

    def put(self, key: str, payload: dict) -> None:
        for layer in self.layers:
            layer.put(key, payload)


#: Process-wide memory layer shared by every default store instance,
#: preserving the old "one pytest session never repeats a run" memo.
GLOBAL_MEMORY = MemoryStore()


def cache_dir() -> Path:
    """The on-disk cache directory (``REPRO_CACHE_DIR``, default ``.exp_cache``)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".exp_cache"))


def disk_cache_enabled() -> bool:
    """Whether the disk layer is active (``REPRO_CACHE=0`` disables it)."""
    return os.environ.get("REPRO_CACHE", "1") != "0"


def default_store() -> ResultStore:
    """The standard store stack: shared memory memo, then disk."""
    if not disk_cache_enabled():
        return GLOBAL_MEMORY
    return TieredStore([GLOBAL_MEMORY, JsonDirStore(cache_dir())])
