"""Generic experiment-campaign engine.

One ``run(spec)`` entry point executes any registered run spec with
write-through caching; ``sweep()`` expands declarative parameter grids;
``Campaign`` runs a batch in parallel with deterministic result order;
the ``ResultStore`` hierarchy makes the cache pluggable (in-memory
memo, sharded atomic on-disk JSON, null).

The chapter-specific runners live in :mod:`repro.analysis.specs`;
this package knows nothing about thermal simulation — only how to
execute, cache, and order runs.
"""

from repro.campaign.engine import (
    Campaign,
    RunOutcome,
    cached_payload,
    run,
    run_cached,
    run_outcome,
    run_payload,
    sweep,
)
from repro.campaign.spec import (
    CACHE_VERSION,
    Runner,
    RunSpec,
    engine_for_spec,
    key_for_fields,
    register_runner,
    register_spec_type,
    registered_kinds,
    runner_for,
    spec_fields,
    spec_key,
    spec_kinds_with_types,
    spec_meta,
    spec_type_for,
)
from repro.campaign.stores import (
    GLOBAL_MEMORY,
    JsonDirStore,
    MemoryStore,
    MigrationReport,
    NullStore,
    ResultStore,
    ShardedStore,
    SingleFlightStore,
    TieredStore,
    cache_dir,
    cache_shards,
    default_disk_store,
    default_store,
    disk_cache_enabled,
    migrate,
    register_rewriter,
)

__all__ = [
    "Campaign",
    "RunOutcome",
    "cached_payload",
    "run",
    "run_cached",
    "run_outcome",
    "run_payload",
    "sweep",
    "CACHE_VERSION",
    "Runner",
    "RunSpec",
    "engine_for_spec",
    "key_for_fields",
    "register_runner",
    "register_spec_type",
    "registered_kinds",
    "runner_for",
    "spec_fields",
    "spec_key",
    "spec_kinds_with_types",
    "spec_meta",
    "spec_type_for",
    "GLOBAL_MEMORY",
    "JsonDirStore",
    "MemoryStore",
    "MigrationReport",
    "NullStore",
    "ResultStore",
    "ShardedStore",
    "SingleFlightStore",
    "TieredStore",
    "cache_dir",
    "cache_shards",
    "default_disk_store",
    "default_store",
    "disk_cache_enabled",
    "migrate",
    "register_rewriter",
]
