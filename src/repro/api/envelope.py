"""Versioned result envelopes — the wire format of the client API.

Every run executed through :class:`~repro.api.client.ReproClient` (and
therefore every spec-backed CLI ``--json`` invocation and every HTTP
response of ``python -m repro serve``) is reported as one
:class:`ResultEnvelope` (the CLI's ``homogeneous --json``, which has
no cacheable spec, emits a plain versioned summary instead):

- ``schema_version`` — the envelope schema, ``"<major>.<minor>"``.
  Minor bumps only add fields; consumers must accept unknown keys.
  Major bumps may rename or remove fields; :meth:`ResultEnvelope.from_dict`
  rejects a foreign major outright.
- ``kind`` / ``scenario`` — the spec kind (``ch4``/``ch5``) and the
  scenario label of the cell.
- ``request`` — an echo of the request that produced the result.
  Single-run envelopes (simulate/server/compare) echo the replayable
  typed request; campaign/scenario cells echo the fully resolved spec
  under type ``"cell"`` (descriptive, not replayable).
- ``metrics`` — the run's scalar outputs (runtime, energies, peak
  temperatures, ...), including the derived power averages.
- ``provenance`` — cache hit/miss, the spec cache key, the engine's
  ``CACHE_VERSION``, and the wall seconds spent computing (0 on a hit,
  so a warm cell serializes deterministically: the same request yields
  byte-identical JSON from the CLI and the HTTP service).  Since 1.1
  it may additionally carry ``shard`` (which shard of a sharded store
  holds a freshly computed payload) and ``single_flight``
  (``"coalesced"`` when the result was served by another thread's
  in-flight compute).  Both are omitted — not null — when absent, so
  plain warm envelopes remain byte-identical across store layouts.

``to_dict``/``from_dict`` round-trip losslessly; :meth:`to_json` is the
canonical serialization (sorted keys, two-space indent) shared by every
emitter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.campaign.spec import CACHE_VERSION
from repro.errors import ConfigurationError

#: Envelope schema version.  Bump the minor for additive changes, the
#: major for breaking ones (see the module docstring for the rules).
#: 1.1: optional ``shard``/``single_flight`` provenance fields.
#: 1.2: the jobs/healthz/metrics document family (``/v1/jobs`` job
#: documents, ``/v1/healthz``, ``/metrics?format=json``); result
#: envelopes themselves are unchanged.
SCHEMA_VERSION = "1.2"

#: Provenance values for the ``cache`` field.
_CACHE_STATES = ("hit", "miss")


def schema_major(version: str) -> int:
    """The major component of a ``"<major>.<minor>"`` version string."""
    major, _, minor = str(version).partition(".")
    if not major.isdigit() or not minor.isdigit():
        raise ConfigurationError(
            f"malformed schema_version {version!r} (expected '<major>.<minor>')"
        )
    return int(major)


def check_schema_compatible(version: str) -> None:
    """Reject envelopes from an incompatible (different-major) schema."""
    if schema_major(version) != schema_major(SCHEMA_VERSION):
        raise ConfigurationError(
            f"incompatible schema_version {version!r}: this client speaks "
            f"major {schema_major(SCHEMA_VERSION)} ({SCHEMA_VERSION})"
        )


@dataclass(frozen=True)
class Provenance:
    """Where a result came from and what it cost to produce."""

    #: ``"hit"`` when the cache served the result, ``"miss"`` otherwise.
    cache: str
    #: The spec's content-hash cache key (``<kind>-<sha256 prefix>``).
    cache_key: str
    #: Engine cache version the key was computed under.
    cache_version: str = CACHE_VERSION
    #: Wall seconds spent executing the run; 0.0 for a cache hit.
    compute_seconds: float = 0.0
    #: Shard (directory name) of a sharded store that holds a freshly
    #: computed payload; None (and omitted from the dict form) when
    #: the store is unsharded or the result was a plain warm hit.
    shard: str | None = None
    #: ``"coalesced"`` when this result was served by another thread's
    #: in-flight compute of the same cell; None (omitted) otherwise.
    single_flight: str | None = None

    def __post_init__(self) -> None:
        if self.cache not in _CACHE_STATES:
            raise ConfigurationError(
                f"provenance cache must be one of {_CACHE_STATES}, "
                f"got {self.cache!r}"
            )

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready).

        The optional 1.1 fields are omitted (not emitted as null) when
        absent, keeping plain warm envelopes byte-identical to 1.0
        emitters modulo ``schema_version``.
        """
        document = {
            "cache": self.cache,
            "cache_key": self.cache_key,
            "cache_version": self.cache_version,
            "compute_seconds": self.compute_seconds,
        }
        if self.shard is not None:
            document["shard"] = self.shard
        if self.single_flight is not None:
            document["single_flight"] = self.single_flight
        return document

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "Provenance":
        """Rebuild provenance from its dict form.

        Unknown keys are tolerated (and dropped), per the minor-version
        compatibility rule: a same-major emitter may add fields.
        """
        missing = {"cache", "cache_key"} - set(raw)
        if missing:
            raise ConfigurationError(
                f"provenance is missing fields {sorted(missing)}"
            )
        known = {key for key in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in raw.items() if key in known})


@dataclass(frozen=True)
class ResultEnvelope:
    """One versioned, machine-readable result record."""

    kind: str
    scenario: str | None
    request: dict
    metrics: dict
    provenance: Provenance
    schema_version: str = SCHEMA_VERSION

    def __post_init__(self) -> None:
        check_schema_compatible(self.schema_version)

    def to_dict(self) -> dict:
        """Plain-dict form; the inverse of :meth:`from_dict`."""
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "scenario": self.scenario,
            "request": dict(self.request),
            "metrics": dict(self.metrics),
            "provenance": self.provenance.to_dict(),
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "ResultEnvelope":
        """Rebuild an envelope, enforcing schema compatibility."""
        if not isinstance(raw, Mapping):
            raise ConfigurationError(
                f"envelope must be a JSON object, got {type(raw).__name__}"
            )
        missing = {
            "schema_version", "kind", "request", "metrics", "provenance"
        } - set(raw)
        if missing:
            raise ConfigurationError(
                f"envelope is missing fields {sorted(missing)}"
            )
        check_schema_compatible(raw["schema_version"])
        return cls(
            schema_version=str(raw["schema_version"]),
            kind=str(raw["kind"]),
            scenario=raw.get("scenario"),
            request=dict(raw["request"]),
            metrics=dict(raw["metrics"]),
            provenance=Provenance.from_dict(raw["provenance"]),
        )

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, two-space indent).

        Every emitter — ``--json`` CLI output, the HTTP service — uses
        this one serialization, which is what makes "same request, warm
        cache" responses byte-identical across transports.
        """
        return dumps_canonical(self.to_dict())


def dumps_canonical(document: Any) -> str:
    """The one canonical JSON serialization used by all emitters."""
    return json.dumps(document, sort_keys=True, indent=2)


def results_document(envelopes: list[ResultEnvelope]) -> dict:
    """A versioned multi-result document (``compare``/``campaign``)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "results": [envelope.to_dict() for envelope in envelopes],
    }


def scenarios_document(descriptors: list[dict]) -> dict:
    """A versioned scenario-listing document (``/v1/scenarios``)."""
    return {"schema_version": SCHEMA_VERSION, "scenarios": descriptors}
