"""Typed request objects — the stable input vocabulary of the API.

Each request is a frozen, validated dataclass that knows how to lower
itself to campaign-engine run specs (via the scenario engine, so API
runs share cache entries with CLI and bench runs).  The CLI subcommands,
the :class:`~repro.api.client.ReproClient` methods, and the HTTP routes
of ``python -m repro serve`` all construct these same objects, which is
what keeps the three surfaces behaviorally identical.

``request_to_dict``/``request_from_dict`` round-trip requests through
plain JSON-shaped dicts keyed by a ``"type"`` tag — the form the HTTP
service accepts and the form echoed inside every
:class:`~repro.api.envelope.ResultEnvelope`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Mapping

from repro.analysis.campaigns import CAMPAIGN_GRIDS, NamedGrid, expand_campaign
from repro.analysis.specs import (
    CHAPTER4_POLICIES,
    CHAPTER4_POLICY_CHOICES,
    CHAPTER5_POLICIES,
)
from repro.campaign import RunSpec
from repro.errors import ConfigurationError
from repro.params.thermal_params import COOLING_CONFIGS
from repro.scenarios import grid_scenario
from repro.testbed.platforms import PLATFORMS


def _check_count(name: str, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1")


def _name_tuple(axis: str, value: Any) -> tuple[str, ...]:
    """Normalize a list axis to a tuple of strings.

    A bare string is rejected rather than exploded into characters
    (``tuple("W1")`` would become ``("W", "1")`` and produce baffling
    "unknown mix 'W'" errors downstream).
    """
    if not isinstance(value, str):
        try:
            items = tuple(value)
        except TypeError:
            items = None
        if items is not None and all(isinstance(item, str) for item in items):
            return items
    raise ConfigurationError(
        f"{axis} must be a list of strings, got {value!r}"
    )


def _check_copies(copies: int) -> None:
    _check_count("copies", copies)


def _check_jobs(jobs: int) -> None:
    _check_count("jobs", jobs)


@dataclass(frozen=True)
class SimulateRequest:
    """One Chapter 4 two-level simulation cell."""

    TYPE: ClassVar[str] = "simulate"

    mix: str = "W1"
    policy: str = "acg"
    cooling: str = "AOHS_1.5"
    ambient: str = "isolated"
    copies: int = 2

    def __post_init__(self) -> None:
        if self.policy not in CHAPTER4_POLICY_CHOICES:
            raise ConfigurationError(
                f"unknown ch4 policy {self.policy!r} "
                f"(choices: {list(CHAPTER4_POLICY_CHOICES)})"
            )
        if self.cooling not in COOLING_CONFIGS:
            raise ConfigurationError(
                f"unknown cooling {self.cooling!r} "
                f"(choices: {sorted(COOLING_CONFIGS)})"
            )
        if self.ambient not in ("isolated", "integrated"):
            raise ConfigurationError(
                "ambient must be 'isolated' or 'integrated', "
                f"got {self.ambient!r}"
            )
        _check_copies(self.copies)

    def spec(self) -> RunSpec:
        """Lower to the campaign engine via the scenario engine."""
        scenario = grid_scenario(
            "ch4", self.mix, self.policy,
            cooling=self.cooling, ambient=self.ambient,
        )
        return scenario.spec(copies=self.copies)


@dataclass(frozen=True)
class ServerRequest:
    """One Chapter 5 server measurement cell."""

    TYPE: ClassVar[str] = "server"

    platform: str = "PE1950"
    mix: str = "W1"
    policy: str = "acg"
    copies: int = 2

    def __post_init__(self) -> None:
        if self.platform not in PLATFORMS:
            raise ConfigurationError(
                f"unknown platform {self.platform!r} "
                f"(choices: {sorted(PLATFORMS)})"
            )
        if self.policy not in CHAPTER5_POLICIES:
            raise ConfigurationError(
                f"unknown ch5 policy {self.policy!r} "
                f"(choices: {list(CHAPTER5_POLICIES)})"
            )
        _check_copies(self.copies)

    def spec(self) -> RunSpec:
        """Lower to the campaign engine via the scenario engine."""
        scenario = grid_scenario(
            "ch5", self.mix, self.policy, platform=self.platform
        )
        return scenario.spec(copies=self.copies)


@dataclass(frozen=True)
class CompareRequest:
    """Every Chapter 4 scheme on one mix (the Fig. 4.3 view)."""

    TYPE: ClassVar[str] = "compare"

    mix: str = "W1"
    cooling: str = "AOHS_1.5"
    copies: int = 2

    def __post_init__(self) -> None:
        if self.cooling not in COOLING_CONFIGS:
            raise ConfigurationError(
                f"unknown cooling {self.cooling!r} "
                f"(choices: {sorted(COOLING_CONFIGS)})"
            )
        _check_copies(self.copies)

    def cell_requests(self) -> list[SimulateRequest]:
        """The per-policy simulate cells, no-limit baseline first."""
        return [
            SimulateRequest(
                mix=self.mix, policy=policy,
                cooling=self.cooling, copies=self.copies,
            )
            for policy in CHAPTER4_POLICIES
        ]


@dataclass(frozen=True)
class CampaignRequest:
    """A named (mix x policy x variant) grid through the campaign engine.

    ``None`` axes take the grid's defaults; ``variants`` is the grid's
    third axis (coolings for ``ch4``, platforms for ``ch5``, scenario
    names or ``all`` for ``scenarios``).
    """

    TYPE: ClassVar[str] = "campaign"

    grid: str = "ch4"
    mixes: tuple[str, ...] | None = None
    policies: tuple[str, ...] | None = None
    variants: tuple[str, ...] | None = None
    copies: int = 2
    jobs: int = 1

    def __post_init__(self) -> None:
        if self.grid not in CAMPAIGN_GRIDS:
            raise ConfigurationError(
                f"unknown campaign grid {self.grid!r} "
                f"(have: {sorted(CAMPAIGN_GRIDS)})"
            )
        for axis in ("mixes", "policies", "variants"):
            value = getattr(self, axis)
            if value is not None:
                object.__setattr__(self, axis, _name_tuple(axis, value))
        _check_copies(self.copies)
        _check_jobs(self.jobs)

    def cells(self) -> tuple[NamedGrid, list[RunSpec]]:
        """Resolve defaults and expand into (grid, run specs)."""
        return expand_campaign(
            self.grid,
            mixes=self.mixes,
            policies=self.policies,
            variants=self.variants,
            copies=self.copies,
        )


@dataclass(frozen=True)
class ScenarioRequest:
    """Run registered library scenarios by name (``all`` expands)."""

    TYPE: ClassVar[str] = "scenarios"

    names: tuple[str, ...] = ()
    copies: int = 2
    jobs: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "names", _name_tuple("names", self.names))
        if not self.names:
            raise ConfigurationError("scenario request needs at least one name")
        _check_copies(self.copies)
        _check_jobs(self.jobs)

    def cells(self) -> tuple[NamedGrid, list[RunSpec]]:
        """Expand names (resolving ``all``) into (grid, run specs).

        Goes through the shared :func:`expand_campaign` path — the
        names are the scenarios grid's variant axis — so CLI, HTTP,
        and client scenario runs always name the same cells.
        """
        return expand_campaign(
            "scenarios", variants=self.names, copies=self.copies
        )


#: Every request class, keyed by its wire ``type`` tag.
REQUEST_TYPES: dict[str, type] = {
    cls.TYPE: cls
    for cls in (
        SimulateRequest,
        ServerRequest,
        CompareRequest,
        CampaignRequest,
        ScenarioRequest,
    )
}


def request_to_dict(request: Any) -> dict:
    """Serialize a request to its JSON-shaped dict (with ``type`` tag)."""
    if type(request) not in REQUEST_TYPES.values():
        raise ConfigurationError(
            f"not an API request object: {type(request).__name__}"
        )
    payload: dict[str, Any] = {"type": request.TYPE}
    for spec_field in fields(request):
        value = getattr(request, spec_field.name)
        if isinstance(value, tuple):
            value = list(value)
        payload[spec_field.name] = value
    return payload


def request_from_dict(raw: Mapping[str, Any]) -> Any:
    """Build a typed request from its dict form (inverse of to_dict)."""
    if not isinstance(raw, Mapping):
        raise ConfigurationError(
            f"request must be a JSON object, got {type(raw).__name__}"
        )
    type_tag = raw.get("type")
    cls = REQUEST_TYPES.get(type_tag)
    if cls is None:
        raise ConfigurationError(
            f"unknown request type {type_tag!r} "
            f"(choices: {sorted(REQUEST_TYPES)})"
        )
    known = {spec_field.name for spec_field in fields(cls)}
    data = {key: value for key, value in raw.items() if key != "type"}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"unknown {type_tag} request fields {sorted(unknown)} "
            f"(accepted: {sorted(known)})"
        )
    for key, value in data.items():
        if isinstance(value, list):
            data[key] = tuple(value)
    return cls(**data)
