"""``python -m repro serve`` — a stdlib HTTP JSON service over the API.

The service is a thin transport: every route builds the same typed
request object the CLI and :class:`~repro.api.client.ReproClient` use,
runs it through one shared client (and therefore one shared
ResultStore), and responds with the canonical envelope JSON — so a
``curl`` and a ``--json`` CLI call for the same warm request return
byte-identical bodies.

Routes (v1):

- ``GET  /v1/scenarios``            — scenario-library listing
  (``?kind=ch4|ch5`` and ``?tag=...`` filter).
- ``GET|POST /v1/simulate``         — one Chapter 4 cell.
- ``GET|POST /v1/server``           — one Chapter 5 cell.
- ``GET|POST /v1/compare``          — every ch4 scheme on one mix.
- ``GET|POST /v1/campaign``         — a named grid.
- ``GET|POST /v1/scenarios/run``    — registered scenarios by name.
- ``GET  /v1/worker/health``        — fleet heartbeat probe (status,
  pid, wire version, runnable spec kinds).
- ``POST /v1/worker/run``           — execute wire-format cells for a
  :class:`~repro.cluster.HttpWorkerBackend` coordinator, returning
  encoded payloads with cache provenance.  Cells run against this
  worker's own store stack, so repeat dispatches are cache hits here
  even before the coordinator merges payloads into its shared store.
  With ``window_slice`` in the body each cell runs at most that many
  DTM windows, resuming from the coordinator-supplied ``resume``
  checkpoints; unfinished cells come back as ``partial`` entries
  carrying a fresh :class:`~repro.engine.EngineState`.
- ``GET  /v1/progress``             — live progress snapshots of the
  engine runs executing in this process (``?key=`` filters to one
  cell), fed by the engines' progress observers.  Covers runs started
  by any route of this service *and* sliced worker cells, so a
  coordinator can watch its fleet warm up cell by cell.

GET passes axes as query parameters (comma-separated lists, e.g.
``?grid=ch4&mixes=W1,W2&policies=ts,acg``); POST passes a JSON object
(the ``type`` tag is implied by the route).  Library errors return
``400 {"schema_version": ..., "error": ...}``; unknown routes 404.

The server is threaded, so concurrent clients share the process-wide
memory memo and the on-disk cache: any cell computed once is served
from cache to every later request.  Identical *simultaneous* cold
requests are single-flighted: the default store stack coalesces them
(:class:`~repro.campaign.stores.SingleFlightStore`), so N handler
threads asking for the same cold cell trigger exactly one compute —
the others wait and answer with the leader's payload, their envelopes
marked ``provenance.single_flight = "coalesced"``.
"""

from __future__ import annotations

import json
import os
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qsl, urlparse

from repro.api.client import ReproClient
from repro.api.envelope import (
    SCHEMA_VERSION,
    dumps_canonical,
    results_document,
    scenarios_document,
)
from repro.api.requests import request_from_dict
from repro.campaign import spec_kinds_with_types
from repro.cluster.wire import WIRE_VERSION, cell_from_wire
from repro.engine.progress import PROGRESS
from repro.errors import ConfigurationError, ReproError

#: Query parameters parsed as integers.
_INT_FIELDS = frozenset({"copies", "jobs"})
#: Query parameters parsed as comma-separated lists.
_LIST_FIELDS = frozenset({"mixes", "policies", "variants", "names"})
#: Route path -> request ``type`` tag.
_RUN_ROUTES = {
    "/v1/simulate": "simulate",
    "/v1/server": "server",
    "/v1/compare": "compare",
    "/v1/campaign": "campaign",
    "/v1/scenarios/run": "scenarios",
}


def _params_from_query(query: str) -> dict:
    """Decode query parameters into request-field values."""
    params: dict = {}
    for key, value in parse_qsl(query, keep_blank_values=True):
        if key in _INT_FIELDS:
            try:
                params[key] = int(value)
            except ValueError:
                raise ConfigurationError(
                    f"query parameter {key!r} must be an integer, "
                    f"got {value!r}"
                )
        elif key in _LIST_FIELDS:
            params[key] = [
                item.strip() for item in value.split(",") if item.strip()
            ]
        else:
            params[key] = value
    return params


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the shared :class:`ReproClient`."""

    server: "ReproService"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _respond(self, status: int, document: dict | str) -> None:
        text = document if isinstance(document, str) else dumps_canonical(document)
        body = (text + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._respond(
            status, {"schema_version": SCHEMA_VERSION, "error": message}
        )

    def _read_json_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except ValueError as error:
            raise ConfigurationError(f"request body is not valid JSON: {error}")
        if not isinstance(body, dict):
            raise ConfigurationError("request body must be a JSON object")
        return body

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        try:
            if url.path == "/v1/scenarios":
                params = _params_from_query(url.query)
                self._list_scenarios(params)
            elif url.path == "/v1/progress":
                self._progress(_params_from_query(url.query))
            elif url.path == "/v1/worker/health":
                self._worker_health()
            elif url.path == "/v1/worker/run":
                self._error(405, "use POST for /v1/worker/run")
            elif url.path in _RUN_ROUTES:
                params = _params_from_query(url.query)
                self._run(_RUN_ROUTES[url.path], params)
            else:
                self._error(404, f"unknown route {url.path!r}")
        except ReproError as error:
            self._error(400, str(error))

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        try:
            if url.path in _RUN_ROUTES:
                self._run(_RUN_ROUTES[url.path], self._read_json_body())
            elif url.path == "/v1/worker/run":
                self._worker_run(self._read_json_body())
            elif url.path == "/v1/worker/health":
                self._error(405, "use GET for /v1/worker/health")
            elif url.path == "/v1/progress":
                self._error(405, "use GET for /v1/progress")
            elif url.path == "/v1/scenarios":
                self._error(405, "use GET for /v1/scenarios")
            else:
                self._error(404, f"unknown route {url.path!r}")
        except ReproError as error:
            self._error(400, str(error))

    # -- handlers ----------------------------------------------------------

    def _list_scenarios(self, params: dict) -> None:
        unknown = set(params) - {"kind", "tag"}
        if unknown:
            raise ConfigurationError(
                f"unknown scenario-listing parameters {sorted(unknown)}"
            )
        kind = params.get("kind")
        if kind is not None and kind not in ("ch4", "ch5"):
            raise ConfigurationError(
                f"kind must be 'ch4' or 'ch5', got {kind!r}"
            )
        descriptors = self.server.client.list_scenarios(
            kind=kind, tag=params.get("tag")
        )
        self._respond(200, scenarios_document(descriptors))

    def _progress(self, params: dict) -> None:
        """Live engine-run snapshots from the process-wide broker."""
        unknown = set(params) - {"key"}
        if unknown:
            raise ConfigurationError(
                f"unknown progress parameters {sorted(unknown)}"
            )
        self._respond(200, {
            "schema_version": SCHEMA_VERSION,
            "runs": PROGRESS.snapshot(params.get("key")),
        })

    def _worker_health(self) -> None:
        """The fleet heartbeat probe: alive, and what this worker can run."""
        self._respond(200, {
            "schema_version": SCHEMA_VERSION,
            "status": "ok",
            "role": self.server.role,
            "pid": os.getpid(),
            "wire_version": WIRE_VERSION,
            "kinds": list(spec_kinds_with_types()),
        })

    def _worker_run(self, body: dict) -> None:
        """Execute wire-format cells against this worker's own store.

        The response carries each cell's encoded payload plus the same
        hit/compute-seconds provenance a local run would record, so the
        coordinator's envelopes are indistinguishable from local ones.
        """
        cells = body.get("cells")
        if not isinstance(cells, list) or not cells:
            raise ConfigurationError(
                "worker run body needs a non-empty 'cells' list"
            )
        unknown = set(body) - {"cells", "window_slice", "resume"}
        if unknown:
            raise ConfigurationError(
                f"unknown worker run fields {sorted(unknown)}"
            )
        window_slice = body.get("window_slice")
        if window_slice is not None and (
            not isinstance(window_slice, int) or window_slice < 1
        ):
            raise ConfigurationError(
                "window_slice must be a positive integer"
            )
        resume = body.get("resume") or {}
        if not isinstance(resume, dict):
            raise ConfigurationError(
                "worker run 'resume' must map cell keys to engine states"
            )
        results = []
        for raw in cells:
            spec = cell_from_wire(raw)
            if window_slice is None:
                payload, hit, seconds = self.server.client.run_cell_payload(spec)
                results.append({
                    "key": spec.key(),
                    "kind": spec.kind,
                    "payload": payload,
                    "cache": "hit" if hit else "miss",
                    "compute_seconds": round(seconds, 6),
                })
            else:
                results.append(
                    self.server.client.run_cell_slice(
                        spec, window_slice, resume.get(spec.key())
                    )
                )
        self._respond(
            200, {"schema_version": SCHEMA_VERSION, "results": results}
        )

    def _run(self, type_tag: str, params: dict) -> None:
        params.pop("type", None)
        request = request_from_dict({"type": type_tag, **params})
        if getattr(request, "jobs", 1) != 1:
            # Forking a worker pool inside a handler thread of a
            # multithreaded server risks child deadlocks; HTTP callers
            # get parallelism by issuing concurrent requests against
            # the shared cache instead.
            raise ConfigurationError(
                "jobs is not supported over HTTP; issue concurrent "
                "requests instead (the cache is shared)"
            )
        client = self.server.client
        if type_tag == "simulate":
            self._respond(200, client.simulate(request).to_json())
        elif type_tag == "server":
            self._respond(200, client.server(request).to_json())
        elif type_tag == "compare":
            self._respond(200, results_document(client.compare(request)))
        elif type_tag == "campaign":
            self._respond(
                200, results_document(list(client.run_campaign(request)))
            )
        else:  # scenarios
            self._respond(
                200, results_document(list(client.run_scenarios(request)))
            )


class ReproService(ThreadingHTTPServer):
    """Threaded HTTP server exposing the client API.

    ``port=0`` binds an ephemeral port; read it back from
    :attr:`port` (or pass ``port_file`` to :func:`serve`).
    """

    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        client: ReproClient | None = None,
        verbose: bool = False,
        role: str = "api",
    ) -> None:
        self.client = client if client is not None else ReproClient()
        self.verbose = verbose
        #: "api" for the front service, "worker" for fleet members.
        #: Purely informational — every instance serves all routes —
        #: but surfaced in banners and health documents so an operator
        #: can tell what a port was started as.
        self.role = role
        super().__init__((host, port), _Handler)

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` requests)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running service."""
        return f"http://{self.server_address[0]}:{self.port}"


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    client: ReproClient | None = None,
    port_file: str | None = None,
    verbose: bool = False,
    role: str = "api",
) -> int:
    """Run the service until interrupted (the ``serve``/``worker`` subcommands).

    ``port_file`` writes the bound port to a file once listening —
    the hook CI, tests, and :class:`~repro.cluster.LocalFleet` use
    with ``--port 0``.  ``role="worker"`` only changes the banner and
    health document; fleet workers serve the full route table.
    """
    service = ReproService(host, port, client=client, verbose=verbose, role=role)
    try:
        if port_file:
            Path(port_file).write_text(f"{service.port}\n")
        label = "API" if role == "api" else role
        print(
            f"serving repro {label} (schema {SCHEMA_VERSION}) on {service.url}",
            flush=True,
        )
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.server_close()
    return 0
