"""``python -m repro serve`` — a stdlib HTTP JSON service over the API.

The service is a thin transport: every route builds the same typed
request object the CLI and :class:`~repro.api.client.ReproClient` use,
runs it through one shared client (and therefore one shared
ResultStore), and responds with the canonical envelope JSON — so a
``curl`` and a ``--json`` CLI call for the same warm request return
byte-identical bodies.

Routes (v1):

- ``GET  /v1/scenarios``            — scenario-library listing
  (``?kind=ch4|ch5`` and ``?tag=...`` filter).
- ``GET|POST /v1/simulate``         — one Chapter 4 cell.
- ``GET|POST /v1/server``           — one Chapter 5 cell.
- ``GET|POST /v1/compare``          — every ch4 scheme on one mix.
- ``GET|POST /v1/campaign``         — a named grid.
- ``GET|POST /v1/scenarios/run``    — registered scenarios by name.
- ``GET  /v1/healthz``              — liveness: version, uptime, queue
  depth, and backend kind (always mounted, jobs enabled or not).
- ``GET  /metrics``                 — the service's metrics registry as
  Prometheus-style text (``?format=json`` for a JSON document):
  request-latency histograms per route, queue depth, per-tenant job
  latency, cache hit/miss counters, fleet health.
- ``POST /v1/jobs``                 — submit a job (any typed request)
  with ``tenant``/``priority``; 429 with ``retry_after_s`` when the
  tenant's quota or rate limit refuses it.  Requires ``serve --jobs``.
- ``GET  /v1/jobs``                 — list jobs (``?tenant=`` filters).
- ``GET  /v1/jobs/<id>``            — status with live per-cell
  progress fed by the PROGRESS broker.
- ``POST /v1/jobs/<id>/cancel``     — cancel (immediate while queued,
  at the next window-slice boundary while running).
- ``GET  /v1/jobs/<id>/result``     — the completed job's result
  document (409 while not completed); warm results are byte-identical
  to the equivalent direct CLI/HTTP call.
- ``GET  /v1/worker/health``        — fleet heartbeat probe (status,
  pid, wire version, runnable spec kinds).
- ``POST /v1/worker/run``           — execute wire-format cells for a
  :class:`~repro.cluster.HttpWorkerBackend` coordinator, returning
  encoded payloads with cache provenance.  Cells run against this
  worker's own store stack, so repeat dispatches are cache hits here
  even before the coordinator merges payloads into its shared store.
  With ``window_slice`` in the body each cell runs at most that many
  DTM windows, resuming from the coordinator-supplied ``resume``
  checkpoints; unfinished cells come back as ``partial`` entries
  carrying a fresh :class:`~repro.engine.EngineState`.
- ``GET  /v1/progress``             — live progress snapshots of the
  engine runs executing in this process (``?key=`` filters to one
  cell), fed by the engines' progress observers.  Covers runs started
  by any route of this service *and* sliced worker cells, so a
  coordinator can watch its fleet warm up cell by cell.

GET passes axes as query parameters (comma-separated lists, e.g.
``?grid=ch4&mixes=W1,W2&policies=ts,acg``); POST passes a JSON object
(the ``type`` tag is implied by the route).  Library errors return
``400 {"schema_version": ..., "error": ...}``; unknown routes 404;
refusals carry machine-readable fields (``retry_after_s``, ``reason``).

Concurrency is bounded: the server remains threaded (cheap routes and
status polls always answer), but the compute routes (the run routes and
``/v1/worker/run``) share ``max_concurrent_runs`` slots.  A burst of
cold campaign submits beyond the bound gets a structured 429 with a
``Retry-After`` header instead of forking unbounded work — submit
through ``/v1/jobs`` to queue instead of racing for slots.  Identical
*simultaneous* cold requests within the bound are still single-flighted
by the store stack (:class:`~repro.campaign.stores.SingleFlightStore`).

``serve`` handles SIGTERM by draining: the jobs scheduler checkpoints
its in-flight window slice and requeues the job (so a restart resumes
it warm), then the HTTP loop exits cleanly.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qsl, urlparse

from repro import __version__
from repro.api.client import ReproClient
from repro.api.envelope import (
    SCHEMA_VERSION,
    dumps_canonical,
    results_document,
    scenarios_document,
)
from repro.api.requests import request_from_dict
from repro.campaign import spec_kinds_with_types
from repro.cluster.wire import WIRE_VERSION, cell_from_wire
from repro.engine.progress import PROGRESS
from repro.errors import ConfigurationError, ReproError
from repro.jobs.tenancy import QuotaExceeded
from repro.obs.log import LOG
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.slo import slo_document
from repro.obs.trace import TRACE_HEADER, TRACER, chrome_trace

#: Query parameters parsed as integers.
_INT_FIELDS = frozenset({"copies", "jobs"})
#: Query parameters parsed as comma-separated lists.
_LIST_FIELDS = frozenset({"mixes", "policies", "variants", "names"})
#: Route path -> request ``type`` tag.
_RUN_ROUTES = {
    "/v1/simulate": "simulate",
    "/v1/server": "server",
    "/v1/compare": "compare",
    "/v1/campaign": "campaign",
    "/v1/scenarios/run": "scenarios",
}


def _params_from_query(query: str) -> dict:
    """Decode query parameters into request-field values."""
    params: dict = {}
    for key, value in parse_qsl(query, keep_blank_values=True):
        if key in _INT_FIELDS:
            try:
                params[key] = int(value)
            except ValueError:
                raise ConfigurationError(
                    f"query parameter {key!r} must be an integer, "
                    f"got {value!r}"
                )
        elif key in _LIST_FIELDS:
            params[key] = [
                item.strip() for item in value.split(",") if item.strip()
            ]
        else:
            params[key] = value
    return params


def _route_label(path: str) -> str:
    """A bounded-cardinality route label for the request histogram."""
    if path in _RUN_ROUTES:
        return path
    if path in (
        "/v1/scenarios", "/v1/progress", "/v1/healthz", "/metrics",
        "/v1/worker/health", "/v1/worker/run", "/v1/jobs", "/v1/slo",
    ):
        return path
    if path.startswith("/v1/trace/"):
        return "/v1/trace/<id>"
    if path.startswith("/v1/jobs/"):
        suffix = path.rsplit("/", 1)[-1]
        if suffix in ("cancel", "result"):
            return f"/v1/jobs/<id>/{suffix}"
        return "/v1/jobs/<id>"
    return "other"


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the shared :class:`ReproClient`."""

    server: "ReproService"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _respond(
        self,
        status: int,
        document: dict | str,
        *,
        content_type: str = "application/json",
        headers: dict | None = None,
    ) -> None:
        text = document if isinstance(document, str) else dumps_canonical(document)
        body = (text + "\n").encode() if not text.endswith("\n") else text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self,
        status: int,
        message: str,
        *,
        extra: dict | None = None,
        retry_after_s: float | None = None,
    ) -> None:
        document = {"schema_version": SCHEMA_VERSION, "error": message}
        document.update(extra or {})
        headers = None
        if retry_after_s is not None:
            document["retry_after_s"] = retry_after_s
            headers = {"Retry-After": str(max(1, round(retry_after_s)))}
        self._respond(status, document, headers=headers)

    def _read_json_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except ValueError as error:
            raise ConfigurationError(f"request body is not valid JSON: {error}")
        if not isinstance(body, dict):
            raise ConfigurationError("request body must be a JSON object")
        return body

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        url = urlparse(self.path)
        # Adopt the caller's trace context (if any) for the whole
        # request, and wrap the route in a server-side span, so
        # engine/job/cell spans opened on this handler thread nest
        # under the remote caller's span.
        remote = TRACER.parse_header(self.headers.get(TRACE_HEADER))
        if remote is not None and TRACER.enabled:
            with TRACER.activate(*remote):
                with TRACER.span(
                    "http", route=_route_label(url.path), method=method
                ):
                    self._dispatch_inner(method, url)
        elif TRACER.enabled:
            with TRACER.span(
                "http", route=_route_label(url.path), method=method
            ):
                self._dispatch_inner(method, url)
        else:
            self._dispatch_inner(method, url)

    def _dispatch_inner(self, method: str, url) -> None:
        started = time.perf_counter()
        try:
            if method == "GET":
                self._route_get(url)
            else:
                self._route_post(url)
        except QuotaExceeded as error:
            self._error(
                429,
                str(error),
                extra={"reason": error.reason, "tenant": error.tenant},
                retry_after_s=error.retry_after_s,
            )
        except ReproError as error:
            self._error(400, str(error))
        finally:
            self.server.metrics.observe(
                "repro_http_request_seconds",
                "HTTP request latency per route",
                time.perf_counter() - started,
                route=_route_label(url.path),
                method=method,
            )

    def _route_get(self, url) -> None:
        if url.path == "/v1/scenarios":
            params = _params_from_query(url.query)
            self._list_scenarios(params)
        elif url.path == "/v1/progress":
            self._progress(_params_from_query(url.query))
        elif url.path == "/v1/healthz":
            self._healthz()
        elif url.path == "/metrics":
            self._metrics(_params_from_query(url.query))
        elif url.path == "/v1/worker/health":
            self._worker_health()
        elif url.path == "/v1/worker/run":
            self._error(405, "use POST for /v1/worker/run")
        elif url.path == "/v1/jobs":
            self._jobs_list(_params_from_query(url.query))
        elif url.path.startswith("/v1/jobs/"):
            self._jobs_get(url.path)
        elif url.path == "/v1/slo":
            self._slo()
        elif url.path.startswith("/v1/trace/"):
            self._trace(url.path)
        elif url.path in _RUN_ROUTES:
            params = _params_from_query(url.query)
            self._run(_RUN_ROUTES[url.path], params)
        else:
            self._error(404, f"unknown route {url.path!r}")

    def _route_post(self, url) -> None:
        if url.path in _RUN_ROUTES:
            self._run(_RUN_ROUTES[url.path], self._read_json_body())
        elif url.path == "/v1/worker/run":
            self._worker_run(self._read_json_body())
        elif url.path == "/v1/jobs":
            self._jobs_submit(self._read_json_body())
        elif url.path.startswith("/v1/jobs/") and url.path.endswith("/cancel"):
            self._jobs_cancel(url.path)
        elif url.path == "/v1/worker/health":
            self._error(405, "use GET for /v1/worker/health")
        elif url.path in (
            "/v1/progress", "/v1/scenarios", "/v1/healthz", "/metrics",
            "/v1/slo",
        ) or url.path.startswith("/v1/trace/"):
            self._error(405, f"use GET for {url.path}")
        else:
            self._error(404, f"unknown route {url.path!r}")

    # -- handlers ----------------------------------------------------------

    def _list_scenarios(self, params: dict) -> None:
        unknown = set(params) - {"kind", "tag"}
        if unknown:
            raise ConfigurationError(
                f"unknown scenario-listing parameters {sorted(unknown)}"
            )
        kind = params.get("kind")
        if kind is not None and kind not in ("ch4", "ch5"):
            raise ConfigurationError(
                f"kind must be 'ch4' or 'ch5', got {kind!r}"
            )
        descriptors = self.server.client.list_scenarios(
            kind=kind, tag=params.get("tag")
        )
        self._respond(200, scenarios_document(descriptors))

    def _progress(self, params: dict) -> None:
        """Live engine-run snapshots from the process-wide broker."""
        unknown = set(params) - {"key"}
        if unknown:
            raise ConfigurationError(
                f"unknown progress parameters {sorted(unknown)}"
            )
        self._respond(200, {
            "schema_version": SCHEMA_VERSION,
            "runs": PROGRESS.snapshot(params.get("key")),
        })

    def _healthz(self) -> None:
        """Liveness + queue summary (mounted with or without --jobs)."""
        jobs = self.server.jobs
        self._respond(200, {
            "schema_version": SCHEMA_VERSION,
            "status": "ok",
            "role": self.server.role,
            "pid": os.getpid(),
            "version": __version__,
            "wire_version": WIRE_VERSION,
            "uptime_s": round(self.server.uptime_s(), 3),
            "jobs": None if jobs is None else jobs.health(),
        })

    def _metrics(self, params: dict) -> None:
        """The metrics registry, as Prometheus text or JSON."""
        fmt = params.get("format", "text")
        if fmt not in ("text", "json"):
            raise ConfigurationError(
                f"metrics format must be 'text' or 'json', got {fmt!r}"
            )
        jobs = self.server.jobs
        if jobs is not None:
            jobs.publish_usage_metrics()
        self.server.metrics.gauge_set(
            "repro_uptime_seconds", "Seconds since service start",
            round(self.server.uptime_s(), 3),
        )
        if fmt == "json":
            self._respond(200, {
                "schema_version": SCHEMA_VERSION,
                "metrics": self.server.metrics.render_json(),
            })
        else:
            self._respond(
                200,
                self.server.metrics.render_text(),
                content_type="text/plain; version=0.0.4",
            )

    def _slo(self) -> None:
        """Current SLO verdicts from the service's metrics registry."""
        jobs = self.server.jobs
        if jobs is not None:
            jobs.publish_usage_metrics()
        document = slo_document(self.server.metrics)
        document["schema_version"] = SCHEMA_VERSION
        self._respond(200, document)

    def _trace(self, path: str) -> None:
        """One trace's spans from the in-process ring.

        ``?format=chrome`` (the default) answers with a Chrome
        trace-event document; ``?format=spans`` with the raw span
        dicts.  Unknown trace ids answer 404 — the ring is bounded, so
        old traces age out.
        """
        trace_id = path[len("/v1/trace/"):]
        url = urlparse(self.path)
        params = _params_from_query(url.query)
        fmt = params.get("format", "chrome")
        if fmt not in ("chrome", "spans"):
            raise ConfigurationError(
                f"trace format must be 'chrome' or 'spans', got {fmt!r}"
            )
        spans = TRACER.spans(trace_id)
        if not spans:
            self._error(404, f"no spans retained for trace {trace_id!r}")
            return
        if fmt == "spans":
            self._respond(200, {
                "schema_version": SCHEMA_VERSION,
                "trace_id": trace_id,
                "spans": [span.to_dict() for span in spans],
            })
            return
        self._respond(200, chrome_trace(spans))

    # -- jobs --------------------------------------------------------------

    def _jobs_manager(self):
        jobs = self.server.jobs
        if jobs is None:
            self._error(
                503,
                "the jobs service is not enabled on this instance "
                "(start it with 'repro serve --jobs')",
                extra={"reason": "jobs_disabled"},
            )
            return None
        return jobs

    def _jobs_submit(self, body: dict) -> None:
        jobs = self._jobs_manager()
        if jobs is None:
            return
        self._respond(202, jobs.submit_body(body))

    def _jobs_list(self, params: dict) -> None:
        jobs = self._jobs_manager()
        if jobs is None:
            return
        unknown = set(params) - {"tenant"}
        if unknown:
            raise ConfigurationError(
                f"unknown job-listing parameters {sorted(unknown)}"
            )
        self._respond(200, jobs.list_document(params.get("tenant")))

    def _job_id_from(self, path: str, suffix: str = "") -> str | None:
        parts = path.split("/")
        # /v1/jobs/<id> or /v1/jobs/<id>/<suffix>
        expected = 4 if not suffix else 5
        if len(parts) != expected or (suffix and parts[4] != suffix):
            self._error(404, f"unknown route {path!r}")
            return None
        return parts[3]

    def _jobs_get(self, path: str) -> None:
        jobs = self._jobs_manager()
        if jobs is None:
            return
        if path.endswith("/result"):
            job_id = self._job_id_from(path, "result")
            if job_id is None:
                return
            status, document = jobs.result_document(job_id)
            self._respond(status, document)
            return
        job_id = self._job_id_from(path)
        if job_id is None:
            return
        document = jobs.status_document(job_id)
        if document is None:
            self._error(404, f"unknown job {job_id!r}")
        else:
            self._respond(200, document)

    def _jobs_cancel(self, path: str) -> None:
        jobs = self._jobs_manager()
        if jobs is None:
            return
        job_id = self._job_id_from(path, "cancel")
        if job_id is None:
            return
        self._respond(200, jobs.cancel(job_id))

    # -- workers / runs ----------------------------------------------------

    def _worker_health(self) -> None:
        """The fleet heartbeat probe: alive, and what this worker can run."""
        self._respond(200, {
            "schema_version": SCHEMA_VERSION,
            "status": "ok",
            "role": self.server.role,
            "pid": os.getpid(),
            "wire_version": WIRE_VERSION,
            "kinds": list(spec_kinds_with_types()),
        })

    def _reject_over_capacity(self) -> bool:
        """429 when every compute slot is busy; True when rejected."""
        if self.server.acquire_run_slot():
            return False
        self._error(
            429,
            f"all {self.server.max_concurrent_runs} compute slots are "
            "busy; retry, or queue the work through POST /v1/jobs",
            extra={"reason": "capacity"},
            retry_after_s=1.0,
        )
        return True

    def _worker_run(self, body: dict) -> None:
        """Execute wire-format cells against this worker's own store.

        The response carries each cell's encoded payload plus the same
        hit/compute-seconds provenance a local run would record, so the
        coordinator's envelopes are indistinguishable from local ones.
        """
        cells = body.get("cells")
        if not isinstance(cells, list) or not cells:
            raise ConfigurationError(
                "worker run body needs a non-empty 'cells' list"
            )
        unknown = set(body) - {"cells", "window_slice", "resume", "gangs"}
        if unknown:
            raise ConfigurationError(
                f"unknown worker run fields {sorted(unknown)}"
            )
        window_slice = body.get("window_slice")
        if window_slice is not None and (
            not isinstance(window_slice, int) or window_slice < 1
        ):
            raise ConfigurationError(
                "window_slice must be a positive integer"
            )
        resume = body.get("resume") or {}
        if not isinstance(resume, dict):
            raise ConfigurationError(
                "worker run 'resume' must map cell keys to engine states"
            )
        gangs = body.get("gangs") or []
        if not isinstance(gangs, list) or not all(
            isinstance(group, list)
            and len(group) >= 2
            and all(isinstance(key, str) for key in group)
            for group in gangs
        ):
            raise ConfigurationError(
                "worker run 'gangs' must be a list of >=2-element "
                "cell-key lists"
            )
        if self._reject_over_capacity():
            return
        try:
            specs = [cell_from_wire(raw) for raw in cells]
            by_key = {spec.key(): spec for spec in specs}
            ganged: set[str] = set()
            results = []
            for group in gangs:
                if any(key not in by_key for key in group) or ganged & set(group):
                    raise ConfigurationError(
                        "worker run 'gangs' entries must be disjoint "
                        "subsets of the request's cell keys"
                    )
                ganged.update(group)
                results.extend(
                    self.server.client.run_cell_gang(
                        [by_key[key] for key in group], window_slice, resume
                    )
                )
            for spec in specs:
                if spec.key() in ganged:
                    continue
                if window_slice is None:
                    payload, hit, seconds = self.server.client.run_cell_payload(spec)
                    results.append({
                        "key": spec.key(),
                        "kind": spec.kind,
                        "payload": payload,
                        "cache": "hit" if hit else "miss",
                        "compute_seconds": round(seconds, 6),
                    })
                else:
                    results.append(
                        self.server.client.run_cell_slice(
                            spec, window_slice, resume.get(spec.key())
                        )
                    )
        finally:
            self.server.release_run_slot()
        self._respond(
            200, {"schema_version": SCHEMA_VERSION, "results": results}
        )

    def _run(self, type_tag: str, params: dict) -> None:
        params.pop("type", None)
        request = request_from_dict({"type": type_tag, **params})
        if getattr(request, "jobs", 1) != 1:
            # Forking a worker pool inside a handler thread of a
            # multithreaded server risks child deadlocks; HTTP callers
            # get parallelism by issuing concurrent requests against
            # the shared cache instead.
            raise ConfigurationError(
                "jobs is not supported over HTTP; issue concurrent "
                "requests instead (the cache is shared)"
            )
        if self._reject_over_capacity():
            return
        try:
            client = self.server.client
            if type_tag == "simulate":
                self._respond(200, client.simulate(request).to_json())
            elif type_tag == "server":
                self._respond(200, client.server(request).to_json())
            elif type_tag == "compare":
                self._respond(200, results_document(client.compare(request)))
            elif type_tag == "campaign":
                self._respond(
                    200, results_document(list(client.run_campaign(request)))
                )
            else:  # scenarios
                self._respond(
                    200, results_document(list(client.run_scenarios(request)))
                )
        finally:
            self.server.release_run_slot()


class ReproService(ThreadingHTTPServer):
    """Threaded HTTP server exposing the client API.

    ``port=0`` binds an ephemeral port; read it back from
    :attr:`port` (or pass ``port_file`` to :func:`serve`).

    ``jobs`` mounts a :class:`~repro.jobs.JobsManager` under
    ``/v1/jobs`` (the caller starts/stops it — normally :func:`serve`).
    ``max_concurrent_runs`` bounds the simultaneously executing compute
    routes; excess requests get a structured 429.
    """

    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        client: ReproClient | None = None,
        verbose: bool = False,
        role: str = "api",
        jobs=None,
        max_concurrent_runs: int | None = None,
    ) -> None:
        self.client = client if client is not None else ReproClient()
        self.verbose = verbose
        #: "api" for the front service, "worker" for fleet members.
        #: Purely informational — every instance serves all routes —
        #: but surfaced in banners and health documents so an operator
        #: can tell what a port was started as.
        self.role = role
        #: The mounted JobsManager (None = jobs routes answer 503).
        self.jobs = jobs
        #: One registry serves /metrics; shared with the jobs manager
        #: (which defaults to the process-wide METRICS), so engine,
        #: store, cluster, and scheduler series land in one scrape.
        self.metrics: MetricsRegistry = (
            jobs.metrics if jobs is not None else METRICS
        )
        if max_concurrent_runs is None:
            max_concurrent_runs = max(2, os.cpu_count() or 2)
        if max_concurrent_runs < 1:
            raise ConfigurationError("max_concurrent_runs must be >= 1")
        self.max_concurrent_runs = max_concurrent_runs
        self._run_slots = threading.BoundedSemaphore(max_concurrent_runs)
        self._started_monotonic = time.monotonic()
        super().__init__((host, port), _Handler)

    def uptime_s(self) -> float:
        """Seconds since this service object was created."""
        return time.monotonic() - self._started_monotonic

    def acquire_run_slot(self) -> bool:
        """Take a compute slot without blocking; False when saturated."""
        return self._run_slots.acquire(blocking=False)

    def release_run_slot(self) -> None:
        """Return a compute slot."""
        self._run_slots.release()

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` requests)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running service."""
        return f"http://{self.server_address[0]}:{self.port}"


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    client: ReproClient | None = None,
    port_file: str | None = None,
    verbose: bool = False,
    role: str = "api",
    jobs=None,
    max_concurrent_runs: int | None = None,
) -> int:
    """Run the service until interrupted (the ``serve``/``worker`` subcommands).

    ``port_file`` writes the bound port to a file once listening —
    the hook CI, tests, and :class:`~repro.cluster.LocalFleet` use
    with ``--port 0``.  ``role="worker"`` only changes the banner and
    health document; fleet workers serve the full route table.

    With ``jobs`` (a :class:`~repro.jobs.JobsManager`), persisted jobs
    are recovered and the scheduler starts before the listener; SIGTERM
    (and Ctrl-C) drain — the in-flight window slice checkpoints and its
    job requeues — before the process exits, so ``kill <pid>`` never
    loses acknowledged work.
    """
    service = ReproService(
        host, port, client=client, verbose=verbose, role=role,
        jobs=jobs, max_concurrent_runs=max_concurrent_runs,
    )
    draining = threading.Event()

    def _drain_and_shutdown() -> None:
        if jobs is not None:
            jobs.stop(drain=True)
        service.shutdown()

    def _on_sigterm(signum, frame) -> None:
        if draining.is_set():
            return
        draining.set()
        LOG.info(
            "service.draining", "sigterm: draining in-flight slices",
            role=role,
        )
        # shutdown() must not run on the thread inside serve_forever()
        # (it would deadlock waiting for itself), and a signal handler
        # runs exactly there — hand the drain to a helper thread.
        threading.Thread(
            target=_drain_and_shutdown, name="repro-drain", daemon=True
        ).start()

    try:
        if jobs is not None:
            recovered = jobs.start()
            if recovered["requeued"]:
                LOG.info(
                    "service.recovered",
                    f"recovered {recovered['requeued']} queued/running "
                    f"job(s) from disk",
                    requeued=recovered["requeued"],
                )
        try:
            signal.signal(signal.SIGTERM, _on_sigterm)
        except ValueError:
            pass  # not the main thread (tests drive serve() directly)
        if port_file:
            Path(port_file).write_text(f"{service.port}\n")
        label = "API" if role == "api" else role
        extras = " with jobs" if jobs is not None else ""
        LOG.info(
            "service.listening",
            f"serving repro {label}{extras} (schema {SCHEMA_VERSION}) "
            f"on {service.url}",
            role=role,
            url=service.url,
            jobs=jobs is not None,
        )
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if jobs is not None and not draining.is_set():
            jobs.stop(drain=True)
        service.server_close()
    return 0
