"""Stable typed client API for the reproduction.

This package is the supported programmatic surface: everything else
(:mod:`repro.analysis.specs`, :mod:`repro.campaign`, the simulators)
may shift between PRs, but requests, envelopes, and the client here
only change with the envelope ``schema_version`` rules.

Three-line quickstart::

    from repro.api import ReproClient, SimulateRequest

    client = ReproClient()
    envelope = client.simulate(SimulateRequest(mix="W1", policy="acg"))

The same surface is exposed over HTTP by ``python -m repro serve``
(see :mod:`repro.api.service`) and echoed by every CLI ``--json`` flag.
"""

from repro.api.client import ReproClient, metrics_from_result
from repro.api.envelope import (
    SCHEMA_VERSION,
    Provenance,
    ResultEnvelope,
    check_schema_compatible,
    dumps_canonical,
    results_document,
    scenarios_document,
    schema_major,
)
from repro.api.requests import (
    REQUEST_TYPES,
    CampaignRequest,
    CompareRequest,
    ScenarioRequest,
    ServerRequest,
    SimulateRequest,
    request_from_dict,
    request_to_dict,
)
from repro.api.service import ReproService, serve

__all__ = [
    "SCHEMA_VERSION",
    "CampaignRequest",
    "CompareRequest",
    "Provenance",
    "REQUEST_TYPES",
    "ReproClient",
    "ReproService",
    "ResultEnvelope",
    "ScenarioRequest",
    "ServerRequest",
    "SimulateRequest",
    "check_schema_compatible",
    "dumps_canonical",
    "metrics_from_result",
    "request_from_dict",
    "request_to_dict",
    "results_document",
    "scenarios_document",
    "schema_major",
    "serve",
]
