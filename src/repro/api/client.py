"""The :class:`ReproClient` façade — the stable programmatic surface.

A client wraps one :class:`~repro.campaign.ResultStore` (the default
shared memory+disk stack unless told otherwise) and turns typed request
objects into versioned :class:`~repro.api.envelope.ResultEnvelope`
records.  Every run flows through the scenario and campaign engines, so
client calls, CLI invocations, and HTTP requests all share one cache:

    from repro.api import ReproClient, SimulateRequest

    client = ReproClient()
    envelope = client.simulate(SimulateRequest(mix="W1", policy="acg"))
    print(envelope.metrics["peak_amb_c"], envelope.provenance.cache)

``run_campaign``/``run_scenarios`` are iterators: they yield each
cell's envelope as soon as it (and every earlier cell) completes, so a
consumer can stream a large grid without holding it in memory.
"""

from __future__ import annotations

import time
from dataclasses import asdict
from pathlib import Path
from typing import Any, Iterator

from repro.api.envelope import Provenance, ResultEnvelope
from repro.api.requests import (
    CampaignRequest,
    CompareRequest,
    ScenarioRequest,
    ServerRequest,
    SimulateRequest,
    request_to_dict,
)
from repro.campaign import (
    Campaign,
    ResultStore,
    RunSpec,
    cached_payload,
    default_store,
    engine_for_spec,
    run_outcome,
    run_payload,
    runner_for,
    spec_meta,
)
from repro.engine import CheckpointFile, CheckpointObserver, EngineState
from repro.engine.progress import PROGRESS
from repro.obs.trace import TRACER
from repro.scenarios import iter_scenarios


def metrics_from_result(result: Any) -> dict:
    """A result object's scalar metrics (trace excluded), JSON-ready.

    Includes the derived power averages so envelope consumers never
    need the result classes themselves.
    """
    metrics = {
        key: value for key, value in result.__dict__.items() if key != "trace"
    }
    metrics["average_cpu_power_w"] = result.average_cpu_power_w
    if hasattr(result, "average_memory_power_w"):
        metrics["average_memory_power_w"] = result.average_memory_power_w
    return metrics


def _cell_echo(spec: RunSpec) -> dict:
    """The request echo for one campaign/scenario cell.

    Cells echo the fully resolved run spec under type ``"cell"``
    (library scenarios carry knobs no top-level request can express),
    so unlike simulate/server/compare echoes they are *descriptive*,
    not replayable through ``request_from_dict``.
    """
    return {"type": "cell", "kind": spec.kind, **asdict(spec)}


class ReproClient:
    """Typed façade over the scenario + campaign engines.

    ``backend`` selects where multi-cell runs execute (an
    :class:`~repro.cluster.ExecutionBackend` — e.g. a reusable process
    pool or an HTTP worker fleet).  The backend is borrowed, not owned:
    the caller closes it (normally with a ``with`` block) after its
    last campaign, so one fleet serves many client calls.  ``None``
    keeps the classic behavior — serial, or a per-run pool when the
    request's ``jobs`` asks for one.
    """

    def __init__(
        self, store: ResultStore | None = None, *, backend: Any | None = None
    ) -> None:
        #: None is a meaningful sentinel ("the default stack"), kept as
        #: such all the way into the campaign engine: pool workers then
        #: rebuild their own default store instead of receiving a
        #: pickled copy of the process-wide memo.
        self._store = store
        self._backend = backend

    @property
    def store(self) -> ResultStore:
        """The result store backing this client's runs."""
        return default_store() if self._store is None else self._store

    # -- single-cell runs --------------------------------------------------

    def simulate(self, request: SimulateRequest | None = None, **axes: Any) -> ResultEnvelope:
        """Run one Chapter 4 simulation cell."""
        request = SimulateRequest(**axes) if request is None else request
        return self._run_cell(request.spec(), request_to_dict(request))

    def server(self, request: ServerRequest | None = None, **axes: Any) -> ResultEnvelope:
        """Run one Chapter 5 server measurement cell."""
        request = ServerRequest(**axes) if request is None else request
        return self._run_cell(request.spec(), request_to_dict(request))

    # -- multi-cell runs ---------------------------------------------------

    def compare(self, request: CompareRequest | None = None, **axes: Any) -> list[ResultEnvelope]:
        """Every Chapter 4 scheme on one mix; baseline envelope first.

        Each envelope echoes the equivalent per-policy simulate request,
        so a compare is exactly N cache-shared simulate calls.
        """
        request = CompareRequest(**axes) if request is None else request
        return [
            self._run_cell(cell.spec(), request_to_dict(cell))
            for cell in request.cell_requests()
        ]

    def run_campaign(self, request: CampaignRequest) -> Iterator[ResultEnvelope]:
        """Stream a named grid's per-cell envelopes as they complete.

        Cells arrive in deterministic sweep order; with ``jobs > 1``
        they are computed by a process pool and yielded as the ordered
        prefix completes.
        """
        _, specs = request.cells()
        return self._iter_cells(specs, request.jobs)

    def campaign_table(self, request: CampaignRequest) -> tuple[list[str], list[list[Any]]]:
        """A named grid's (headers, rows) table — the CLI's view."""
        return self._table(request)

    def run_scenarios(self, request: ScenarioRequest) -> Iterator[ResultEnvelope]:
        """Stream registered scenarios' envelopes as they complete."""
        _, specs = request.cells()
        return self._iter_cells(specs, request.jobs)

    def scenarios_table(self, request: ScenarioRequest) -> tuple[list[str], list[list[Any]]]:
        """Scenario runs as a (headers, rows) table — the CLI's view."""
        return self._table(request)

    # -- worker duty -------------------------------------------------------

    def run_cell_payload(self, spec: RunSpec) -> tuple[dict, bool, float]:
        """Run (or recall) one cell, returning its encoded payload.

        The ``/v1/worker/run`` route's execution path: the worker
        computes against *this client's* store (the same one every
        other route reads), returning ``(payload, hit, seconds)`` for
        the coordinator to merge into its own store.
        """
        with TRACER.span("worker.run", key=spec.key(), kind=spec.kind):
            return run_payload(spec, self._store)

    def run_cell_slice(
        self,
        spec: RunSpec,
        window_slice: int,
        resume_state: dict | None = None,
    ) -> dict:
        """Run at most ``window_slice`` DTM windows of one cell.

        The time-sliced ``/v1/worker/run`` path.  A cached cell is
        served as a hit; otherwise the cell's stepping engine runs one
        slice — resumed from ``resume_state`` (a serialized
        :class:`~repro.engine.EngineState`) when the coordinator has a
        checkpoint from an earlier slice.  Returns the wire-shaped cell
        result: either a completed entry (``payload`` + provenance) or
        a partial entry (``partial: true`` + the new checkpoint
        ``state``), both carrying ``windows_done``/``resumed_from`` so
        coordinators can prove a resume was warm.  A cache hit reports
        both as 0 — no windows executed; ``cache == "hit"`` is the
        discriminator.
        """
        key = spec.key()
        entry: dict[str, Any] = {"key": key, "kind": spec.kind}
        payload = cached_payload(spec, self._store)
        if payload is not None:
            entry.update(
                payload=payload,
                cache="hit",
                compute_seconds=0.0,
                windows_done=0,
                resumed_from=0,
            )
            return entry
        engine = engine_for_spec(spec)
        resumed_from = 0
        started = time.perf_counter()
        with TRACER.span(
            "worker.slice", key=key, kind=spec.kind, slice=window_slice
        ), PROGRESS.track(key):
            if resume_state is not None:
                engine.restore(EngineState.from_dict(resume_state))
                resumed_from = engine.windows
            engine.step_windows(window_slice)
            seconds = time.perf_counter() - started
            entry.update(
                windows_done=engine.windows,
                resumed_from=resumed_from,
                compute_seconds=round(seconds, 6),
            )
            if not engine.done:
                entry.update(partial=True, state=engine.checkpoint().to_dict())
                return entry
            result = engine.finish()
        payload = runner_for(spec.kind).encode(result)
        store = default_store() if self._store is None else self._store
        store.put(key, payload, meta=spec_meta(spec))
        entry.update(payload=payload, cache="miss")
        return entry

    def run_cell_gang(
        self,
        specs: list[RunSpec],
        window_slice: int | None = None,
        resume: dict[str, dict] | None = None,
    ) -> list[dict]:
        """Run one coordinator-proposed gang of cells together.

        The gang-aware ``/v1/worker/run`` path.  The coordinator groups
        cells by a cheap spec descriptor without building engines; this
        worker re-plans authoritatively with
        :func:`~repro.engine.gang.plan_gangs` (cells that turn out to
        be incompatible or cached simply demote to the per-cell paths)
        and drives each surviving gang through one
        :class:`~repro.engine.gang.GangStrategy` — bit-identical per
        cell to running it solo.  Returns one wire-shaped entry per
        spec, in input order, with the gang's wall-clock split equally
        across its members as ``compute_seconds``.
        """
        from repro.engine.gang import plan_gangs

        resume = resume or {}
        entries: dict[str, dict] = {}
        misses: list[tuple[str, RunSpec]] = []
        for spec in specs:
            key = spec.key()
            payload = cached_payload(spec, self._store)
            if payload is not None:
                entries[key] = {
                    "key": key,
                    "kind": spec.kind,
                    "payload": payload,
                    "cache": "hit",
                    "compute_seconds": 0.0,
                    "windows_done": 0,
                    "resumed_from": 0,
                }
            else:
                misses.append((key, spec))
        if misses:
            plan = plan_gangs(misses, batch_cells=max(2, len(misses)))
            for planned in plan.gangs:
                entries.update(
                    self._run_gang_slice(planned, window_slice, resume)
                )
            for key, spec in plan.solo:
                if window_slice is None:
                    payload, hit, seconds = self.run_cell_payload(spec)
                    entries[key] = {
                        "key": key,
                        "kind": spec.kind,
                        "payload": payload,
                        "cache": "hit" if hit else "miss",
                        "compute_seconds": round(seconds, 6),
                    }
                else:
                    entries[key] = self.run_cell_slice(
                        spec, window_slice, resume.get(key)
                    )
        return [entries[spec.key()] for spec in specs]

    def _run_gang_slice(
        self,
        planned: Any,
        window_slice: int | None,
        resume: dict[str, dict],
    ) -> dict[str, dict]:
        """Step one planned gang, whole-run or one ``window_slice``.

        Members resume individually from their checkpoint states — a
        re-planned gang on a fresh worker picks up exactly where each
        cell's last slice stopped — then advance in lockstep.  Done
        cells finish into stored payloads; the rest return partial
        entries with fresh checkpoints.
        """
        gang = planned.gang
        cells = planned.cells
        resumed_from: dict[str, int] = {}
        for (key, _spec), engine in zip(cells, gang.engines):
            state = resume.get(key)
            if state is not None:
                engine.restore(EngineState.from_dict(state))
                resumed_from[key] = engine.windows
        store = default_store() if self._store is None else self._store
        out: dict[str, dict] = {}
        started = time.perf_counter()
        with TRACER.span(
            "worker.gang", cells=len(cells), slice=window_slice or 0
        ):
            if window_slice is None:
                results = gang.run_to_completion()
                seconds = time.perf_counter() - started
                per_cell = round(seconds / len(cells), 6)
                for (key, spec), result in zip(cells, results):
                    payload = runner_for(spec.kind).encode(result)
                    store.put(key, payload, meta=spec_meta(spec))
                    out[key] = {
                        "key": key,
                        "kind": spec.kind,
                        "payload": payload,
                        "cache": "miss",
                        "compute_seconds": per_cell,
                        "windows_done": 0,
                        "resumed_from": resumed_from.get(key, 0),
                    }
                return out
            gang.step_windows(window_slice)
            states = gang.checkpoint()
            seconds = time.perf_counter() - started
            per_cell = round(seconds / len(cells), 6)
            for (key, spec), engine, state in zip(cells, gang.engines, states):
                entry: dict[str, Any] = {
                    "key": key,
                    "kind": spec.kind,
                    "windows_done": engine.windows,
                    "resumed_from": resumed_from.get(key, 0),
                    "compute_seconds": per_cell,
                }
                if engine.done:
                    result = engine.finish()
                    payload = runner_for(spec.kind).encode(result)
                    store.put(key, payload, meta=spec_meta(spec))
                    entry.update(payload=payload, cache="miss")
                else:
                    entry.update(partial=True, state=state.to_dict())
                out[key] = entry
        return out

    # -- jobs façade -------------------------------------------------------

    def submit_job(
        self,
        url: str,
        request: Any,
        *,
        tenant: str = "default",
        priority: int = 0,
    ) -> dict:
        """Submit a typed request to a jobs-enabled service at ``url``.

        ``request`` is any API request object (or its dict form).
        Returns the job document; raise-or-retry behavior lives in
        :class:`~repro.jobs.JobsClient`, which this wraps.
        """
        from repro.jobs.client import JobsClient

        body = request if isinstance(request, dict) else request_to_dict(request)
        return JobsClient(url).submit(body, tenant=tenant, priority=priority)

    def wait_job(
        self,
        url: str,
        job_id: str,
        *,
        timeout_s: float = 300.0,
        poll_s: float = 0.25,
    ) -> dict:
        """Poll a submitted job until terminal; returns its result document."""
        from repro.jobs.client import JobsClient

        return JobsClient(url).wait(job_id, timeout_s=timeout_s, poll_s=poll_s)

    # -- resumable runs ----------------------------------------------------

    def simulate_resumable(
        self,
        request: SimulateRequest,
        *,
        checkpoint_dir: str | Path,
        checkpoint_every: int = 2000,
        resume: bool = False,
    ) -> ResultEnvelope:
        """Run one Chapter 4 cell with periodic on-disk checkpoints.

        The run writes an atomic checkpoint every ``checkpoint_every``
        DTM windows under ``checkpoint_dir`` (named by the spec's cache
        key) and removes it on completion.  With ``resume=True`` an
        existing checkpoint is restored first, so only the remaining
        windows execute — the result is bit-identical to an
        uninterrupted run.  The finished payload is written through
        this client's store like any other run; an already-cached cell
        short-circuits (unless resuming) exactly like :meth:`simulate`.
        """
        return self._run_resumable(
            request.spec(), request_to_dict(request),
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            resume=resume,
        )

    def server_resumable(
        self,
        request: ServerRequest,
        *,
        checkpoint_dir: str | Path,
        checkpoint_every: int = 2000,
        resume: bool = False,
    ) -> ResultEnvelope:
        """Run one Chapter 5 cell with periodic on-disk checkpoints
        (see :meth:`simulate_resumable`)."""
        return self._run_resumable(
            request.spec(), request_to_dict(request),
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            resume=resume,
        )

    def _run_resumable(
        self,
        spec: RunSpec,
        echo: dict,
        *,
        checkpoint_dir: str | Path,
        checkpoint_every: int,
        resume: bool,
    ) -> ResultEnvelope:
        key = spec.key()
        checkpoint = CheckpointFile(
            Path(checkpoint_dir) / f"{key}.checkpoint.json"
        )
        if not resume:
            payload = cached_payload(spec, self._store)
            if payload is not None:
                result = runner_for(spec.kind).decode(payload)
                return self._envelope(spec, result, True, 0.0, echo)
        observer = CheckpointObserver(checkpoint, every_windows=checkpoint_every)
        engine = engine_for_spec(spec, extra_observers=(observer,))
        if resume and checkpoint.exists():
            engine.restore(checkpoint.load())
        started = time.perf_counter()
        with PROGRESS.track(key):
            result = engine.run_to_completion()
        seconds = time.perf_counter() - started
        runner = runner_for(spec.kind)
        payload = runner.encode(result)
        store = default_store() if self._store is None else self._store
        store.put(key, payload, meta=spec_meta(spec))
        # Hand back the decode of the stored payload — the same shape a
        # cached or campaign-computed call returns.
        return self._envelope(
            spec, runner.decode(payload), False, seconds, echo
        )

    # -- scenario library --------------------------------------------------

    def list_scenarios(self, kind: str | None = None, tag: str | None = None) -> list[dict]:
        """Descriptors of the registered scenario library."""
        return [
            {
                "name": scenario.name,
                "kind": scenario.kind,
                "mix": scenario.mix,
                "policy": scenario.policy,
                "tags": list(scenario.tags),
                "description": scenario.description,
            }
            for scenario in iter_scenarios(kind=kind, tag=tag)
        ]

    # -- internals ---------------------------------------------------------

    def _run_cell(self, spec: RunSpec, echo: dict) -> ResultEnvelope:
        outcome = run_outcome(spec, store=self._store)
        return self._envelope(
            spec, outcome.result, outcome.hit, outcome.compute_seconds,
            echo, outcome.store_info,
        )

    def _table(
        self, request: CampaignRequest | ScenarioRequest
    ) -> tuple[list[str], list[list[Any]]]:
        grid, specs = request.cells()
        campaign = Campaign(
            specs, jobs=request.jobs, store=self._store, backend=self._backend
        )
        rows = [
            grid.row(spec, result)
            for spec, result, _, _ in campaign.iter_run()
        ]
        return list(grid.headers), rows

    def _iter_cells(self, specs: list[RunSpec], jobs: int) -> Iterator[ResultEnvelope]:
        campaign = Campaign(
            specs, jobs=jobs, store=self._store, backend=self._backend
        )
        for spec, outcome in campaign.iter_outcomes():
            yield self._envelope(
                spec, outcome.result, outcome.hit, outcome.compute_seconds,
                _cell_echo(spec), outcome.store_info,
            )

    def _envelope(
        self,
        spec: RunSpec,
        result: Any,
        hit: bool,
        elapsed: float,
        echo: dict,
        store_info: dict | None = None,
    ) -> ResultEnvelope:
        store_info = store_info or {}
        return ResultEnvelope(
            kind=spec.kind,
            scenario=getattr(spec, "scenario", None),
            request=echo,
            metrics=metrics_from_result(result),
            provenance=Provenance(
                cache="hit" if hit else "miss",
                cache_key=spec.key(),
                compute_seconds=round(elapsed, 6),
                shard=store_info.get("shard"),
                single_flight=store_info.get("single_flight"),
            ),
        )
