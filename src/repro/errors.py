"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A simulation or model was configured with inconsistent parameters."""


class TimingViolationError(ReproError):
    """A DRAM command was issued in violation of a device timing constraint.

    The cycle-level FBDIMM simulator checks every command against the DDR2
    timing parameters (tRCD, tRP, tRAS, ...).  Scheduler bugs surface as
    this exception instead of silently corrupting statistics.
    """


class ProtocolError(ReproError):
    """An FBDIMM channel frame or AMB interaction broke protocol rules."""


class SchedulingError(ReproError):
    """The batch-job scheduler or OS emulation reached an invalid state."""


class ThermalModelError(ReproError):
    """A thermal model was asked to operate outside its valid domain."""


class WorkloadError(ReproError):
    """An unknown application or workload mix was requested."""


class SimulationError(ReproError):
    """A simulation run failed to make progress or exceeded its horizon."""


class CheckpointError(ReproError):
    """An engine checkpoint could not be captured, decoded, or restored.

    Raised for version-skewed snapshots, snapshots taken under a
    different strategy kind, and checkpoint files that fail to decode.
    A *torn* file can never cause this: checkpoints are published with
    the same write-then-rename discipline as the result stores.
    """


class ClusterError(ReproError):
    """Distributed campaign execution failed (workers dead, cell rejected,
    or retries exhausted).

    Raised by the :mod:`repro.cluster` coordinator; transient worker
    failures are retried and blacklisted internally, so seeing this
    exception means the fleet as a whole could not complete the grid.
    """
