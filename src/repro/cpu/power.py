"""Chip power as a function of DTM state.

Two models, matching the two evaluation platforms:

- :func:`simulated_chip_power_w` — the Table 4.4 state-based model for
  the simulated 4-core chip of Chapter 4.  Power depends only on the DTM
  state (active cores / DVFS level), because the paper prices each state
  from the Xeon data sheet rather than from activity.
- :func:`measured_chip_power_w` — the activity-based model for the Xeon
  5160 servers of Chapter 5, where stalled cores clock-gate themselves
  and ACG therefore saves little power (§5.4.4).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.params.power_params import (
    MeasuredProcessorPower,
    ProcessorPowerTable,
    SIMULATED_CPU_POWER,
    XEON_5160_POWER,
)


def simulated_chip_power_w(
    active_cores: int,
    dvfs_level: int,
    memory_on: bool,
    table: ProcessorPowerTable | None = None,
) -> float:
    """Chip power of the simulated platform (Table 4.4).

    Args:
        active_cores: cores left running by gating.
        dvfs_level: DVFS ladder position (0 fastest; ``len(points)``
            = stopped).
        memory_on: with memory shut down every core stalls and the chip
            draws standby power (Table 4.4 row "0 cores" / "(-, 0)").
        table: power table; defaults to the paper's values.

    Returns:
        Chip power in watts.

    The two control knobs compose: gated cores draw standby power, and the
    active cores draw the CDVFS per-core power of the current level — so
    DTM-COMB is priced consistently too.
    """
    t = table if table is not None else SIMULATED_CPU_POWER
    if not memory_on:
        return t.standby_w
    if dvfs_level == len(t.operating_points):
        return t.standby_w
    if not 0 <= active_cores <= t.cores:
        raise ConfigurationError(f"invalid active core count {active_cores}")
    full_chip = t.cdvfs_power_at_level(dvfs_level)
    per_core_active = (full_chip - t.standby_w) / t.cores
    return t.standby_w + per_core_active * active_cores


def measured_chip_power_w(
    utilizations: list[float],
    dvfs_level: int,
    model: MeasuredProcessorPower | None = None,
) -> float:
    """Chip power of the Chapter 5 servers (activity-based).

    Args:
        utilizations: per-core activity in [0, 1] (retired-uop throughput
            relative to peak); gated or idle cores contribute 0.
        dvfs_level: Xeon 5160 DVFS ladder position (0 = 3.0 GHz).
        model: power model; defaults to the Xeon 5160 parameters.

    Returns:
        Combined power of both sockets in watts.
    """
    m = model if model is not None else XEON_5160_POWER
    return m.power_w(utilizations, dvfs_level)
