"""The DVFS operating-point ladder.

DTM-CDVFS scales the frequency and voltage of *all* cores together
(§4.2.2); the ladder tracks the current position and exposes the scaling
factors the performance and power models need.  Position ``len(points)``
is the fully-stopped state used at the highest thermal emergency level.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.params.power_params import DVFSOperatingPoint


class DVFSLadder:
    """Ordered DVFS operating points, fastest first, plus a stopped state."""

    def __init__(self, points: tuple[DVFSOperatingPoint, ...]) -> None:
        if not points:
            raise ConfigurationError("ladder needs at least one operating point")
        frequencies = [p.frequency_hz for p in points]
        if frequencies != sorted(frequencies, reverse=True):
            raise ConfigurationError("operating points must be fastest-first")
        self._points = points
        self._level = 0

    @property
    def points(self) -> tuple[DVFSOperatingPoint, ...]:
        """The ladder's operating points."""
        return self._points

    @property
    def level(self) -> int:
        """Current ladder position (0 = fastest, len(points) = stopped)."""
        return self._level

    @property
    def stopped_level(self) -> int:
        """The ladder position denoting all cores stopped."""
        return len(self._points)

    @property
    def is_stopped(self) -> bool:
        """Whether the chip is in the stopped state."""
        return self._level == self.stopped_level

    def set_level(self, level: int) -> None:
        """Move to a ladder position (``stopped_level`` allowed)."""
        if not 0 <= level <= self.stopped_level:
            raise ConfigurationError(
                f"DVFS level must be within [0, {self.stopped_level}], got {level}"
            )
        self._level = level

    @property
    def frequency_hz(self) -> float:
        """Current core frequency (0 when stopped)."""
        if self.is_stopped:
            return 0.0
        return self._points[self._level].frequency_hz

    @property
    def voltage_v(self) -> float:
        """Current supply voltage (0 when stopped)."""
        if self.is_stopped:
            return 0.0
        return self._points[self._level].voltage_v

    @property
    def frequency_scale(self) -> float:
        """Current frequency relative to the top operating point."""
        return self.frequency_hz / self._points[0].frequency_hz

    def reset(self) -> None:
        """Return to the top operating point."""
        self._level = 0
