"""The multicore chip facade: gating plus DVFS in one object.

DTM policies manipulate this object; the window model reads it to decide
how many programs run and how fast; the power models read it to price the
chip's consumption.
"""

from __future__ import annotations

from repro.cpu.dvfs import DVFSLadder
from repro.cpu.gating import CoreGating
from repro.params.power_params import DVFSOperatingPoint


class MulticoreChip:
    """Controllable chip state: core count, gating, DVFS ladder.

    Args:
        cores: number of cores.
        operating_points: DVFS ladder, fastest first.
        protected_cores: cores that can never be gated (Chapter 5 servers
            protect core 0).
    """

    def __init__(
        self,
        cores: int,
        operating_points: tuple[DVFSOperatingPoint, ...],
        protected_cores: frozenset[int] = frozenset(),
    ) -> None:
        self.gating = CoreGating(cores, protected_cores)
        self.dvfs = DVFSLadder(operating_points)
        self._memory_on = True

    @property
    def cores(self) -> int:
        """Total core count."""
        return self.gating.cores

    @property
    def memory_on(self) -> bool:
        """Whether memory accesses are enabled (DTM-TS / emergency L5 off)."""
        return self._memory_on

    def set_memory_on(self, on: bool) -> None:
        """Enable or disable all memory accesses (thermal shutdown)."""
        self._memory_on = on

    @property
    def running_cores(self) -> list[int]:
        """Core ids that execute this interval (empty when DVFS-stopped)."""
        if self.dvfs.is_stopped:
            return []
        return self.gating.active_cores()

    @property
    def frequency_hz(self) -> float:
        """Current core frequency."""
        return self.dvfs.frequency_hz

    @property
    def voltage_v(self) -> float:
        """Current supply voltage."""
        return self.dvfs.voltage_v

    def reset(self) -> None:
        """Full speed, all cores, memory on."""
        self.gating.reset()
        self.dvfs.reset()
        self._memory_on = True
