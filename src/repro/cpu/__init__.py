"""Processor substrate: DVFS, core gating and chip power.

The proposed DTM schemes act on the processor rather than the memory
controller: DTM-ACG clock-gates cores, DTM-CDVFS walks the DVFS ladder.
This package provides the controllable chip state those schemes drive:

- :mod:`repro.cpu.dvfs` — the DVFS operating-point ladder.
- :mod:`repro.cpu.gating` — core-gating state with round-robin fairness.
- :mod:`repro.cpu.multicore` — the chip facade joining both.
- :mod:`repro.cpu.power` — chip power as a function of DTM state
  (Table 4.4 for the simulated platform, activity-based for Chapter 5).
"""

from repro.cpu.dvfs import DVFSLadder
from repro.cpu.gating import CoreGating
from repro.cpu.multicore import MulticoreChip
from repro.cpu.power import simulated_chip_power_w, measured_chip_power_w

__all__ = [
    "DVFSLadder",
    "CoreGating",
    "MulticoreChip",
    "simulated_chip_power_w",
    "measured_chip_power_w",
]
