"""Core-gating state with round-robin fairness.

DTM-ACG clock-gates 1..N cores according to the thermal emergency level;
"to ensure fairness among benchmarks running on different cores, the
cores can be shut down in a round-robin manner" (§4.2.2).  The gating
state tracks which cores run and rotates the victim set each time it is
asked to, so no benchmark is starved.

Chapter 5 adds a platform constraint: on the Linux servers the first core
of the first processor can never be disabled (§5.2.1), expressed here as
``protected_cores``.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class CoreGating:
    """Which cores are running, with rotation for fairness."""

    def __init__(self, cores: int, protected_cores: frozenset[int] = frozenset()) -> None:
        if cores < 1:
            raise ConfigurationError("need at least one core")
        bad = [c for c in protected_cores if not 0 <= c < cores]
        if bad:
            raise ConfigurationError(f"protected core ids out of range: {bad}")
        self._cores = cores
        self._protected = frozenset(protected_cores)
        self._active_count = cores
        self._rotation = 0

    @property
    def cores(self) -> int:
        """Total core count."""
        return self._cores

    @property
    def active_count(self) -> int:
        """Number of cores currently running."""
        return self._active_count

    @property
    def min_active(self) -> int:
        """Smallest legal active count (protected cores can't be gated)."""
        return max(len(self._protected), 0)

    def set_active_count(self, count: int) -> None:
        """Gate or ungate cores so that ``count`` remain running.

        A count below the number of protected cores is clamped up to it,
        except that zero remains zero on platforms with no protection
        (the simulated platform may stop every core at emergency L5).
        """
        if not 0 <= count <= self._cores:
            raise ConfigurationError(
                f"active count must be within [0, {self._cores}], got {count}"
            )
        if self._protected and count < len(self._protected):
            count = len(self._protected)
        self._active_count = count

    def rotate(self) -> None:
        """Advance the round-robin victim rotation by one position."""
        self._rotation = (self._rotation + 1) % self._cores

    def active_cores(self) -> list[int]:
        """The core ids currently running.

        Protected cores always run; the remaining slots are filled in
        rotation order so gating victims cycle over time.
        """
        if self._active_count >= self._cores:
            return list(range(self._cores))
        chosen: list[int] = sorted(self._protected)[: self._active_count]
        candidates = [c for c in range(self._cores) if c not in self._protected]
        # Rotate the candidate order so victims change over time.
        offset = self._rotation % max(1, len(candidates)) if candidates else 0
        rotated = candidates[offset:] + candidates[:offset]
        for core in rotated:
            if len(chosen) >= self._active_count:
                break
            chosen.append(core)
        return sorted(chosen)

    def is_active(self, core: int) -> bool:
        """Whether a specific core is running."""
        return core in self.active_cores()

    def reset(self) -> None:
        """All cores running, rotation cleared."""
        self._active_count = self._cores
        self._rotation = 0
