"""The unified stepping engine — one loop for every simulator.

Both of the paper's experimental tracks follow the same per-DTM-window
cadence: read the sensors, let the policy (or chipset) decide, evaluate
the level-1 performance model, advance the batch, step MEMSpot, account
energy and peaks, sample the trace.  Before this module that cadence
was inlined three times (``TwoLevelSimulator.run``,
``ServerSimulator.run``, ``run_homogeneous``), which meant runs could
only execute to completion inside one opaque call.

:class:`SteppingEngine` owns the cadence behind an incremental surface:

- :meth:`step_windows` / :meth:`run_to_completion` — advance one slice
  or the whole batch;
- :meth:`checkpoint` / :meth:`restore` — an explicit, versioned,
  JSON-serializable :class:`~repro.engine.state.EngineState` snapshot
  at any window boundary.  A restored run is **bit-identical** to an
  uninterrupted one (the property suite enforces this for both
  simulators under both thermal kernels);
- pluggable :class:`~repro.engine.observers.Observer` hooks for trace
  recording, progress emission, checkpoint files, and early-stop
  guards.

A :class:`RunStrategy` supplies everything experiment-specific: the
model wiring (scheduler, policy, window model, MEMSpot), the
per-window actuation/evaluation, and the final result object.  The
engine itself performs the shared post-step accounting — peak
tracking, the ambient-temperature time integral, memory/CPU energy —
in exactly the floating-point order the inlined loops used, so
engine-hosted runs reproduce the pre-refactor goldens byte for byte.

Within one window the division of labor is:

1. engine: runaway guard (``now > max_sim_s`` raises the strategy's
   :class:`~repro.errors.SimulationError`);
2. strategy ``window(engine)``: sensor reading -> decision ->
   actuation -> level-1 evaluation -> scheduler advance.  The strategy
   accumulates ``instructions`` / ``traffic_bytes`` / ``l2_misses``
   directly on the engine (per-slot addition order is part of the
   bit-identity contract) and returns a :class:`WindowOutcome`;
3. engine: MEMSpot step, peaks, integrals, energies, clock advance,
   observer notification.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Protocol

from repro.engine.state import EngineState
from repro.errors import CheckpointError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.memspot import MemSpotSample
    from repro.engine.observers import Observer


@dataclass(frozen=True)
class WindowOutcome:
    """What one strategy window hands back to the engine."""

    #: System-wide read throughput over the window, bytes/s.
    read_bytes_per_s: float
    #: System-wide write throughput over the window, bytes/s.
    write_bytes_per_s: float
    #: Eq. 3.6 CPU heating sum (sum of V_i * reference-IPC_i).
    heating_sum: float
    #: Processor power over the window, watts.
    cpu_power_w: float


class RunStrategy(Protocol):
    """Experiment-specific wiring the engine drives (see module doc).

    Implementations: ``Chapter4Strategy`` (:mod:`repro.core.simulator`),
    ``ServerStrategy`` and ``HomogeneousStrategy``
    (:mod:`repro.testbed.runner`).
    """

    #: Registry-style kind tag, embedded in checkpoints (``ch4``, ...).
    kind: str
    #: DTM window length, seconds.
    dt_s: float
    #: The level-2 thermal emulator (MemSpot or BatchedMemSpot).
    memspot: Any

    def done(self, engine: "SteppingEngine") -> bool:
        """Whether the run has nothing left to simulate."""
        ...

    def window(self, engine: "SteppingEngine") -> WindowOutcome:
        """Execute one window's decision/evaluation/advance."""
        ...

    def timeout_error(self, engine: "SteppingEngine") -> SimulationError:
        """The error raised when the run exceeds its horizon."""
        ...

    def finalize(self, engine: "SteppingEngine") -> Any:
        """Build the run's result object from the engine state."""
        ...

    def state_dict(self) -> dict[str, Any]:
        """Serializable strategy state for checkpoints."""
        ...

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        ...

    def progress(self, engine: "SteppingEngine") -> dict[str, Any]:
        """Extra progress-snapshot fields (job counts, ...)."""
        ...

    def max_sim_horizon(self) -> float | None:
        """Simulated-seconds runaway limit (None = unbounded)."""
        ...


#: The engine-owned accumulator fields, in checkpoint order.
_ACCUMULATORS = (
    "traffic_bytes",
    "l2_misses",
    "instructions",
    "cpu_energy_j",
    "memory_energy_j",
    "ambient_integral",
    "peak_amb_c",
    "peak_dram_c",
)


class SteppingEngine:
    """Drives one :class:`RunStrategy` window by window."""

    def __init__(
        self,
        strategy: RunStrategy,
        observers: Iterable["Observer"] = (),
    ) -> None:
        self.strategy = strategy
        self.dt_s = strategy.dt_s
        self._observers = list(observers)
        # When process-wide tracing is on, a transient TracingObserver
        # rides along and `step_window` takes the phase-timed path.
        # Imported lazily: repro.obs.trace subclasses Observer.
        from repro.obs.trace import engine_observer

        self._tracing = engine_observer()
        if self._tracing is not None:
            self._observers.append(self._tracing)
        self.windows = 0
        self.now_s = 0.0
        self.traffic_bytes = 0.0
        self.l2_misses = 0.0
        self.instructions = 0.0
        self.cpu_energy_j = 0.0
        self.memory_energy_j = 0.0
        #: Time integral of the memory-inlet (ambient) temperature —
        #: ``mean_ambient_c`` / ``mean_inlet_c`` divide it by runtime.
        self.ambient_integral = 0.0
        self.peak_amb_c = -273.15
        self.peak_dram_c = -273.15
        #: The previous window's MEMSpot sample — what the next
        #: window's sensor reading sees.
        self.sample: "MemSpotSample" = strategy.memspot.sample()
        self._stop_requested = False
        self._result: Any = None
        self._finished = False

    # -- observation -------------------------------------------------------

    @property
    def observers(self) -> tuple["Observer", ...]:
        """The attached observers, in notification order."""
        return tuple(self._observers)

    def request_stop(self) -> None:
        """Ask :meth:`run_to_completion` to finalize after this window
        (the early-stop/convergence-guard hook)."""
        self._stop_requested = True

    # -- stepping ----------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether the strategy has nothing left to simulate."""
        return self.strategy.done(self)

    def step_window(self) -> None:
        """Advance exactly one DTM window."""
        if self._tracing is not None:
            self._step_window_traced()
            return
        outcome = self.begin_window()
        sample = self.strategy.memspot.step(
            outcome.read_bytes_per_s,
            outcome.write_bytes_per_s,
            outcome.heating_sum,
            self.dt_s,
        )
        self.apply_window(outcome, sample)

    def _step_window_traced(self) -> None:
        """`step_window` with per-phase wall timing for the tracer.

        Identical arithmetic to the fast path — only `perf_counter`
        reads are added around the three phases, and the observer
        decides (under sampling) whether a window span is emitted.
        """
        t0 = time.perf_counter()
        outcome = self.begin_window()
        t1 = time.perf_counter()
        sample = self.strategy.memspot.step(
            outcome.read_bytes_per_s,
            outcome.write_bytes_per_s,
            outcome.heating_sum,
            self.dt_s,
        )
        t2 = time.perf_counter()
        self.apply_window(outcome, sample)
        t3 = time.perf_counter()
        self._tracing.record_phases(self, t1 - t0, t2 - t1, t3 - t2)

    def begin_window(self) -> WindowOutcome:
        """The pre-thermal half of one window: guard + strategy.

        Runs the runaway-horizon check and the strategy's
        decision/evaluation/advance, returning the
        :class:`WindowOutcome` the thermal kernel consumes.  Split out
        of :meth:`step_window` so the gang runner
        (:mod:`repro.engine.gang`) can collect many cells' outcomes,
        step them through one vectorized kernel, and hand each cell's
        sample back through :meth:`apply_window` — reusing this exact
        code path keeps gang-stepped cells bit-identical to solo runs.
        """
        horizon = self.strategy.max_sim_horizon()
        if horizon is not None and self.now_s > horizon:
            raise self.strategy.timeout_error(self)
        return self.strategy.window(self)

    def apply_window(self, outcome: WindowOutcome, sample: "MemSpotSample") -> None:
        """The post-thermal half of one window: accounting + observers.

        ``sample`` is the thermal kernel's output for ``outcome`` —
        normally produced by ``strategy.memspot.step`` inside
        :meth:`step_window`, or by a :class:`~repro.core.kernel.GridMemSpot`
        stepping this cell inside a gang.  Every accumulation below
        keeps the historical floating-point order (part of the
        bit-identity contract).
        """
        dt = self.dt_s
        self.sample = sample
        self.peak_amb_c = max(self.peak_amb_c, sample.amb_c)
        self.peak_dram_c = max(self.peak_dram_c, sample.dram_c)
        self.ambient_integral += sample.ambient_c * dt
        self.memory_energy_j += sample.memory_power_w * dt
        self.cpu_energy_j += outcome.cpu_power_w * dt
        self.now_s += dt
        self.windows += 1
        for observer in self._observers:
            observer.on_window(self)

    def step_windows(self, count: int) -> int:
        """Advance up to ``count`` windows; returns how many ran.

        Stops early when the batch completes (or an observer requested
        a stop), so callers can slice a run without overshooting:
        time-sliced cluster cells and the CLI's checkpointed runs are
        both built on this.
        """
        if count < 0:
            raise SimulationError("cannot step a negative window count")
        stepped = 0
        while stepped < count and not self._stop_requested and not self.done:
            self.step_window()
            stepped += 1
        return stepped

    def run_to_completion(self) -> Any:
        """Run the remaining windows and return the strategy's result."""
        while not self._stop_requested and not self.done:
            self.step_window()
        return self.finish()

    def finish(self) -> Any:
        """Finalize the result (idempotent) and notify observers."""
        if not self._finished:
            self._result = self.strategy.finalize(self)
            self._finished = True
            for observer in self._observers:
                observer.on_finish(self)
        return self._result

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> EngineState:
        """Snapshot the run at the current window boundary."""
        return EngineState(
            strategy=self.strategy.kind,
            windows=self.windows,
            now_s=self.now_s,
            accumulators={name: getattr(self, name) for name in _ACCUMULATORS},
            thermal=self.strategy.memspot.thermal_state(),
            strategy_state=self.strategy.state_dict(),
            observers=[
                obs.state_dict()
                for obs in self._observers
                if not getattr(obs, "transient", False)
            ],
        )

    def restore(self, state: EngineState) -> None:
        """Resume from a snapshot taken by an identically-built engine.

        The engine must have been constructed from the same spec/config
        (strategy wiring is rebuilt by the caller, not stored); the
        snapshot overlays only runtime state.  After a restore the
        remaining windows — and therefore the final result — are
        bit-identical to a run that never paused.
        """
        if state.strategy != self.strategy.kind:
            raise CheckpointError(
                f"checkpoint belongs to strategy {state.strategy!r}, "
                f"this engine runs {self.strategy.kind!r}"
            )
        durable = [
            obs
            for obs in self._observers
            if not getattr(obs, "transient", False)
        ]
        if len(state.observers) != len(durable):
            raise CheckpointError(
                f"checkpoint carries {len(state.observers)} observer "
                f"states, this engine has {len(durable)} observers "
                f"attached — rebuild the engine with the same observers"
            )
        missing = [
            name for name in _ACCUMULATORS if name not in state.accumulators
        ]
        if missing:
            raise CheckpointError(
                f"checkpoint is missing accumulators {missing}"
            )
        self.windows = int(state.windows)
        self.now_s = float(state.now_s)
        for name in _ACCUMULATORS:
            setattr(self, name, float(state.accumulators[name]))
        self.strategy.memspot.load_thermal_state(state.thermal)
        self.strategy.load_state_dict(state.strategy_state)
        for observer, observer_state in zip(durable, state.observers):
            observer.load_state_dict(observer_state)
        # At a window boundary the live sample's temperatures equal the
        # chain maxima, which is exactly what ``sample()`` reports; the
        # power field is never read before the next step overwrites it.
        self.sample = self.strategy.memspot.sample()
        self._stop_requested = False
        self._result = None
        self._finished = False
