"""Pluggable engine observers — the accounting that used to be inlined.

An :class:`Observer` is notified after every completed window and once
at run end.  The three concrete observers replace machinery that was
previously copy-pasted across the two simulator loops:

- :class:`TraceRecorder` — the trace-sampling accounting (resolution
  gating for Chapter 4, every-window logging for Chapter 5), owning
  the :class:`~repro.core.results.TemperatureTrace` the final result
  embeds.
- :class:`ProgressObserver` — publishes periodic run-progress
  snapshots to the process-wide broker
  (:data:`~repro.engine.progress.PROGRESS`), feeding ``/v1/progress``.
- :class:`CheckpointObserver` — writes an atomic
  :class:`~repro.engine.state.CheckpointFile` every N windows and
  removes it when the run completes.

:class:`SteadyStateGuard` is the early-stop/convergence observer: it
asks the engine to stop once the hottest AMB temperature has stopped
moving — useful for warm-up studies, never attached by default (it
changes results by construction).

Observers that carry run state (the recorder's trace and sampling
phase) expose ``state_dict``/``load_state_dict`` so engine checkpoints
capture them; stateless observers inherit the empty defaults.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.core.results import TemperatureTrace
from repro.engine.progress import PROGRESS
from repro.engine.state import CheckpointFile, EngineStateSerializer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.engine.stepping import SteppingEngine


class Observer:
    """Base observer: every hook is optional."""

    #: Transient observers carry no run state worth checkpointing and
    #: are excluded from :meth:`SteppingEngine.checkpoint` entirely —
    #: attaching one (e.g. the tracing observer) never changes
    #: checkpoint shape or restore compatibility.
    transient = False

    def on_window(self, engine: "SteppingEngine") -> None:
        """Called after each completed window (clock already advanced)."""

    def on_finish(self, engine: "SteppingEngine") -> None:
        """Called once when the run completes (after ``finalize``)."""

    def state_dict(self) -> dict[str, Any]:
        """Serializable observer state for engine checkpoints."""
        return {}

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`."""


class TraceRecorder(Observer):
    """Samples the temperature trace at a fixed resolution.

    ``resolution_s=None`` records every window (the Chapter 5 loop's
    once-per-second polling, where the window *is* the second);
    otherwise a window is recorded whenever at least ``resolution_s``
    simulated seconds have passed since the last sample, with the
    first window always recorded (the accumulator starts at infinity)
    — exactly the inlined Chapter 4 arithmetic, preserved bit-for-bit.
    """

    def __init__(
        self, resolution_s: float | None = None, enabled: bool = True
    ) -> None:
        self.resolution_s = resolution_s
        self.enabled = enabled
        self.trace = TemperatureTrace()
        self._since_s = float("inf")

    def on_window(self, engine: "SteppingEngine") -> None:
        if not self.enabled:
            # State is provably unchanged by a disabled window: the
            # accumulator starts at infinity and only the (enabled)
            # record branch ever resets it, so ``inf + dt`` is still
            # infinity — skipping the arithmetic keeps checkpoints
            # byte-identical while sparing the per-window cost on
            # trace-less campaign cells.
            return
        sample = engine.sample
        if self.resolution_s is None:
            self.trace.append(
                engine.now_s, sample.amb_c, sample.dram_c, sample.ambient_c
            )
            return
        self._since_s += engine.dt_s
        if self._since_s >= self.resolution_s:
            self._since_s = 0.0
            self.trace.append(
                engine.now_s, sample.amb_c, sample.dram_c, sample.ambient_c
            )

    def state_dict(self) -> dict[str, Any]:
        # The whole trace-so-far rides in every snapshot: the final
        # result embeds the full trace, so a run resumed on another
        # machine cannot reconstruct it from anything less.  This makes
        # checkpoint size grow with recorded samples — time-sliced
        # dispatch of trace-heavy cells should use generous slices.
        return {
            # JSON has no Infinity; None marks the pristine accumulator.
            "since_s": None if self._since_s == float("inf") else self._since_s,
            "trace": {
                "times_s": list(self.trace.times_s),
                "amb_c": list(self.trace.amb_c),
                "dram_c": list(self.trace.dram_c),
                "ambient_c": list(self.trace.ambient_c),
            },
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        since = state.get("since_s")
        self._since_s = float("inf") if since is None else float(since)
        raw = state.get("trace", {})
        trace = TemperatureTrace()
        for t, a, d, amb in zip(
            raw.get("times_s", []),
            raw.get("amb_c", []),
            raw.get("dram_c", []),
            raw.get("ambient_c", []),
        ):
            trace.append(t, a, d, amb)
        self.trace = trace


class ProgressObserver(Observer):
    """Publishes run progress to the process-wide broker.

    Emits every ``every_windows`` windows plus a final ``done`` record.
    Publishing is a no-op unless the surrounding code labeled the run
    with :meth:`~repro.engine.progress.ProgressBroker.track`, so the
    observer is safe to attach unconditionally.
    """

    def __init__(self, every_windows: int = 200) -> None:
        if every_windows < 1:
            raise ValueError("every_windows must be >= 1")
        self.every_windows = every_windows

    def _publish(self, engine: "SteppingEngine", done: bool) -> None:
        snapshot = {
            "strategy": engine.strategy.kind,
            "windows": engine.windows,
            "now_s": engine.now_s,
            "done": done,
        }
        snapshot.update(engine.strategy.progress(engine))
        PROGRESS.publish(snapshot)

    def on_window(self, engine: "SteppingEngine") -> None:
        if engine.windows % self.every_windows == 0:
            self._publish(engine, done=False)

    def on_finish(self, engine: "SteppingEngine") -> None:
        self._publish(engine, done=True)


class CheckpointObserver(Observer):
    """Writes an atomic checkpoint every N windows, removed on finish.

    The checkpoint is taken *after* the window completes, so a restore
    resumes at an exact window boundary.  All file I/O goes through
    :class:`~repro.engine.state.CheckpointFile`: a run interrupted at
    any point leaves either the last complete snapshot or nothing —
    never a torn file, never a stray temp sibling.

    Consecutive snapshots of one run share most of their bytes (the
    header never changes; the observer states — carrying the whole
    trace-so-far — change only when the trace grows), so the observer
    serializes through a per-run
    :class:`~repro.engine.state.EngineStateSerializer` that re-dumps
    only the sections whose content moved since the previous write.
    """

    def __init__(
        self, checkpoint: CheckpointFile | str, every_windows: int = 1000
    ) -> None:
        if every_windows < 1:
            raise ValueError("every_windows must be >= 1")
        self.checkpoint = (
            checkpoint
            if isinstance(checkpoint, CheckpointFile)
            else CheckpointFile(checkpoint)
        )
        self.every_windows = every_windows
        self._serializer = EngineStateSerializer()

    def on_window(self, engine: "SteppingEngine") -> None:
        if engine.windows % self.every_windows == 0:
            # Lazy import: repro.obs.trace subclasses this module's
            # Observer, so a top-level import would be circular.
            from repro.obs.trace import TRACER

            with TRACER.span("checkpoint", window=engine.windows):
                self.checkpoint.write(
                    engine.checkpoint(), serializer=self._serializer
                )

    def on_finish(self, engine: "SteppingEngine") -> None:
        # A finished run needs no resume point; leaving one behind
        # would make a later --resume silently replay a stale batch.
        self.checkpoint.remove()


class SteadyStateGuard(Observer):
    """Requests an early stop once the AMB temperature converges.

    After ``min_windows`` windows, if the hottest AMB reading has moved
    less than ``tolerance_c`` over the last ``window_span`` windows,
    the guard calls :meth:`SteppingEngine.request_stop` and the run
    finalizes from its partial state.  Attach explicitly — an
    early-stopped run is *not* comparable to a completed one.
    """

    def __init__(
        self,
        tolerance_c: float = 0.01,
        window_span: int = 100,
        min_windows: int = 200,
    ) -> None:
        if window_span < 1:
            raise ValueError("window_span must be >= 1")
        self.tolerance_c = tolerance_c
        self.window_span = window_span
        self.min_windows = min_windows
        self._recent: list[float] = []
        self.stopped = False

    def on_window(self, engine: "SteppingEngine") -> None:
        self._recent.append(engine.sample.amb_c)
        if len(self._recent) > self.window_span:
            del self._recent[0]
        if (
            engine.windows >= self.min_windows
            and len(self._recent) == self.window_span
            and max(self._recent) - min(self._recent) <= self.tolerance_c
        ):
            self.stopped = True
            engine.request_stop()

    def state_dict(self) -> dict[str, Any]:
        return {"recent": list(self._recent), "stopped": self.stopped}

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        self._recent = [float(t) for t in state.get("recent", [])]
        self.stopped = bool(state.get("stopped", False))
