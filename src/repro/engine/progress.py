"""Process-wide run-progress broker (the ``/v1/progress`` feed).

The stepping engine is the only place that knows how far a run has
gotten; the HTTP service (and any other consumer) is several layers
away.  The broker decouples them: the campaign engine labels each
executing cell with its cache key (:meth:`ProgressBroker.track`), the
engine's :class:`~repro.engine.observers.ProgressObserver` publishes
snapshots under whatever label is active on the current thread, and
``GET /v1/progress`` reads the broker.  Labels are context-local, so
the threaded HTTP service and campaign pool threads never cross their
streams.

Publishing without an active label is a silent no-op — engines run
identically whether or not anyone is watching.
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict
from contextvars import ContextVar
from typing import Iterator

#: Finished runs retained for late ``/v1/progress`` polls (oldest
#: evicted first); active runs are never evicted.
_MAX_FINISHED = 64

_CURRENT_LABEL: ContextVar[str | None] = ContextVar(
    "repro_progress_label", default=None
)


class ProgressBroker:
    """Thread-safe label -> latest-progress-snapshot map."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._runs: OrderedDict[str, dict] = OrderedDict()

    @contextlib.contextmanager
    def track(self, label: str) -> Iterator[None]:
        """Label engine runs on this context with ``label``.

        Nested tracks shadow the outer label for their duration.
        """
        token = _CURRENT_LABEL.set(label)
        try:
            yield
        finally:
            _CURRENT_LABEL.reset(token)

    def current_label(self) -> str | None:
        """The label active on this context (None = untracked)."""
        return _CURRENT_LABEL.get()

    def publish(self, snapshot: dict) -> None:
        """Record ``snapshot`` under the active label (no-op untracked)."""
        label = _CURRENT_LABEL.get()
        if label is None:
            return
        with self._lock:
            self._runs[label] = dict(snapshot)
            self._runs.move_to_end(label)
            finished = [
                key for key, snap in self._runs.items() if snap.get("done")
            ]
            for key in finished[: max(0, len(finished) - _MAX_FINISHED)]:
                del self._runs[key]

    def snapshot(self, label: str | None = None) -> dict[str, dict]:
        """Current progress: every run, or just ``label``."""
        with self._lock:
            if label is not None:
                snap = self._runs.get(label)
                return {} if snap is None else {label: dict(snap)}
            return {key: dict(snap) for key, snap in self._runs.items()}

    def forget(self, label: str) -> bool:
        """Drop one run's snapshot; True when something was removed.

        Callers that know a run is over (a completed campaign cell, a
        finished or cancelled job) prune eagerly instead of waiting for
        the bounded-finished eviction, so a long-lived ``serve --jobs``
        process keeps ``/v1/progress`` scoped to live work.
        """
        with self._lock:
            return self._runs.pop(label, None) is not None

    def forget_prefix(self, prefix: str) -> int:
        """Drop every run whose label starts with ``prefix``.

        Jobs label cells ``<job_id>/<cache_key>``, so one call prunes a
        whole job on completion/cancel.  Returns how many were removed.
        """
        with self._lock:
            doomed = [key for key in self._runs if key.startswith(prefix)]
            for key in doomed:
                del self._runs[key]
            return len(doomed)

    def clear(self) -> None:
        """Forget every run (tests)."""
        with self._lock:
            self._runs.clear()


#: The process-wide broker every engine and service instance shares.
PROGRESS = ProgressBroker()
