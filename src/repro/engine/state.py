"""Serializable engine snapshots and atomic checkpoint files.

An :class:`EngineState` is everything a
:class:`~repro.engine.stepping.SteppingEngine` needs to resume a run at
an exact DTM-window boundary: the clock, the shared accumulators, the
thermal-chain temperatures, the strategy's own state (scheduler queue,
policy hysteresis/PID integrals, rotation counters) and each observer's
state (the trace recorded so far, trace-sampling phase).

Versioning follows the ResultEnvelope rules
(:mod:`repro.api.envelope`): ``version`` is ``"<major>.<minor>"``;
minor bumps only add fields and old snapshots keep loading, major
bumps may rename or remove fields and :meth:`EngineState.from_dict`
rejects a foreign major outright.  Snapshots are plain JSON — floats
round-trip bit-exactly through Python's shortest-repr serialization,
which is what makes a restored run *bit-identical* to an uninterrupted
one rather than merely close.

:class:`CheckpointFile` stores one snapshot on disk with the same
write-then-rename discipline as
:class:`~repro.campaign.stores.JsonDirStore`: the JSON is serialized
*before* the temp file is opened, published with :func:`os.replace`,
and the temp sibling is unlinked on any failure — an interrupted or
abandoned run can leave behind a valid previous checkpoint or nothing,
never a torn or partial file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import CheckpointError

#: Engine snapshot schema version.  Bump the minor for additive
#: changes, the major for breaking ones (same rules as the API's
#: ``SCHEMA_VERSION``; see the module docstring).
ENGINE_STATE_VERSION = "1.0"


def _state_major(version: str) -> int:
    major, _, minor = str(version).partition(".")
    if not major.isdigit() or not minor.isdigit():
        raise CheckpointError(
            f"malformed engine-state version {version!r} "
            f"(expected '<major>.<minor>')"
        )
    return int(major)


@dataclass(frozen=True)
class EngineState:
    """One engine snapshot, taken at a DTM-window boundary."""

    #: Strategy kind the snapshot belongs to (``ch4``, ``ch5``, ...).
    #: Restoring into an engine built for a different kind fails.
    strategy: str
    #: Windows completed so far.
    windows: int
    #: Simulated seconds elapsed.
    now_s: float
    #: The engine-owned accumulators (traffic, energies, peaks, ...).
    accumulators: dict[str, float]
    #: Thermal-chain temperatures (``MemSpot.thermal_state()`` shape).
    thermal: dict[str, Any]
    #: Strategy-owned state (scheduler, policy, rotation counters).
    strategy_state: dict[str, Any]
    #: Per-observer state, in engine attach order.
    observers: list[dict] = field(default_factory=list)
    version: str = ENGINE_STATE_VERSION

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready)."""
        return {
            "version": self.version,
            "strategy": self.strategy,
            "windows": self.windows,
            "now_s": self.now_s,
            "accumulators": dict(self.accumulators),
            "thermal": dict(self.thermal),
            "strategy_state": dict(self.strategy_state),
            "observers": [dict(state) for state in self.observers],
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "EngineState":
        """Rebuild a snapshot, rejecting incompatible majors."""
        if not isinstance(raw, Mapping):
            raise CheckpointError(
                f"engine state must be a JSON object, got {type(raw).__name__}"
            )
        version = str(raw.get("version", ""))
        if _state_major(version) != _state_major(ENGINE_STATE_VERSION):
            raise CheckpointError(
                f"incompatible engine-state version {version!r}: this "
                f"engine speaks major {_state_major(ENGINE_STATE_VERSION)} "
                f"({ENGINE_STATE_VERSION})"
            )
        try:
            return cls(
                strategy=str(raw["strategy"]),
                windows=int(raw["windows"]),
                now_s=float(raw["now_s"]),
                accumulators=dict(raw["accumulators"]),
                thermal=dict(raw["thermal"]),
                strategy_state=dict(raw["strategy_state"]),
                observers=[dict(state) for state in raw.get("observers", [])],
                version=version,
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"malformed engine state: {error!r}"
            ) from None


class EngineStateSerializer:
    """Incremental :class:`EngineState` -> JSON text, with section reuse.

    Serializing a snapshot from scratch re-dumps every section every
    time, but between consecutive checkpoints of one run most sections
    are byte-identical: the strategy/version header never changes, and
    the observer states — which embed the *entire* trace recorded so
    far, by far the largest section on trace-recording cells — only
    change when the trace grows (once per trace-resolution interval,
    not per window).  This serializer caches each section's serialized
    text and reuses it while the section's value compares equal, so an
    every-window checkpoint cadence re-serializes only the small
    mutable state (clock, accumulators, temperatures).

    The output is byte-identical to
    ``json.dumps(state.to_dict(), sort_keys=True)`` (a test pins this),
    so cached and uncached writers publish interchangeable files.  One
    serializer serves one run's checkpoint stream; sharing it across
    unrelated runs is safe but defeats the cache.
    """

    def __init__(self) -> None:
        self._sections: dict[str, tuple[Any, str]] = {}

    def _section(self, name: str, value: Any) -> str:
        cached = self._sections.get(name)
        if cached is not None and cached[0] == value:
            return cached[1]
        text = json.dumps(value, sort_keys=True)
        self._sections[name] = (value, text)
        return text

    def serialize(self, state: EngineState) -> str:
        """The snapshot's canonical JSON document."""
        # Top-level keys in sorted order, matching json.dumps(...,
        # sort_keys=True) byte for byte.
        return (
            '{"accumulators": '
            + self._section("accumulators", state.accumulators)
            + ', "now_s": '
            + json.dumps(state.now_s)
            + ', "observers": '
            + self._section("observers", state.observers)
            + ', "strategy": '
            + self._section("strategy", state.strategy)
            + ', "strategy_state": '
            + self._section("strategy_state", state.strategy_state)
            + ', "thermal": '
            + self._section("thermal", state.thermal)
            + ', "version": '
            + self._section("version", state.version)
            + ', "windows": '
            + json.dumps(state.windows)
            + "}"
        )


class CheckpointFile:
    """One on-disk checkpoint slot with atomic write-then-rename.

    The write path is tuned for the worst-case every-window cadence:
    the temp-sibling path is computed once per process (not per write),
    the file I/O goes through raw ``os.open``/``os.write`` instead of
    the pathlib convenience wrappers, and the parent directory is
    created on demand (first write) rather than probed per write.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self._path_str = str(self.path)
        self._tmp_pid = -1
        self._tmp = ""

    def _tmp_path(self) -> str:
        # Keyed on the pid so a forked worker inheriting this object
        # writes its own sibling instead of racing the parent's.
        pid = os.getpid()
        if pid != self._tmp_pid:
            self._tmp_pid = pid
            self._tmp = f"{self._path_str}.tmp.{pid}"
        return self._tmp

    def exists(self) -> bool:
        """Whether a published checkpoint is present."""
        return self.path.is_file()

    def write(
        self,
        state: EngineState,
        serializer: EngineStateSerializer | None = None,
    ) -> None:
        """Atomically publish ``state``, replacing any prior snapshot.

        The document is serialized before the temp file opens, so an
        unserializable state aborts before touching disk; any I/O
        failure mid-write unlinks the temp sibling, leaving either the
        previous valid checkpoint or nothing.  A ``serializer`` lets
        repeat writers (:class:`~repro.engine.observers.CheckpointObserver`)
        reuse unchanged sections' serialized text between snapshots.
        """
        if serializer is None:
            text = json.dumps(state.to_dict(), sort_keys=True)
        else:
            text = serializer.serialize(state)
        data = (text + "\n").encode()
        tmp = self._tmp_path()
        flags = os.O_WRONLY | os.O_CREAT | os.O_TRUNC
        try:
            try:
                fd = os.open(tmp, flags, 0o666)
            except FileNotFoundError:
                # First write (or someone removed the directory
                # mid-run): create the parent and retry.  Probing with
                # mkdir on *every* write would cost a syscall per
                # checkpoint on the worst-case every-window cadence.
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fd = os.open(tmp, flags, 0o666)
            try:
                view = memoryview(data)
                while view:
                    view = view[os.write(fd, view):]
            finally:
                os.close(fd)
            os.replace(tmp, self._path_str)
        except BaseException:
            # KeyboardInterrupt included: an interrupted run must not
            # leave a partial sibling behind.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load(self) -> EngineState:
        """Read and validate the published snapshot."""
        try:
            raw = json.loads(self.path.read_text())
        except OSError as error:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {error}"
            ) from None
        except ValueError as error:
            raise CheckpointError(
                f"checkpoint {self.path} is not valid JSON: {error}"
            ) from None
        return EngineState.from_dict(raw)

    def remove(self) -> None:
        """Delete the checkpoint and any stale temp siblings (idempotent)."""
        try:
            self.path.unlink(missing_ok=True)
        except OSError:
            pass
        try:
            for stale in self.path.parent.glob(f"{self.path.name}.tmp.*"):
                stale.unlink(missing_ok=True)
        except OSError:
            pass
