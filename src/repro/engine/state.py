"""Serializable engine snapshots and atomic checkpoint files.

An :class:`EngineState` is everything a
:class:`~repro.engine.stepping.SteppingEngine` needs to resume a run at
an exact DTM-window boundary: the clock, the shared accumulators, the
thermal-chain temperatures, the strategy's own state (scheduler queue,
policy hysteresis/PID integrals, rotation counters) and each observer's
state (the trace recorded so far, trace-sampling phase).

Versioning follows the ResultEnvelope rules
(:mod:`repro.api.envelope`): ``version`` is ``"<major>.<minor>"``;
minor bumps only add fields and old snapshots keep loading, major
bumps may rename or remove fields and :meth:`EngineState.from_dict`
rejects a foreign major outright.  Snapshots are plain JSON — floats
round-trip bit-exactly through Python's shortest-repr serialization,
which is what makes a restored run *bit-identical* to an uninterrupted
one rather than merely close.

:class:`CheckpointFile` stores one snapshot on disk with the same
write-then-rename discipline as
:class:`~repro.campaign.stores.JsonDirStore`: the JSON is serialized
*before* the temp file is opened, published with :func:`os.replace`,
and the temp sibling is unlinked on any failure — an interrupted or
abandoned run can leave behind a valid previous checkpoint or nothing,
never a torn or partial file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import CheckpointError

#: Engine snapshot schema version.  Bump the minor for additive
#: changes, the major for breaking ones (same rules as the API's
#: ``SCHEMA_VERSION``; see the module docstring).
ENGINE_STATE_VERSION = "1.0"


def _state_major(version: str) -> int:
    major, _, minor = str(version).partition(".")
    if not major.isdigit() or not minor.isdigit():
        raise CheckpointError(
            f"malformed engine-state version {version!r} "
            f"(expected '<major>.<minor>')"
        )
    return int(major)


@dataclass(frozen=True)
class EngineState:
    """One engine snapshot, taken at a DTM-window boundary."""

    #: Strategy kind the snapshot belongs to (``ch4``, ``ch5``, ...).
    #: Restoring into an engine built for a different kind fails.
    strategy: str
    #: Windows completed so far.
    windows: int
    #: Simulated seconds elapsed.
    now_s: float
    #: The engine-owned accumulators (traffic, energies, peaks, ...).
    accumulators: dict[str, float]
    #: Thermal-chain temperatures (``MemSpot.thermal_state()`` shape).
    thermal: dict[str, Any]
    #: Strategy-owned state (scheduler, policy, rotation counters).
    strategy_state: dict[str, Any]
    #: Per-observer state, in engine attach order.
    observers: list[dict] = field(default_factory=list)
    version: str = ENGINE_STATE_VERSION

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready)."""
        return {
            "version": self.version,
            "strategy": self.strategy,
            "windows": self.windows,
            "now_s": self.now_s,
            "accumulators": dict(self.accumulators),
            "thermal": dict(self.thermal),
            "strategy_state": dict(self.strategy_state),
            "observers": [dict(state) for state in self.observers],
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "EngineState":
        """Rebuild a snapshot, rejecting incompatible majors."""
        if not isinstance(raw, Mapping):
            raise CheckpointError(
                f"engine state must be a JSON object, got {type(raw).__name__}"
            )
        version = str(raw.get("version", ""))
        if _state_major(version) != _state_major(ENGINE_STATE_VERSION):
            raise CheckpointError(
                f"incompatible engine-state version {version!r}: this "
                f"engine speaks major {_state_major(ENGINE_STATE_VERSION)} "
                f"({ENGINE_STATE_VERSION})"
            )
        try:
            return cls(
                strategy=str(raw["strategy"]),
                windows=int(raw["windows"]),
                now_s=float(raw["now_s"]),
                accumulators=dict(raw["accumulators"]),
                thermal=dict(raw["thermal"]),
                strategy_state=dict(raw["strategy_state"]),
                observers=[dict(state) for state in raw.get("observers", [])],
                version=version,
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"malformed engine state: {error!r}"
            ) from None


class CheckpointFile:
    """One on-disk checkpoint slot with atomic write-then-rename."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        """Whether a published checkpoint is present."""
        return self.path.is_file()

    def write(self, state: EngineState) -> None:
        """Atomically publish ``state``, replacing any prior snapshot.

        The document is serialized before the temp file opens, so an
        unserializable state aborts before touching disk; any I/O
        failure mid-write unlinks the temp sibling, leaving either the
        previous valid checkpoint or nothing.
        """
        text = json.dumps(state.to_dict(), sort_keys=True)
        tmp = self.path.with_suffix(f"{self.path.suffix}.tmp.{os.getpid()}")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(text + "\n")
            os.replace(tmp, self.path)
        except BaseException:
            # KeyboardInterrupt included: an interrupted run must not
            # leave a partial sibling behind.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise

    def load(self) -> EngineState:
        """Read and validate the published snapshot."""
        try:
            raw = json.loads(self.path.read_text())
        except OSError as error:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {error}"
            ) from None
        except ValueError as error:
            raise CheckpointError(
                f"checkpoint {self.path} is not valid JSON: {error}"
            ) from None
        return EngineState.from_dict(raw)

    def remove(self) -> None:
        """Delete the checkpoint and any stale temp siblings (idempotent)."""
        try:
            self.path.unlink(missing_ok=True)
        except OSError:
            pass
        try:
            for stale in self.path.parent.glob(f"{self.path.name}.tmp.*"):
                stale.unlink(missing_ok=True)
        except OSError:
            pass
