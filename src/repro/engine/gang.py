"""Gang execution — many compatible cells stepped in lock-step.

A campaign grid pays the per-window cadence once per cell: sensor
reading, policy decision, level-1 evaluation, kernel step, accounting.
A *gang* steps N compatible cells through that cadence together, with
one :class:`~repro.core.kernel.GridMemSpot` advancing all N thermal
chains per window.  Two modes, chosen by how much the cells share:

- **lockstep** — cells share the DTM cadence (equal ``dt_s``) and the
  chain topology but may differ in policy/workload.  Each cell's
  strategy still runs every window (:meth:`SteppingEngine.begin_window`);
  only the thermal kernel dispatch is batched.
- **leader** — cells additionally share every workload-relevant axis
  (mix, policy, copies, duty cycle, bandwidth scale, ...) and their
  policy is :attr:`~repro.dtm.base.DTMPolicy.thermally_insensitive` —
  the decision provably never reads a temperature.  The per-window
  strategy work is then *identical* across the gang, so one leader
  cell's strategy runs and its :class:`~repro.engine.stepping.WindowOutcome`
  broadcasts to every follower.  This is the mode that makes a
  homogeneous thermal-sensitivity sweep (e.g. a no-limit baseline
  under N inlet temperatures) cost roughly one cell's strategy work
  plus N vectorized thermal lanes.

Bit-identity is the design constraint, not an afterthought: gangs call
the exact :meth:`~repro.engine.stepping.SteppingEngine.begin_window` /
:meth:`~repro.engine.stepping.SteppingEngine.apply_window` halves a
solo run uses, the grid kernel is bit-identical to per-cell stepping,
and leader-mode followers receive the leader's strategy-owned
accumulators by *assignment* (their own sequential additions would
have produced exactly these bits — same operations, same order).  The
property suite pins gang results to serial runs byte for byte.

:func:`plan_gangs` is the safe entry point: it groups arbitrary cells
into leader gangs, lockstep gangs, and solo leftovers, proving the
leader precondition from the spec fields (everything except the
declared thermal-only axes must match) plus the policy's insensitivity
marker.  Construct :class:`GangStrategy` directly only with cells you
have proven compatible yourself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.kernel import BatchedMemSpot, GridMemSpot, _import_numpy
from repro.engine.observers import ProgressObserver, TraceRecorder
from repro.engine.state import EngineState
from repro.engine.stepping import SteppingEngine
from repro.errors import CheckpointError, ConfigurationError
from repro.obs.metrics import METRICS

#: Per spec kind: fields that influence only the thermal chain (or pure
#: presentation), never the strategy's decision/evaluation/advance.
#: Two thermally-insensitive cells whose remaining fields match produce
#: identical per-window outcomes and may share one leader.  Kinds not
#: listed here never form leader gangs (lockstep still applies).
LEADER_IRRELEVANT_FIELDS: dict[str, frozenset[str]] = {
    "ch4": frozenset(
        {
            "cooling",
            "ambient",
            "interaction",
            "inlet_delta_c",
            "channels",
            "dimms_per_channel",
            # Release points parameterize thermally *sensitive*
            # policies; an insensitive one (the leader gate) ignores
            # them by definition.
            "amb_trp_c",
            "dram_trp_c",
            # Observer/presentation knobs: traces record per cell.
            "record_trace",
            "scenario",
        }
    ),
}


def leader_signature(spec: Any) -> str | None:
    """The workload-identity key for leader grouping, or None.

    Serializes every spec field *except* the kind's declared
    thermal-only axes (same field walk as
    :func:`repro.campaign.spec.spec_key`).  Cells may share a leader
    only when their signatures match **and** their strategies are
    thermally insensitive; kinds with no declared axis split always
    return None.
    """
    irrelevant = LEADER_IRRELEVANT_FIELDS.get(getattr(spec, "kind", None))
    if irrelevant is None:
        return None
    fields = {k: v for k, v in spec.__dict__.items() if k not in irrelevant}
    return f"{spec.kind}|{json.dumps(fields, sort_keys=True, default=str)}"


class _VectorEpoch:
    """Hoisted state for the batched lockstep fast path.

    One instance spans one membership generation of a gang (built
    lazily, dropped on retirement/restore/flush).  It shadows the
    engine-owned per-window accounting in flat arrays — peaks, energy
    integrals, clocks — and carries the per-policy-class grouping that
    :meth:`~repro.dtm.base.DTMPolicy.decide_all` batches over, so the
    per-window cost of N thermally-sensitive cells is a handful of
    array operations plus the strategies' own scheduler work instead of
    N full ``begin_window``/``apply_window`` round trips.  The arrays
    are scattered back into the engines (and staged policy state
    committed via ``apply_all``) at every point where engine or policy
    state becomes externally visible.
    """

    __slots__ = (
        "engines",
        "strategies",
        "window_fns",
        "done_fns",
        "groups",
        "grid",
        "np",
        "horizons",
        "min_horizon",
        "progress_observers",
        "any_progress",
        "amb",
        "dram",
        "windows",
        "now",
        "peak_amb",
        "peak_dram",
        "amb_int",
        "mem_e",
        "cpu_e",
    )


class GangStrategy:
    """Drives N compatible engines window by window through one grid.

    ``mode`` is ``"lockstep"`` or ``"leader"`` (see the module
    docstring); ``backend`` selects the
    :class:`~repro.core.kernel.GridMemSpot` kernel backend.  The gang
    owns no results — each engine finalizes its own, exactly as a solo
    run would — and cells that finish early retire from the grid while
    the rest keep stepping.
    """

    def __init__(
        self,
        engines: Sequence[SteppingEngine],
        *,
        mode: str = "lockstep",
        backend: str = "auto",
    ) -> None:
        engines = list(engines)
        if not engines:
            raise ConfigurationError("a gang needs at least one engine")
        if mode not in ("lockstep", "leader"):
            raise ConfigurationError(
                f"gang mode must be 'lockstep' or 'leader', got {mode!r}"
            )
        dt = engines[0].dt_s
        for engine in engines:
            if engine.dt_s != dt:
                raise ConfigurationError(
                    "gang cells must share the DTM window length "
                    f"(got {engine.dt_s} and {dt})"
                )
            if not isinstance(engine.strategy.memspot, BatchedMemSpot):
                raise ConfigurationError(
                    "gang cells need BatchedMemSpot kernels "
                    f"(got {type(engine.strategy.memspot).__name__})"
                )
        if mode == "leader":
            kinds = {engine.strategy.kind for engine in engines}
            if len(kinds) > 1:
                raise ConfigurationError(
                    f"a leader gang cannot mix strategy kinds {sorted(kinds)}"
                )
            for engine in engines:
                if not getattr(engine.strategy, "thermally_insensitive", False):
                    raise ConfigurationError(
                        "leader mode requires thermally-insensitive "
                        "strategies (the policy must never read a "
                        "temperature); use lockstep mode instead"
                    )
        self.mode = mode
        self.dt_s = dt
        self._engines = engines
        self._backend_choice = backend
        self._active = [
            index for index, engine in enumerate(engines) if not engine.done
        ]
        #: The active engines themselves, cached so the per-window hot
        #: path does no index re-mapping; rebuilt only on membership
        #: changes (retirement, restore).
        self._active_engines = [engines[j] for j in self._active]
        self._grid: GridMemSpot | None = None
        #: Vector fast-path state: None = not yet evaluated for the
        #: current membership, False = ineligible (per-cell fallback),
        #: else the live :class:`_VectorEpoch`.
        self._vector: Any = None
        if mode == "leader":
            METRICS.counter_inc(
                "repro_gang_step_path_total",
                "Gang cells by stepping path",
                amount=float(len(engines)),
                path="leader",
            )

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._engines)

    @property
    def engines(self) -> tuple[SteppingEngine, ...]:
        """Member engines, in gang (and result) order."""
        return tuple(self._engines)

    @property
    def active_cells(self) -> int:
        """Cells still stepping (finished ones have retired)."""
        return len(self._active)

    @property
    def kernel_backend(self) -> str:
        """The resolved grid backend for the current membership."""
        return self._ensure_grid().backend if self._active else "python"

    @property
    def done(self) -> bool:
        """Whether every cell has finished its batch."""
        return not self._active

    # -- stepping ----------------------------------------------------------

    def _ensure_grid(self) -> GridMemSpot:
        if self._grid is None:
            self._grid = GridMemSpot(
                [self._engines[j].strategy.memspot for j in self._active],
                backend=self._backend_choice,
            )
        return self._grid

    def _sync_grid(self) -> None:
        if self._grid is not None:
            self._grid.sync()

    def _sync_follower_strategies(self) -> None:
        """Overlay the leader's strategy state onto every follower.

        In leader mode follower strategies never step; at any boundary
        where their state becomes visible (retirement, checkpoint,
        finalize) they adopt the leader's — which is the state their
        own identical window stream would have produced.  The JSON
        round-trip gives each follower private containers.
        """
        if self.mode != "leader" or len(self._active) < 2:
            return
        state = json.dumps(self._engines[self._active[0]].strategy.state_dict())
        for j in self._active[1:]:
            self._engines[j].strategy.load_state_dict(json.loads(state))

    def _retire_finished(self) -> None:
        # Leader mode: follower strategies never step, so their done
        # flag (scheduler state) is stale — only the leader's is live,
        # and when it flips every follower is done by construction.
        # Probing it alone keeps the hot path at one done check per
        # window instead of N; the overlay then makes the followers'
        # own flags agree before the shared retirement scan (without
        # it they would run one ghost window after the batch ended).
        if self.mode == "leader":
            if not self._engines[self._active[0]].done:
                return
            self._sync_follower_strategies()
        still = [j for j in self._active if not self._engines[j].done]
        if len(still) == len(self._active):
            return
        # Write thermal state back before shrinking the grid: retiring
        # cells must leave with their final temperatures, and the next
        # grid re-pulls the survivors'.
        self._sync_follower_strategies()
        self._sync_grid()
        self._active = still
        self._active_engines = [self._engines[j] for j in still]
        self._grid = None
        self._vector = None

    # -- vector fast path --------------------------------------------------

    def _build_vector_epoch(self) -> Any:
        """Build the batched-lockstep state, or False when ineligible.

        The fast path replays every per-window operation a solo engine
        performs, so it only engages when nothing else watches the
        per-window stream: no per-phase tracing, strategies that expose
        the split decide/window surface, and observers that provably
        cannot see a difference (a disabled :class:`TraceRecorder`, or
        a :class:`ProgressObserver` — fired at exactly the windows it
        would fire on solo, against flushed engine state).
        """
        engines = self._active_engines
        strategies = []
        progress_observers: list[list[ProgressObserver]] = []
        for engine in engines:
            strategy = engine.strategy
            if engine._tracing is not None:
                return False
            if not hasattr(strategy, "dtm_policy") or not hasattr(
                strategy, "window_with_decision"
            ):
                return False
            watchers: list[ProgressObserver] = []
            for obs in engine.observers:
                if type(obs) is TraceRecorder and not obs.enabled:
                    continue
                if type(obs) is ProgressObserver:
                    watchers.append(obs)
                    continue
                return False
            strategies.append(strategy)
            progress_observers.append(watchers)

        ep = _VectorEpoch()
        ep.engines = list(engines)
        ep.strategies = strategies
        ep.window_fns = [
            getattr(s, "window_fast", None) or s.window_with_decision
            for s in strategies
        ]
        ep.done_fns = [
            (engine.strategy.done, engine) for engine in engines
        ]
        groups: dict[type, list] = {}
        for position, strategy in enumerate(strategies):
            policy = strategy.dtm_policy
            group = groups.get(type(policy))
            if group is None:
                groups[type(policy)] = group = [type(policy), [], [], None]
            group[1].append(position)
            group[2].append(policy)
        ep.groups = list(groups.values())
        ep.grid = self._ensure_grid()
        ep.np = _import_numpy() if ep.grid.backend == "numpy" else None
        ep.horizons = [s.max_sim_horizon() for s in strategies]
        ep.min_horizon = min(
            (h for h in ep.horizons if h is not None), default=None
        )
        ep.progress_observers = progress_observers
        ep.any_progress = any(progress_observers)
        ep.amb = [engine.sample.amb_c for engine in engines]
        ep.dram = [engine.sample.dram_c for engine in engines]
        ep.windows = [engine.windows for engine in engines]
        ep.now = [engine.now_s for engine in engines]
        peak_amb = [engine.peak_amb_c for engine in engines]
        peak_dram = [engine.peak_dram_c for engine in engines]
        amb_int = [engine.ambient_integral for engine in engines]
        mem_e = [engine.memory_energy_j for engine in engines]
        cpu_e = [engine.cpu_energy_j for engine in engines]
        if ep.np is not None:
            np = ep.np
            peak_amb = np.asarray(peak_amb, dtype=np.float64)
            peak_dram = np.asarray(peak_dram, dtype=np.float64)
            amb_int = np.asarray(amb_int, dtype=np.float64)
            mem_e = np.asarray(mem_e, dtype=np.float64)
            cpu_e = np.asarray(cpu_e, dtype=np.float64)
        ep.peak_amb = peak_amb
        ep.peak_dram = peak_dram
        ep.amb_int = amb_int
        ep.mem_e = mem_e
        ep.cpu_e = cpu_e
        return ep

    def _scatter_vector_state(self, ep: _VectorEpoch) -> None:
        """Write the epoch's shadow accumulators into the engines."""
        if ep.np is not None:
            peak_amb = ep.peak_amb.tolist()
            peak_dram = ep.peak_dram.tolist()
            amb_int = ep.amb_int.tolist()
            mem_e = ep.mem_e.tolist()
            cpu_e = ep.cpu_e.tolist()
        else:
            peak_amb = ep.peak_amb
            peak_dram = ep.peak_dram
            amb_int = ep.amb_int
            mem_e = ep.mem_e
            cpu_e = ep.cpu_e
        for i, engine in enumerate(ep.engines):
            engine.peak_amb_c = peak_amb[i]
            engine.peak_dram_c = peak_dram[i]
            engine.ambient_integral = amb_int[i]
            engine.memory_energy_j = mem_e[i]
            engine.cpu_energy_j = cpu_e[i]
            engine.windows = ep.windows[i]
            engine.now_s = ep.now[i]

    def _flush_vector(self) -> None:
        """Fully commit and drop a live vector epoch.

        Engine accumulators, staged policy state (``apply_all``),
        thermal state, and each engine's live ``sample`` all become
        consistent with what per-cell stepping would have left — the
        same boundary contract :meth:`SteppingEngine.restore` relies
        on (``sample()`` at a window boundary equals the last step's
        sample in every field read before the next step).
        """
        ep = self._vector
        if not isinstance(ep, _VectorEpoch):
            return
        self._vector = None
        self._scatter_vector_state(ep)
        for group in ep.groups:
            cls, _positions, policies, pending = group
            cls.apply_all(policies, pending)
            group[3] = None
        self._sync_grid()
        for engine in ep.engines:
            engine.sample = engine.strategy.memspot.sample()

    def _step_vector(self, ep: _VectorEpoch) -> bool:
        """One batched lockstep window (the vector fast path)."""
        engines = ep.engines
        count = len(engines)
        dt = self.dt_s
        now = ep.now
        # Runaway-horizon guard, hoisted: nobody can trip a horizon
        # while the latest clock is below the earliest one.
        if ep.min_horizon is not None and max(now) > ep.min_horizon:
            for i, engine in enumerate(engines):
                horizon = ep.horizons[i]
                if horizon is not None and now[i] > horizon:
                    strategy = ep.strategies[i]
                    self._flush_vector()
                    raise strategy.timeout_error(engine)

        # Batched policy decisions, one decide_all per policy class.
        amb = ep.amb
        dram = ep.dram
        groups = ep.groups
        if len(groups) == 1:
            group = groups[0]
            decisions, group[3] = group[0].decide_all(
                group[2], amb, dram, dt, group[3]
            )
        else:
            decisions = [None] * count
            for group in groups:
                cls, positions, policies, pending = group
                got, group[3] = cls.decide_all(
                    policies,
                    [amb[i] for i in positions],
                    [dram[i] for i in positions],
                    dt,
                    pending,
                )
                for i, decision in zip(positions, got):
                    decisions[i] = decision

        # Per-cell strategy windows under the precomputed decisions.
        outcomes = [
            fn(engine, decision)
            for fn, engine, decision in zip(ep.window_fns, engines, decisions)
        ]

        # One grid step for all thermal chains, no sample objects.
        amb_peak, dram_peak, ambient_c, power = ep.grid.step_all_raw(
            [o.read_bytes_per_s for o in outcomes],
            [o.write_bytes_per_s for o in outcomes],
            [o.heating_sum for o in outcomes],
            dt,
        )

        # apply_window accounting over flat arrays — elementwise, so
        # bit-identical to the per-cell max/multiply/add sequence.
        np = ep.np
        if np is not None:
            ep.peak_amb = np.maximum(ep.peak_amb, amb_peak)
            ep.peak_dram = np.maximum(ep.peak_dram, dram_peak)
            ep.amb_int = ep.amb_int + ambient_c * dt
            ep.mem_e = ep.mem_e + power * dt
            cpu_w = np.asarray(
                [o.cpu_power_w for o in outcomes], dtype=np.float64
            )
            ep.cpu_e = ep.cpu_e + cpu_w * dt
            ep.amb = amb_peak.tolist()
            ep.dram = dram_peak.tolist()
        else:
            peak_amb = ep.peak_amb
            peak_dram = ep.peak_dram
            amb_int = ep.amb_int
            mem_e = ep.mem_e
            cpu_e = ep.cpu_e
            for i in range(count):
                if amb_peak[i] > peak_amb[i]:
                    peak_amb[i] = amb_peak[i]
                if dram_peak[i] > peak_dram[i]:
                    peak_dram[i] = dram_peak[i]
                amb_int[i] += ambient_c[i] * dt
                mem_e[i] += power[i] * dt
                cpu_e[i] += outcomes[i].cpu_power_w * dt
            ep.amb = amb_peak
            ep.dram = dram_peak

        # Clock advance plus the progress-observer cadence.
        windows = ep.windows
        fired = False
        if ep.any_progress:
            watchers = ep.progress_observers
            for i in range(count):
                now[i] += dt
                w = windows[i] + 1
                windows[i] = w
                for obs in watchers[i]:
                    if w % obs.every_windows == 0:
                        fired = True
        else:
            for i in range(count):
                now[i] += dt
                windows[i] += 1
        if fired:
            # Observers see flushed engine state at exactly the windows
            # they would fire on solo (their own modulo re-checks).
            self._scatter_vector_state(ep)
            for i, engine in enumerate(engines):
                for obs in ep.progress_observers[i]:
                    obs.on_window(engine)

        for done, engine in ep.done_fns:
            if done(engine):
                self._flush_vector()
                self._retire_finished()
                return True
        return True

    def step_window(self) -> bool:
        """Advance every unfinished cell by one window.

        Returns False (and does nothing) once the gang is done.
        """
        if not self._active:
            return False
        engines = self._active_engines
        if self.mode == "lockstep":
            epoch = self._vector
            if epoch is None:
                epoch = self._vector = self._build_vector_epoch()
                METRICS.counter_inc(
                    "repro_gang_step_path_total",
                    "Gang cells by stepping path",
                    amount=float(len(engines)),
                    path="vector" if epoch is not False else "fallback",
                )
            if epoch is not False:
                return self._step_vector(epoch)
        if self.mode == "leader":
            leader = engines[0]
            outcome = leader.begin_window()
            for follower in engines[1:]:
                # Assignment, not addition: the leader's accumulators
                # hold exactly the bits each follower's own (identical)
                # per-slot additions would have produced.
                follower.traffic_bytes = leader.traffic_bytes
                follower.l2_misses = leader.l2_misses
                follower.instructions = leader.instructions
            outcomes = [outcome] * len(engines)
            samples = self._ensure_grid().step_all_uniform(
                outcome.read_bytes_per_s,
                outcome.write_bytes_per_s,
                outcome.heating_sum,
                self.dt_s,
            )
        else:
            outcomes = [engine.begin_window() for engine in engines]
            samples = self._ensure_grid().step_all(
                [o.read_bytes_per_s for o in outcomes],
                [o.write_bytes_per_s for o in outcomes],
                [o.heating_sum for o in outcomes],
                self.dt_s,
            )
        for engine, outcome, sample in zip(engines, outcomes, samples):
            engine.apply_window(outcome, sample)
        self._retire_finished()
        return True

    def step_windows(self, count: int) -> int:
        """Advance up to ``count`` windows; returns how many ran."""
        if count < 0:
            raise ConfigurationError("cannot step a negative window count")
        stepped = 0
        while stepped < count and self.step_window():
            stepped += 1
        return stepped

    def run_to_completion(self) -> list[Any]:
        """Run every cell to completion; results in gang order."""
        while self.step_window():
            pass
        return self.finish()

    def finish(self) -> list[Any]:
        """Finalize every cell (idempotent), in gang order."""
        self._flush_vector()
        self._sync_follower_strategies()
        self._sync_grid()
        return [engine.finish() for engine in self._engines]

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> list[EngineState]:
        """Per-cell snapshots at the current window boundary.

        Thermal state is synced out of the grid and leader-mode
        follower strategies adopt the leader's state first, so each
        snapshot equals the one a solo run of that cell would have
        written — restoring into fresh solo engines (or a fresh gang)
        resumes bit-identically.
        """
        self._flush_vector()
        self._sync_follower_strategies()
        self._sync_grid()
        return [engine.checkpoint() for engine in self._engines]

    def restore(self, states: Sequence[EngineState]) -> None:
        """Resume from per-cell snapshots (gang order, one per cell)."""
        if len(states) != len(self._engines):
            raise CheckpointError(
                f"gang restore needs {len(self._engines)} states, "
                f"got {len(states)}"
            )
        for engine, state in zip(self._engines, states):
            engine.restore(state)
        self._active = [
            index
            for index, engine in enumerate(self._engines)
            if not engine.done
        ]
        self._active_engines = [self._engines[j] for j in self._active]
        self._grid = None  # re-pull restored thermal state lazily
        self._vector = None  # shadow state is stale; rebuild lazily


@dataclass(frozen=True)
class PlannedGang:
    """One gang plus the campaign cells it executes, aligned by index."""

    #: (cache key, spec) per member, in gang order.
    cells: tuple[tuple[str, Any], ...]
    gang: GangStrategy


@dataclass(frozen=True)
class GangPlan:
    """The output of :func:`plan_gangs`: gangs plus solo leftovers."""

    gangs: tuple[PlannedGang, ...]
    #: Cells that could not join any gang (no engine factory, scalar
    #: kernel, no compatible partner) — run these per cell.
    solo: tuple[tuple[str, Any], ...]

    @property
    def ganged_cells(self) -> int:
        """How many cells run inside gangs."""
        return sum(len(planned.cells) for planned in self.gangs)


def _chunked(items: list, size: int) -> list[list]:
    return [items[i : i + size] for i in range(0, len(items), size)]


def plan_gangs(
    cells: Sequence[tuple[str, Any]],
    *,
    batch_cells: int = 16,
    backend: str = "auto",
) -> GangPlan:
    """Group campaign cells into executable gangs.

    ``cells`` are deduplicated ``(cache key, spec)`` pairs.  Cells
    group by (kind, window length, chain topology); within a group,
    thermally-insensitive cells with equal :func:`leader_signature`
    form leader gangs and the rest form lockstep gangs, each capped at
    ``batch_cells`` members.  Cells with no engine factory, a
    non-batched kernel, or no compatible partner come back in ``solo``
    (order preserved) for per-cell execution.
    """
    from repro.campaign.spec import engine_for_spec, runner_for

    if batch_cells < 2:
        raise ConfigurationError("batch_cells must be >= 2")
    solo: list[tuple[str, Any]] = []
    groups: dict[tuple, list] = {}
    for key, spec in cells:
        if runner_for(spec.kind).make_engine is None:
            solo.append((key, spec))
            continue
        engine = engine_for_spec(spec)
        memspot = engine.strategy.memspot
        if not isinstance(memspot, BatchedMemSpot):
            solo.append((key, spec))
            continue
        group_key = (spec.kind, engine.dt_s, memspot.dimms_per_channel)
        groups.setdefault(group_key, []).append((key, spec, engine))

    gangs: list[PlannedGang] = []

    def emit(members: list, mode: str) -> None:
        for chunk in _chunked(members, batch_cells):
            if len(chunk) < 2:
                # A gang of one is just overhead; run the cell solo.
                solo.extend((key, spec) for key, spec, _ in chunk)
                continue
            gangs.append(
                PlannedGang(
                    cells=tuple((key, spec) for key, spec, _ in chunk),
                    gang=GangStrategy(
                        [engine for _, _, engine in chunk],
                        mode=mode,
                        backend=backend,
                    ),
                )
            )

    for members in groups.values():
        leaders: dict[str, list] = {}
        lockstep: list = []
        for member in members:
            _, spec, engine = member
            signature = (
                leader_signature(spec)
                if getattr(engine.strategy, "thermally_insensitive", False)
                else None
            )
            if signature is None:
                lockstep.append(member)
            else:
                leaders.setdefault(signature, []).append(member)
        for family in leaders.values():
            if len(family) < 2:
                lockstep.extend(family)
            else:
                emit(family, "leader")
        emit(lockstep, "lockstep")
    plan = GangPlan(gangs=tuple(gangs), solo=tuple(solo))
    if plan.gangs:
        METRICS.counter_inc(
            "repro_gang_planned_total",
            "Gangs produced by plan_gangs",
            amount=float(len(plan.gangs)),
        )
    if plan.ganged_cells:
        METRICS.counter_inc(
            "repro_gang_cells_total",
            "Campaign cells by gang placement",
            amount=float(plan.ganged_cells),
            placement="ganged",
        )
    if plan.solo:
        METRICS.counter_inc(
            "repro_gang_cells_total",
            "Campaign cells by gang placement",
            amount=float(len(plan.solo)),
            placement="solo",
        )
    return plan
