"""The unified stepping engine (see :mod:`repro.engine.stepping`).

Layer stack::

    repro.engine          <- this package: cadence, checkpoints, observers
    repro.core.simulator  <- Chapter4Strategy / TwoLevelSimulator
    repro.testbed.runner  <- ServerStrategy / HomogeneousStrategy
    repro.campaign        <- cached, deduplicated cells over the engine
    repro.cluster         <- time-sliced, preemptible distributed cells
    repro.api / cli       <- envelopes, /v1/progress, --checkpoint-dir
"""

from repro.engine.gang import (
    GangPlan,
    GangStrategy,
    PlannedGang,
    plan_gangs,
)
from repro.engine.observers import (
    CheckpointObserver,
    Observer,
    ProgressObserver,
    SteadyStateGuard,
    TraceRecorder,
)
from repro.engine.progress import PROGRESS, ProgressBroker
from repro.engine.state import (
    ENGINE_STATE_VERSION,
    CheckpointFile,
    EngineState,
    EngineStateSerializer,
)
from repro.engine.stepping import RunStrategy, SteppingEngine, WindowOutcome

__all__ = [
    "ENGINE_STATE_VERSION",
    "PROGRESS",
    "CheckpointFile",
    "CheckpointObserver",
    "EngineState",
    "EngineStateSerializer",
    "GangPlan",
    "GangStrategy",
    "Observer",
    "PlannedGang",
    "ProgressBroker",
    "ProgressObserver",
    "RunStrategy",
    "SteadyStateGuard",
    "SteppingEngine",
    "TraceRecorder",
    "WindowOutcome",
]
