"""Quickstart: run one workload under one DTM scheme.

Simulates the W1 batch job (swim, mgrid, applu, galgel) on the paper's
four-core FBDIMM platform with AOHS_1.5 cooling, first without any
thermal limit and then under DTM-ACG, and prints what the thermal
constraint costs.

Run:  python examples/quickstart.py
"""

from repro import SimulationConfig, TwoLevelSimulator
from repro.core.windowmodel import WindowModel
from repro.dtm import DTMACG
from repro.dtm.base import NoLimitPolicy


def main() -> None:
    # One shared window model keeps the level-1 memoization across runs.
    window_model = WindowModel()
    config = SimulationConfig(mix_name="W1", copies=2)

    baseline = TwoLevelSimulator(config, NoLimitPolicy(), window_model=window_model).run()
    print("No thermal limit:")
    print(f"  batch runtime     : {baseline.runtime_s:8.1f} s")
    print(f"  peak AMB temp     : {baseline.peak_amb_c:8.2f} degC  "
          f"(exceeds the 110 degC TDP -> unsafe!)")
    print(f"  memory traffic    : {baseline.traffic_bytes / 1e12:8.2f} TB")

    managed = TwoLevelSimulator(config, DTMACG(), window_model=window_model).run()
    print("\nDTM-ACG (adaptive core gating):")
    print(f"  batch runtime     : {managed.runtime_s:8.1f} s  "
          f"({managed.normalized_runtime(baseline):.2f}x no-limit)")
    print(f"  peak AMB temp     : {managed.peak_amb_c:8.2f} degC  (safe)")
    print(f"  memory traffic    : {managed.traffic_bytes / 1e12:8.2f} TB  "
          f"({managed.normalized_traffic(baseline):.2f}x — the shared-L2 relief)")
    print(f"  CPU energy        : {managed.cpu_energy_j / 1e3:8.1f} kJ")
    print(f"  memory energy     : {managed.memory_energy_j / 1e3:8.1f} kJ")


if __name__ == "__main__":
    main()
