"""Compare every DTM scheme on one workload (the Fig. 4.3 experiment).

Runs W1 under all seven schemes (TS, BW, ACG, CDVFS and the PID
variants) plus the no-limit ideal, and prints normalized runtime,
traffic, energies and peak temperatures.

Run:  python examples/dtm_comparison.py [mix] [cooling]
e.g.  python examples/dtm_comparison.py W2 FDHS_1.0
"""

import sys

from repro import SimulationConfig, TwoLevelSimulator
from repro.analysis.tables import format_table
from repro.core.windowmodel import WindowModel
from repro.dtm import DTMACG, DTMBW, DTMCDVFS, DTMTS, make_pid_policy
from repro.dtm.base import NoLimitPolicy
from repro.params.thermal_params import COOLING_CONFIGS


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "W1"
    cooling = sys.argv[2] if len(sys.argv) > 2 else "AOHS_1.5"
    window_model = WindowModel()
    config = SimulationConfig(mix_name=mix, copies=2, cooling=COOLING_CONFIGS[cooling])

    policies = [
        NoLimitPolicy(),
        DTMTS(),
        DTMBW(),
        DTMACG(),
        DTMCDVFS(),
        make_pid_policy("bw"),
        make_pid_policy("acg"),
        make_pid_policy("cdvfs"),
    ]
    baseline = None
    rows = []
    for policy in policies:
        result = TwoLevelSimulator(config, policy, window_model=window_model).run()
        if baseline is None:
            baseline = result
        rows.append(
            [
                policy.name,
                result.runtime_s / baseline.runtime_s,
                result.traffic_bytes / baseline.traffic_bytes,
                result.cpu_energy_j / baseline.cpu_energy_j,
                result.memory_energy_j / baseline.memory_energy_j,
                result.peak_amb_c,
                result.peak_dram_c,
            ]
        )
    print(f"Workload {mix}, cooling {cooling}, normalized to No-limit:\n")
    print(
        format_table(
            ["scheme", "runtime", "traffic", "cpu E", "mem E", "peak AMB", "peak DRAM"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
