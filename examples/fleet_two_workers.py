"""Scale-out walkthrough: a campaign grid on a 2-worker HTTP fleet.

Boots two real ``python -m repro worker`` subprocesses on ephemeral
ports (:class:`LocalFleet`), shards a Chapter 4 campaign grid across
them with :class:`HttpWorkerBackend`, and then shows the cache
warm-through: the coordinator merged every worker payload into the
local result store, so re-running the same grid locally is instant
and all cache hits.

On a multi-machine fleet you would skip ``LocalFleet`` and pass the
workers' URLs directly::

    HttpWorkerBackend(["http://host-a:9001", "http://host-b:9001"])

Run:  PYTHONPATH=src python examples/fleet_two_workers.py
"""

import time

from repro.analysis.specs import Chapter4Spec
from repro.campaign import Campaign, MemoryStore, sweep
from repro.cluster import HttpWorkerBackend, LocalFleet


def main() -> None:
    specs = sweep(
        Chapter4Spec,
        {"mix": ("W1", "W2"), "policy": ("ts", "bw", "acg")},
        copies=1,
    )
    store = MemoryStore()  # the coordinator's store (stands in for .exp_cache)

    print("booting 2 local workers ...")
    with LocalFleet(2) as fleet:
        print(f"fleet up: {', '.join(fleet.urls)}\n")
        with HttpWorkerBackend(fleet.urls) as backend:
            started = time.perf_counter()
            print("distributed run (cells stream back in grid order):")
            for spec, result, hit, seconds in Campaign(
                specs, store=store, backend=backend
            ).iter_run():
                provenance = "hit " if hit else f"{seconds:5.2f}s"
                print(f"  {spec.mix}/{spec.policy:<4} [{provenance}]  "
                      f"runtime {result.runtime_s:7.1f} s  "
                      f"peak AMB {result.peak_amb_c:6.2f} degC")
            print(f"fleet wall time: {time.perf_counter() - started:.2f} s")
            for stats in backend.fleet_stats():
                print(f"  {stats['url']}: {stats['completed_cells']} cells")

    # The fleet is gone; the coordinator's store kept every payload.
    print("\nlocal re-run over the warmed store (no fleet, no compute):")
    started = time.perf_counter()
    rerun = Campaign(specs, store=store)
    hits = sum(1 for _, _, hit, _ in rerun.iter_run() if hit)
    print(f"  {hits}/{len(specs)} cache hits "
          f"in {time.perf_counter() - started:.3f} s")


if __name__ == "__main__":
    main()
