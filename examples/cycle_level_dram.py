"""Drive the cycle-level FBDIMM simulator directly.

Shows the substrate underneath the analytic model: DDR2 bank timing,
variable read latency along the AMB daisy chain, bandwidth saturation,
and the open-loop activation throttle.

Run:  python examples/cycle_level_dram.py
"""

from repro.analysis.tables import format_table
from repro.dram.address import AddressMapper
from repro.dram.controller import ChannelController
from repro.dram.system import MemorySystem
from repro.dram.trafficgen import poisson_trace, stream_trace


def main() -> None:
    # 1. Variable read latency: a request to a far DIMM pays extra hops.
    mapper = AddressMapper(channels=1, dimms_per_channel=8, banks_per_dimm=8)
    rows = []
    for dimm in (0, 3, 7):
        controller = ChannelController(dimms=8, banks_per_dimm=8)
        from repro.dram.commands import MemoryRequest, RequestKind

        request = MemoryRequest(RequestKind.READ, address=dimm * 64, arrival_s=0.0)
        [done] = controller.run([request], mapper.decode)
        rows.append([f"DIMM {dimm}", done.latency_s * 1e9])
    print("Unloaded read latency along the daisy chain (VRL):\n")
    print(format_table(["target", "latency (ns)"], rows))

    # 2. Peak bandwidth of the full Table 4.1 system.
    system = MemorySystem()
    system.run(stream_trace(count=6000, interarrival_s=0.0))
    print(f"\nSaturated stream bandwidth: "
          f"{system.total_stats().throughput_gbps():.2f} GB/s "
          f"(4 physical channels of FBDIMM-DDR2-667)")

    # 3. Latency growth under load (the queueing curve the analytic
    #    window model is calibrated against).
    rows = []
    for label, interarrival in (("light", 2e-6), ("moderate", 5e-8), ("heavy", 1.2e-8)):
        system = MemorySystem()
        system.run(
            poisson_trace(
                count=3000, address_space_bytes=1 << 30,
                mean_interarrival_s=interarrival, seed=9,
            )
        )
        stats = system.total_stats()
        rows.append([label, stats.average_latency_s() * 1e9, stats.throughput_gbps()])
    print("\nLatency under load:\n")
    print(format_table(["load", "mean latency (ns)", "throughput (GB/s)"], rows))

    # 4. The Intel-5000X-style open-loop activation throttle: capping
    #    activations per window caps bandwidth (close page = one
    #    activation per 32 B channel transfer).  A short window keeps the
    #    demo's request count manageable.
    window_s = 1e-4
    system = MemorySystem()
    system.set_activation_cap(4000, window_s=window_s)  # 1000/channel/window
    completions = system.run(stream_trace(count=40000, interarrival_s=0.0))
    elapsed = completions[-1].completion_s
    bytes_served = sum(c.request.bytes for c in completions)
    cap_gbps = 4 * 1000 * 32 / window_s / 1e9
    print(f"\nWith a 1000-activation/{window_s * 1e6:.0f}us/channel throttle: "
          f"{bytes_served / elapsed / 1e9:.2f} GB/s sustained "
          f"(cap {cap_gbps:.2f} GB/s)")


if __name__ == "__main__":
    main()
