"""Watch a thermal emergency unfold: AMB temperature traces per scheme.

Reproduces the Figs. 4.5-4.8 view: W1 on AOHS_1.5 under DTM-TS, DTM-BW,
DTM-ACG and DTM-CDVFS (with and without PID), printing a sparkline of
the first 1000 s of each run's hottest-AMB temperature.

Run:  python examples/thermal_emergency_trace.py
"""

from repro import SimulationConfig, TwoLevelSimulator
from repro.analysis.tables import format_series
from repro.core.windowmodel import WindowModel
from repro.dtm import DTMACG, DTMBW, DTMCDVFS, DTMTS, make_pid_policy


def main() -> None:
    window_model = WindowModel()
    config = SimulationConfig(mix_name="W1", copies=2, record_trace=True)
    print("AMB temperature, W1 @ AOHS_1.5, first 1000 s "
          "(TDP 110.0, PID target 109.8):\n")
    for policy in (
        DTMTS(),
        DTMBW(),
        make_pid_policy("bw"),
        DTMACG(),
        make_pid_policy("acg"),
        DTMCDVFS(),
        make_pid_policy("cdvfs"),
    ):
        result = TwoLevelSimulator(config, policy, window_model=window_model).run()
        window = result.trace.window(0.0, 1000.0)
        print(format_series(f"{policy.name:15s}", window.amb_c))
    print(
        "\nExpected shapes (§4.4.2): TS swings 109-110; BW sits ~109.5;\n"
        "PID variants pin ~109.8 with no overshoot."
    )


if __name__ == "__main__":
    main()
