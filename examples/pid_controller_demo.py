"""The PID formal controller in isolation (Eq. 4.1, §4.2.3).

Drives the isolated thermal model of a single DIMM with a synthetic heat
source controlled by the PID controller, showing convergence to the
109.8 degC target without crossing the 110 degC TDP — and what goes
wrong when the anti-windup provisions are removed.

Run:  python examples/pid_controller_demo.py
"""

from repro.analysis.tables import format_series
from repro.dtm.pid import AMB_GAINS, PIDController
from repro.params.thermal_params import AOHS_1_5
from repro.thermal.isolated import DimmThermalModel


def simulate(integral_enable_c: float) -> list[float]:
    """Closed loop: PID output scales the AMB power between 5.1 and 9 W."""
    pid = PIDController(AMB_GAINS, target_c=109.8, integral_enable_c=integral_enable_c)
    dimm = DimmThermalModel(AOHS_1_5, initial_ambient_c=50.0)
    dimm.reset_to(100.7, 78.0)  # idle-stable start
    temperatures = []
    dt = 0.01
    for step in range(60_000):  # 600 s
        amb_temp = dimm.temperatures.amb_c
        output = pid.update(amb_temp, dt)
        performance = pid.normalized(output)  # 0..1
        amb_power = 5.1 + 3.9 * performance
        dram_power = 0.98 + 1.5 * performance
        dimm.step(50.0, amb_power, dram_power, dt)
        if step % 100 == 0:  # sample once per second
            temperatures.append(dimm.temperatures.amb_c)
    return temperatures


def main() -> None:
    with_windup_guard = simulate(integral_enable_c=109.0)
    without_guard = simulate(integral_enable_c=-1e9)  # integral always on
    print("PID-regulated AMB temperature, 600 s (target 109.8, TDP 110):\n")
    print(format_series("anti-windup ON ", with_windup_guard))
    print(format_series("anti-windup OFF", without_guard))
    print(f"\n  with guard   : peak {max(with_windup_guard):7.3f} degC, "
          f"final {with_windup_guard[-1]:7.3f} degC")
    print(f"  without guard: peak {max(without_guard):7.3f} degC, "
          f"final {without_guard[-1]:7.3f} degC")
    print("\nThe §4.3.4 integral-enable threshold keeps the long cold "
          "approach from winding up the integral term.")


if __name__ == "__main__":
    main()
