"""Chapter 5 case study: DTM policies on the modeled servers.

Runs the W1 batch on the PE1950 and SR1500AL models under the four
measured policies (DTM-BW, DTM-ACG, DTM-CDVFS, DTM-COMB), printing the
normalized runtime, L2 miss reduction, CPU power and memory inlet
temperature — the Fig. 5.6 / 5.8 / 5.9 / 5.10 quantities.

Run:  python examples/server_case_study.py [mix]
"""

import sys

from repro.analysis.tables import format_table
from repro.dtm import DTMACG, DTMBW, DTMCDVFS, DTMCOMB
from repro.dtm.base import NoLimitPolicy
from repro.testbed import PE1950, SR1500AL, ServerSimulator, ServerWindowModel


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "W1"
    for platform in (PE1950, SR1500AL):
        window_model = ServerWindowModel(platform)
        policies = [
            NoLimitPolicy(cores=4),
            DTMBW(platform.levels),
            DTMACG(platform.levels, min_active=2),
            DTMCDVFS(platform.levels, stopped_level=4),
            DTMCOMB(platform.levels, min_active=2),
        ]
        baseline = None
        rows = []
        for policy in policies:
            result = ServerSimulator(
                platform, policy, mix, copies=2, window_model=window_model
            ).run()
            if baseline is None:
                baseline = result
            rows.append(
                [
                    policy.name,
                    result.runtime_s / baseline.runtime_s,
                    result.l2_misses / baseline.l2_misses,
                    result.average_cpu_power_w,
                    result.mean_inlet_c,
                    result.peak_amb_c,
                ]
            )
        print(f"\n{platform.name} — {mix}, ambient {platform.system_ambient_c} degC, "
              f"AMB TDP {platform.levels.amb_tdp_c} degC:\n")
        print(
            format_table(
                ["policy", "norm runtime", "norm L2 misses", "CPU power (W)",
                 "inlet (degC)", "peak AMB (degC)"],
                rows,
            )
        )


if __name__ == "__main__":
    main()
