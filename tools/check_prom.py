#!/usr/bin/env python3
"""Strict Prometheus text-exposition checker for the repro /metrics route.

Validates the invariants real scrapers rely on but our hand-rolled
renderer could silently break:

- every sample family is preceded by its ``# HELP`` then ``# TYPE``
  comment, in that order, exactly once;
- families are contiguous (a family's samples never interleave with
  another family's) and each family name appears once;
- metric and label names match the Prometheus grammar; label values
  escape ``\\``, ``"`` and newlines;
- histogram families expose ``_bucket``/``_sum``/``_count`` samples
  (and nothing else), every bucket series ends in ``le="+Inf"``,
  cumulative bucket counts are monotonically non-decreasing, and the
  ``+Inf`` bucket equals the series' ``_count``;
- counter/gauge sample names equal the family name exactly;
- sample values parse as floats (``+Inf``/``-Inf``/``NaN`` allowed).

Usage::

    python tools/check_prom.py http://127.0.0.1:8765/metrics
    python tools/check_prom.py path/to/exposition.txt
    ... | python tools/check_prom.py -

Exit status 0 when clean; 1 with one ``line N: ...`` diagnostic per
violation on stderr otherwise.
"""

from __future__ import annotations

import re
import sys
import urllib.request

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: A sample line: name, optional {labels}, value (timestamp rejected —
#: the repro exporter never emits one).
SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$")
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _family_of(sample_name: str, kind: str) -> str:
    if kind == "histogram":
        for suffix in HISTOGRAM_SUFFIXES:
            if sample_name.endswith(suffix):
                return sample_name[: -len(suffix)]
    return sample_name


def _parse_value(raw: str) -> float | None:
    if raw in ("+Inf", "-Inf", "NaN"):
        return float(raw.replace("Inf", "inf").replace("NaN", "nan"))
    try:
        return float(raw)
    except ValueError:
        return None


def _check_label_escaping(raw_labels: str, lineno: int, errors: list[str]) -> dict:
    labels: dict[str, str] = {}
    consumed = 0
    for match in LABEL_PAIR.finditer(raw_labels):
        # Everything between pairs must be separating commas/space.
        gap = raw_labels[consumed:match.start()]
        if gap.strip(", ") != "":
            errors.append(
                f"line {lineno}: malformed label text {gap!r}"
            )
        consumed = match.end()
        name, value = match.group(1), match.group(2)
        if name in labels:
            errors.append(f"line {lineno}: duplicate label {name!r}")
        # Only \\, \" and \n escapes are legal in label values; walk
        # pairwise so the second byte of a legal \\ never re-matches.
        index = 0
        while index < len(value):
            if value[index] == "\\":
                escape = value[index + 1:index + 2]
                if escape not in ('\\', '"', "n"):
                    bad = "\\" + escape
                    errors.append(
                        f"line {lineno}: illegal escape {bad!r} "
                        f"in label {name!r}"
                    )
                index += 2
            else:
                index += 1
        labels[name] = value
    tail = raw_labels[consumed:]
    if tail.strip(", ") != "":
        errors.append(f"line {lineno}: malformed label text {tail!r}")
    return labels


class _Family:
    def __init__(self) -> None:
        self.help_line: int | None = None
        self.type_line: int | None = None
        self.kind: str | None = None
        self.closed = False
        self.samples: list[tuple[int, str, dict, float]] = []


def check_text(text: str) -> list[str]:
    """Every violation in ``text`` as a ``line N: ...`` string."""
    errors: list[str] = []
    families: dict[str, _Family] = {}
    current: str | None = None

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment: legal, ignored
            directive, name = parts[1], parts[2]
            family = families.setdefault(name, _Family())
            if family.closed:
                errors.append(
                    f"line {lineno}: family {name!r} reopened — families "
                    "must be contiguous"
                )
            if directive == "HELP":
                if family.help_line is not None:
                    errors.append(f"line {lineno}: duplicate HELP for {name!r}")
                if family.type_line is not None or family.samples:
                    errors.append(
                        f"line {lineno}: HELP for {name!r} must precede "
                        "its TYPE and samples"
                    )
                family.help_line = lineno
            else:
                if family.type_line is not None:
                    errors.append(f"line {lineno}: duplicate TYPE for {name!r}")
                if family.samples:
                    errors.append(
                        f"line {lineno}: TYPE for {name!r} after its samples"
                    )
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    errors.append(
                        f"line {lineno}: unknown TYPE {kind!r} for {name!r}"
                    )
                family.type_line = lineno
                family.kind = kind
            if current is not None and current != name:
                families[current].closed = True
            current = name
            continue

        match = SAMPLE.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        sample_name, _, raw_labels, raw_value = match.groups()
        if not METRIC_NAME.match(sample_name):
            errors.append(f"line {lineno}: bad metric name {sample_name!r}")
        value = _parse_value(raw_value)
        if value is None:
            errors.append(f"line {lineno}: bad sample value {raw_value!r}")
            continue
        labels = _check_label_escaping(raw_labels or "", lineno, errors)
        for label in labels:
            if not LABEL_NAME.match(label):
                errors.append(f"line {lineno}: bad label name {label!r}")

        owner = None
        if current is not None:
            kind = families[current].kind or "untyped"
            if _family_of(sample_name, kind) == current:
                owner = current
        if owner is None:
            errors.append(
                f"line {lineno}: sample {sample_name!r} outside its "
                "family's HELP/TYPE block"
            )
            continue
        family = families[owner]
        if family.help_line is None or family.type_line is None:
            errors.append(
                f"line {lineno}: sample for {owner!r} before full "
                "HELP+TYPE header"
            )
        if family.kind in ("counter", "gauge") and sample_name != owner:
            errors.append(
                f"line {lineno}: {family.kind} sample name "
                f"{sample_name!r} != family {owner!r}"
            )
        family.samples.append((lineno, sample_name, labels, value))

    for name, family in families.items():
        if not family.samples:
            errors.append(
                f"line {family.help_line or family.type_line}: family "
                f"{name!r} declares HELP/TYPE but exposes no samples"
            )
        if family.kind == "histogram":
            errors.extend(_check_histogram(name, family))
    return errors


def _series_key(labels: dict, drop: tuple[str, ...] = ("le",)) -> tuple:
    return tuple(sorted((k, v) for k, v in labels.items() if k not in drop))


def _check_histogram(name: str, family: _Family) -> list[str]:
    errors: list[str] = []
    buckets: dict[tuple, list[tuple[int, str, float]]] = {}
    sums: dict[tuple, float] = {}
    counts: dict[tuple, tuple[int, float]] = {}
    for lineno, sample_name, labels, value in family.samples:
        key = _series_key(labels)
        if sample_name == f"{name}_bucket":
            if "le" not in labels:
                errors.append(f"line {lineno}: bucket sample without 'le'")
                continue
            buckets.setdefault(key, []).append((lineno, labels["le"], value))
        elif sample_name == f"{name}_sum":
            sums[key] = value
        elif sample_name == f"{name}_count":
            counts[key] = (lineno, value)
        else:
            errors.append(
                f"line {lineno}: unexpected histogram sample {sample_name!r}"
            )
    for key, series in buckets.items():
        label_text = dict(key) or "{}"
        if series[-1][1] != "+Inf":
            errors.append(
                f"line {series[-1][0]}: histogram {name!r} series "
                f"{label_text} does not end in le=\"+Inf\""
            )
        previous = None
        for lineno, _, value in series:
            if previous is not None and value < previous:
                errors.append(
                    f"line {lineno}: histogram {name!r} series "
                    f"{label_text} cumulative buckets decrease"
                )
            previous = value
        if key not in sums:
            errors.append(f"histogram {name!r} series {label_text} missing _sum")
        if key not in counts:
            errors.append(f"histogram {name!r} series {label_text} missing _count")
        elif series[-1][1] == "+Inf" and counts[key][1] != series[-1][2]:
            errors.append(
                f"line {counts[key][0]}: histogram {name!r} series "
                f"{label_text} _count {counts[key][1]} != +Inf bucket "
                f"{series[-1][2]}"
            )
    for key in set(sums) | set(counts):
        if key not in buckets:
            errors.append(
                f"histogram {name!r} series {dict(key) or '{}'} has "
                "_sum/_count but no buckets"
            )
    return errors


def _read_source(source: str) -> str:
    if source == "-":
        return sys.stdin.read()
    if source.startswith(("http://", "https://")):
        with urllib.request.urlopen(source, timeout=30.0) as response:
            return response.read().decode("utf-8")
    with open(source, "r", encoding="utf-8") as handle:
        return handle.read()


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    text = _read_source(argv[1])
    errors = check_text(text)
    for error in errors:
        print(error, file=sys.stderr)
    families = sum(1 for line in text.splitlines() if line.startswith("# TYPE"))
    if errors:
        print(
            f"check_prom: {len(errors)} violation(s) across "
            f"{families} families",
            file=sys.stderr,
        )
        return 1
    print(f"check_prom: OK ({families} families)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
