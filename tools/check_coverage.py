#!/usr/bin/env python
"""Enforce per-package line-coverage floors from a coverage.py JSON report.

Usage::

    python tools/check_coverage.py coverage.json --min 90 \\
        src/repro/scenarios src/repro/thermal

Each path prefix is checked *independently* — a well-covered package
cannot subsidize a poorly covered one, which is what a single
``--cov-fail-under`` total would allow.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import PurePosixPath


def package_coverage(report: dict, prefix: str) -> tuple[int, int]:
    """(covered, total) executable lines under one path prefix."""
    covered = 0
    total = 0
    prefix_path = PurePosixPath(prefix)
    for filename, data in report.get("files", {}).items():
        path = PurePosixPath(filename.replace("\\", "/"))
        if prefix_path not in (path, *path.parents):
            continue
        summary = data.get("summary", {})
        covered += summary.get("covered_lines", 0)
        total += summary.get("num_statements", 0)
    return covered, total


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="coverage.py JSON report path")
    parser.add_argument("prefixes", nargs="+", help="package path prefixes")
    parser.add_argument("--min", type=float, default=90.0, dest="minimum",
                        help="minimum line coverage percent per prefix")
    args = parser.parse_args(argv)

    try:
        report = json.loads(open(args.report).read())
    except (OSError, ValueError) as error:
        print(f"error: cannot read coverage report {args.report}: {error}",
              file=sys.stderr)
        return 2

    failures = []
    for prefix in args.prefixes:
        covered, total = package_coverage(report, prefix)
        if total == 0:
            failures.append(f"{prefix}: no measured lines (wrong --cov paths?)")
            continue
        percent = 100.0 * covered / total
        status = "ok" if percent >= args.minimum else "FAIL"
        print(f"{prefix}: {covered}/{total} lines = {percent:.1f}% [{status}]")
        if percent < args.minimum:
            failures.append(
                f"{prefix}: {percent:.1f}% < required {args.minimum:.1f}%"
            )
    if failures:
        print("coverage gate failed:\n  " + "\n  ".join(failures),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
