#!/usr/bin/env python
"""Run the key benchmarks and emit a machine-readable ``BENCH_PR4.json``.

This is the start of the repo's bench trajectory: one small, fast,
deterministic-in-shape bundle that CI runs on every push and uploads as
an artifact, so regressions in the hot paths show up as a diffable JSON
file instead of anecdotes.  Current probes:

- ``fig4_3_cell`` — wall time of one Fig. 4.3 simulation cell
  (W1/ts), uncached, best of ``--repeats``.
- ``kernel_window_stream`` — the batched thermal kernel vs the scalar
  one on an identical window stream (the PR 2 speedup, tracked).
- ``campaign_grid_serial`` / ``campaign_grid_fleet2`` — a small ch4
  campaign grid run cold through the in-process ``SerialBackend`` vs
  an ``HttpWorkerBackend`` over a 2-worker :class:`LocalFleet`,
  measuring the scale-out path end to end (worker boot excluded).

Usage::

    PYTHONPATH=src python tools/run_benches.py [--output PATH]
        [--repeats N] [--skip-fleet]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.specs import Chapter4Spec  # noqa: E402
from repro.campaign import Campaign, MemoryStore, NullStore, run_payload  # noqa: E402
from repro.cluster import HttpWorkerBackend, LocalFleet  # noqa: E402
from repro.core.kernel import BatchedMemSpot  # noqa: E402
from repro.core.memspot import MemSpot  # noqa: E402
from repro.params.thermal_params import AOHS_1_5, ISOLATED_AMBIENT  # noqa: E402

#: The campaign grid both execution paths run (cold, copies=1): all
#: eight Fig. 4.3 schemes, enough cells to amortize per-worker model
#: warm-up across the fleet.
GRID_POLICIES = (
    "no-limit", "ts", "bw", "acg", "cdvfs", "bw+pid", "acg+pid", "cdvfs+pid",
)


def _grid_specs() -> list[Chapter4Spec]:
    return [
        Chapter4Spec(mix="W1", policy=policy, copies=1)
        for policy in GRID_POLICIES
    ]


def bench_fig4_3_cell(repeats: int) -> dict:
    spec = Chapter4Spec(mix="W1", policy="ts", copies=1)
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        run_payload(spec, NullStore())
        samples.append(time.perf_counter() - started)
    return {
        "description": "one uncached Fig. 4.3 cell (W1/ts, copies=1)",
        "best_seconds": round(min(samples), 4),
        "samples_seconds": [round(s, 4) for s in samples],
    }


def bench_kernel_window_stream(repeats: int) -> dict:
    rng = random.Random(1234)
    windows = [
        (rng.random() * 2.2e10, rng.random() * 1.1e10, rng.random() * 8.0)
        for _ in range(5_000)
    ]

    def drive(memspot) -> float:
        started = time.perf_counter()
        for read_bps, write_bps, heating in windows:
            memspot.step(read_bps, write_bps, heating, 0.01)
        return time.perf_counter() - started

    scalar = min(
        drive(MemSpot(AOHS_1_5, ISOLATED_AMBIENT)) for _ in range(repeats)
    )
    batched = min(
        drive(BatchedMemSpot(AOHS_1_5, ISOLATED_AMBIENT))
        for _ in range(repeats)
    )
    return {
        "description": "5k-window thermal kernel stream, scalar vs batched",
        "scalar_seconds": round(scalar, 4),
        "batched_seconds": round(batched, 4),
        "speedup": round(scalar / batched, 3),
    }


def bench_campaign_grid_serial() -> dict:
    specs = _grid_specs()
    started = time.perf_counter()
    results = Campaign(specs, store=MemoryStore()).run()
    elapsed = time.perf_counter() - started
    return {
        "description": f"cold ch4 grid, {len(specs)} cells, SerialBackend",
        "cells": len(results),
        "seconds": round(elapsed, 4),
    }


def bench_campaign_grid_fleet(workers: int = 2) -> dict:
    specs = _grid_specs()
    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as cache:
        with LocalFleet(workers, env={"REPRO_CACHE_DIR": cache}) as fleet:
            with HttpWorkerBackend(fleet.urls) as backend:
                started = time.perf_counter()
                results = Campaign(
                    specs, store=MemoryStore(), backend=backend
                ).run()
                elapsed = time.perf_counter() - started
    return {
        "description": (
            f"cold ch4 grid, {len(specs)} cells, HttpWorkerBackend "
            f"over {workers} LocalFleet workers"
        ),
        "cells": len(results),
        "workers": workers,
        "seconds": round(elapsed, 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_PR4.json"), metavar="PATH"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--skip-fleet", action="store_true",
        help="skip the 2-worker fleet bench (e.g. sandboxes without "
        "subprocess networking)",
    )
    args = parser.parse_args(argv)

    benches: dict[str, dict] = {}
    print("bench: fig4_3_cell ...", flush=True)
    benches["fig4_3_cell"] = bench_fig4_3_cell(args.repeats)
    print("bench: kernel_window_stream ...", flush=True)
    benches["kernel_window_stream"] = bench_kernel_window_stream(args.repeats)
    print("bench: campaign_grid_serial ...", flush=True)
    benches["campaign_grid_serial"] = bench_campaign_grid_serial()
    if not args.skip_fleet:
        print("bench: campaign_grid_fleet2 ...", flush=True)
        benches["campaign_grid_fleet2"] = bench_campaign_grid_fleet()
        serial_s = benches["campaign_grid_serial"]["seconds"]
        fleet_s = benches["campaign_grid_fleet2"]["seconds"]
        benches["campaign_grid_fleet2"]["speedup_vs_serial"] = round(
            serial_s / fleet_s, 3
        )

    document = {
        "schema_version": "1.0",
        "generated_by": "tools/run_benches.py",
        "python": platform.python_version(),
        "platform": platform.platform(),
        # Interpret fleet-vs-serial with this in hand: on a one-core
        # box the fleet can only add overhead; the speedup is real on
        # multi-core runners.
        "cpu_count": os.cpu_count(),
        "benches": benches,
    }
    output = Path(args.output)
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    for name, bench in benches.items():
        headline = bench.get(
            "seconds", bench.get("best_seconds", bench.get("batched_seconds"))
        )
        extra = (
            f" (speedup {bench['speedup']}x)" if "speedup" in bench else ""
        ) + (
            f" (speedup vs serial {bench['speedup_vs_serial']}x)"
            if "speedup_vs_serial" in bench
            else ""
        )
        print(f"  {name}: {headline}s{extra}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
