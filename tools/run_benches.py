#!/usr/bin/env python
"""Run the key benchmarks and emit a machine-readable ``BENCH_PR5.json``.

The bench trajectory continues from ``BENCH_PR4.json``: one small,
fast, deterministic-in-shape bundle that CI runs on every push and
uploads as an artifact, so regressions in the hot paths show up as a
diffable JSON file instead of anecdotes.  Current probes:

- ``fig4_3_cell`` — wall time of one Fig. 4.3 simulation cell
  (W1/ts), uncached, best of ``--repeats``.
- ``kernel_window_stream`` — the batched thermal kernel vs the scalar
  one on an identical window stream (the PR 2 speedup, tracked).
- ``campaign_grid_serial`` / ``campaign_grid_fleet2`` — the 8-cell ch4
  grid cold through an in-process serial run vs an
  ``HttpWorkerBackend`` over a 2-worker :class:`LocalFleet` with
  chunked dispatch (one request per worker), measuring the scale-out
  path end to end (worker boot excluded).  Unlike BENCH_PR4 — whose
  serial baseline accidentally reused the window-model memo warmed by
  the earlier probes in the same process — **both** sides now run in
  cold processes, so the comparison is apples to apples.
- ``checkpoint_overhead`` — per-window cost of engine checkpointing at
  its most aggressive setting (a checkpoint written every window).
- ``resume_vs_restart`` — a 2-worker fleet loses a worker mid-cell;
  wall clock of the grid with time-sliced (resume-from-checkpoint)
  dispatch vs whole-run (restart-from-zero) dispatch.

Usage::

    PYTHONPATH=src python tools/run_benches.py [--output PATH]
        [--repeats N] [--skip-fleet]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.specs import Chapter4Spec  # noqa: E402
from repro.campaign import (  # noqa: E402
    Campaign,
    MemoryStore,
    NullStore,
    engine_for_spec,
    run_payload,
)
from repro.cluster import HttpWorkerBackend, LocalFleet  # noqa: E402
from repro.core.kernel import BatchedMemSpot  # noqa: E402
from repro.core.memspot import MemSpot  # noqa: E402
from repro.engine import CheckpointFile, CheckpointObserver  # noqa: E402
from repro.params.thermal_params import AOHS_1_5, ISOLATED_AMBIENT  # noqa: E402

#: The campaign grid both execution paths run (cold, copies=1): all
#: eight Fig. 4.3 schemes, ordered so each worker's half is a
#: memoization-coherent family — the bandwidth-capped schemes share
#: level-1 window-model entries, as do the frequency-scaled ones —
#: which keeps the duplicated per-worker warm-up to a minimum.
GRID_POLICIES = (
    "bw", "acg", "bw+pid", "acg+pid",
    "no-limit", "ts", "cdvfs", "cdvfs+pid",
)

#: Driver for the cold-process serial baseline: same grid, same
#: MemoryStore, fresh interpreter (no warm window-model memo).
_SERIAL_DRIVER = """
import json, sys, time
sys.path.insert(0, {src!r})
from repro.analysis.specs import Chapter4Spec
from repro.campaign import Campaign, MemoryStore
specs = [Chapter4Spec(mix="W1", policy=p, copies=1) for p in {policies!r}]
started = time.perf_counter()
Campaign(specs, store=MemoryStore()).run()
print(json.dumps({{"seconds": time.perf_counter() - started}}))
"""


def _grid_specs() -> list[Chapter4Spec]:
    return [
        Chapter4Spec(mix="W1", policy=policy, copies=1)
        for policy in GRID_POLICIES
    ]


def bench_fig4_3_cell(repeats: int) -> dict:
    spec = Chapter4Spec(mix="W1", policy="ts", copies=1)
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        run_payload(spec, NullStore())
        samples.append(time.perf_counter() - started)
    return {
        "description": "one uncached Fig. 4.3 cell (W1/ts, copies=1)",
        "best_seconds": round(min(samples), 4),
        "samples_seconds": [round(s, 4) for s in samples],
    }


def bench_kernel_window_stream(repeats: int) -> dict:
    rng = random.Random(1234)
    windows = [
        (rng.random() * 2.2e10, rng.random() * 1.1e10, rng.random() * 8.0)
        for _ in range(5_000)
    ]

    def drive(memspot) -> float:
        started = time.perf_counter()
        for read_bps, write_bps, heating in windows:
            memspot.step(read_bps, write_bps, heating, 0.01)
        return time.perf_counter() - started

    scalar = min(
        drive(MemSpot(AOHS_1_5, ISOLATED_AMBIENT)) for _ in range(repeats)
    )
    batched = min(
        drive(BatchedMemSpot(AOHS_1_5, ISOLATED_AMBIENT))
        for _ in range(repeats)
    )
    return {
        "description": "5k-window thermal kernel stream, scalar vs batched",
        "scalar_seconds": round(scalar, 4),
        "batched_seconds": round(batched, 4),
        "speedup": round(scalar / batched, 3),
    }


def _serial_grid_once() -> float:
    driver = _SERIAL_DRIVER.format(
        src=str(REPO_ROOT / "src"), policies=tuple(GRID_POLICIES)
    )
    env = dict(os.environ)
    env["REPRO_CACHE"] = "0"
    proc = subprocess.run(
        [sys.executable, "-c", driver],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(proc.stdout)["seconds"]


def _fleet_grid_once(workers: int, chunk: int) -> float:
    specs = _grid_specs()
    with LocalFleet(workers, env={"REPRO_CACHE": "0"}) as fleet:
        # The grid takes a few seconds; a 5 s heartbeat keeps liveness
        # probing off the timed path without disabling dead-worker
        # detection for longer grids.
        with HttpWorkerBackend(
            fleet.urls, chunk_cells=chunk, heartbeat_interval_s=5.0
        ) as backend:
            started = time.perf_counter()
            results = Campaign(
                specs, store=MemoryStore(), backend=backend
            ).run()
            elapsed = time.perf_counter() - started
    assert len(results) == len(specs)
    return elapsed


def bench_campaign_grids(repeats: int, workers: int = 2) -> tuple[dict, dict]:
    """Serial vs 2-worker fleet, reps interleaved so machine-load
    drift hits both sides equally; best-of-``repeats`` per side."""
    chunk = len(GRID_POLICIES) // workers
    serial_samples: list[float] = []
    fleet_samples: list[float] = []
    for _ in range(repeats):
        serial_samples.append(_serial_grid_once())
        fleet_samples.append(_fleet_grid_once(workers, chunk))
    serial = {
        "description": (
            f"cold ch4 grid, {len(GRID_POLICIES)} cells, serial in a "
            f"fresh process (no warm memo)"
        ),
        "cells": len(GRID_POLICIES),
        "best_seconds": round(min(serial_samples), 4),
        "samples_seconds": [round(s, 4) for s in serial_samples],
    }
    fleet = {
        "description": (
            f"cold ch4 grid, {len(GRID_POLICIES)} cells, "
            f"HttpWorkerBackend over {workers} LocalFleet workers, "
            f"chunked dispatch ({chunk} cells/request), reps "
            f"interleaved with the serial baseline"
        ),
        "cells": len(GRID_POLICIES),
        "workers": workers,
        "chunk_cells": chunk,
        "best_seconds": round(min(fleet_samples), 4),
        "samples_seconds": [round(s, 4) for s in fleet_samples],
        "speedup_vs_serial": round(min(serial_samples) / min(fleet_samples), 3),
    }
    return serial, fleet


def bench_checkpoint_overhead(repeats: int) -> dict:
    """Engine checkpointing at every window vs no checkpointing."""
    import tempfile

    spec = Chapter4Spec(mix="W1", policy="ts", copies=1)

    def plain() -> tuple[float, int]:
        engine = engine_for_spec(spec)
        started = time.perf_counter()
        engine.run_to_completion()
        return time.perf_counter() - started, engine.windows

    def checkpointed() -> tuple[float, int]:
        with tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") as root:
            observer = CheckpointObserver(
                CheckpointFile(Path(root) / "cell.checkpoint.json"),
                every_windows=1,
            )
            engine = engine_for_spec(spec, extra_observers=(observer,))
            started = time.perf_counter()
            engine.run_to_completion()
            return time.perf_counter() - started, engine.windows

    plain_samples, ckpt_samples, windows = [], [], 0
    for _ in range(repeats):
        seconds, windows = plain()
        plain_samples.append(seconds)
        seconds, windows = checkpointed()
        ckpt_samples.append(seconds)
    best_plain = min(plain_samples)
    best_ckpt = min(ckpt_samples)
    per_window_us = (best_ckpt - best_plain) / windows * 1e6
    return {
        "description": (
            "W1/ts cell with a checkpoint written every window vs none "
            "(worst-case checkpoint cadence)"
        ),
        "windows": windows,
        "plain_seconds": round(best_plain, 4),
        "checkpointed_seconds": round(best_ckpt, 4),
        "overhead_us_per_window": round(per_window_us, 2),
    }


def _killed_fleet_grid(window_slice: int | None) -> dict:
    """Run one big cell on a 2-worker fleet, killing a worker mid-cell.

    With ``window_slice`` the survivor resumes from the cell's last
    checkpoint; without it the cell restarts from zero.  The kill fires
    at a fixed wall delay and targets whichever worker actually holds
    the cell at that instant (``fleet_stats`` in-flight view), so both
    variants genuinely lose mid-cell work.
    """
    spec = Chapter4Spec(mix="W1", policy="ts", copies=2)
    # Time the cell solo so the kill lands mid-cell in both variants.
    solo_engine = engine_for_spec(spec)
    solo_started = time.perf_counter()
    solo_engine.run_to_completion()
    solo_seconds = time.perf_counter() - solo_started
    kill_after = max(0.2, solo_seconds * 0.6)

    with LocalFleet(2, env={"REPRO_CACHE": "0"}) as fleet:
        backend = HttpWorkerBackend(
            fleet.urls,
            window_slice=window_slice,
            heartbeat_interval_s=0.25,
            health_timeout_s=1.0,
        )
        with backend:
            campaign = Campaign(
                [spec], store=MemoryStore(), backend=backend
            )
            results: list = []

            def consume() -> None:
                results.extend(r for _, r, _, _ in campaign.iter_run())

            started = time.perf_counter()
            consumer = threading.Thread(target=consume, daemon=True)
            consumer.start()
            time.sleep(kill_after)
            holder = next(
                (
                    index
                    for index, worker in enumerate(backend.fleet_stats())
                    if worker["in_flight_cells"]
                ),
                0,
            )
            fleet.kill(holder)
            consumer.join(timeout=600)
            elapsed = time.perf_counter() - started
            stats = backend.dispatch_stats()
    assert len(results) == 1, "grid did not survive the kill"
    record = next(iter(stats["cells"].values()), {})
    return {
        "solo_cell_seconds": round(solo_seconds, 4),
        "kill_after_seconds": round(kill_after, 4),
        "killed_worker": holder,
        "grid_seconds": round(elapsed, 4),
        "resumed_from_window": record.get("resumed_from", 0),
        "slices": record.get("slices", 1),
    }


def bench_resume_vs_restart() -> dict:
    resumed = _killed_fleet_grid(window_slice=2000)
    restarted = _killed_fleet_grid(window_slice=None)
    return {
        "description": (
            "one W1/ts copies=2 cell on a 2-worker fleet, one worker "
            "SIGKILLed mid-cell: time-sliced resume-from-checkpoint vs "
            "whole-run restart-from-zero"
        ),
        "resume": resumed,
        "restart": restarted,
        "resume_speedup": round(
            restarted["grid_seconds"] / resumed["grid_seconds"], 3
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_PR5.json"), metavar="PATH"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--skip-fleet", action="store_true",
        help="skip the fleet benches (e.g. sandboxes without "
        "subprocess networking)",
    )
    args = parser.parse_args(argv)

    benches: dict[str, dict] = {}
    print("bench: fig4_3_cell ...", flush=True)
    benches["fig4_3_cell"] = bench_fig4_3_cell(args.repeats)
    print("bench: kernel_window_stream ...", flush=True)
    benches["kernel_window_stream"] = bench_kernel_window_stream(args.repeats)
    print("bench: checkpoint_overhead ...", flush=True)
    benches["checkpoint_overhead"] = bench_checkpoint_overhead(args.repeats)
    if args.skip_fleet:
        print("bench: campaign_grid_serial ...", flush=True)
        benches["campaign_grid_serial"] = {
            "description": "cold ch4 grid, serial in a fresh process",
            "cells": len(GRID_POLICIES),
            "best_seconds": round(_serial_grid_once(), 4),
        }
    else:
        print("bench: campaign_grid serial vs fleet2 (interleaved) ...",
              flush=True)
        serial, fleet = bench_campaign_grids(args.repeats)
        benches["campaign_grid_serial"] = serial
        benches["campaign_grid_fleet2"] = fleet
        print("bench: resume_vs_restart ...", flush=True)
        benches["resume_vs_restart"] = bench_resume_vs_restart()

    document = {
        "schema_version": "1.0",
        "generated_by": "tools/run_benches.py",
        "python": platform.python_version(),
        "platform": platform.platform(),
        # Interpret fleet-vs-serial with this in hand: on a one-core
        # box the fleet can only win back its own overhead; the
        # parallel speedup is real on multi-core runners.
        "cpu_count": os.cpu_count(),
        "benches": benches,
    }
    output = Path(args.output)
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    for name, bench in benches.items():
        headline = bench.get(
            "best_seconds",
            bench.get(
                "seconds",
                bench.get("batched_seconds", bench.get("checkpointed_seconds")),
            ),
        )
        extra = (
            f" (speedup {bench['speedup']}x)" if "speedup" in bench else ""
        ) + (
            f" (speedup vs serial {bench['speedup_vs_serial']}x)"
            if "speedup_vs_serial" in bench
            else ""
        ) + (
            f" (resume speedup {bench['resume_speedup']}x)"
            if "resume_speedup" in bench
            else ""
        ) + (
            f" ({bench['overhead_us_per_window']} us/window)"
            if "overhead_us_per_window" in bench
            else ""
        )
        if headline is None and "resume" in bench:
            headline = bench["resume"]["grid_seconds"]
        print(f"  {name}: {headline}s{extra}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
